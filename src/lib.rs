//! # PECAN — Product-QuantizEd Content Addressable Memory Network
//!
//! A from-scratch Rust reproduction of *"PECAN: A Product-Quantized Content
//! Addressable Memory Network"* (Ran, Lin, Li, Zhou, Wong — DATE 2023,
//! arXiv:2208.13571): a DNN architecture whose filtering and linear
//! transforms are realised **solely** with product quantization (PQ) and
//! table lookup, making inference a content-addressable-memory (CAM)
//! similarity search.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | PECAN-A / PECAN-D layers, Algorithm-1 LUT inference, Table-1 complexity model, paper configs, pruning |
//! | [`pq`] | codebooks, angle/L1 similarity, straight-through estimator, annealed sign gradients |
//! | [`cam`] | CAM hardware simulator: analog L1 arrays, lookup tables, VIA-Nano cost model, fixed-point pipeline |
//! | [`index`] | prototype search engines: exhaustive linear scan, PQTable-style non-exhaustive buckets, Quick-ADC-style batched scans |
//! | [`nn`] | conventional layers + the model zoo (LeNet-5, VGG-Small, ResNet-20/32, ConvMixer) |
//! | [`serve`] | model serving: batch-first `InferBatch`/`Stage` pipeline, frozen engines, named binary snapshots, per-model micro-batching schedulers, multi-model HTTP front end |
//! | [`autograd`] | tape-based reverse-mode autodiff with SGD/Adam |
//! | [`tensor`] | dense f32 tensors, packed/threaded GEMM (`PECAN_NUM_THREADS`), im2col |
//! | [`datasets`] | MNIST IDX / CIFAR binary parsers, synthetic stand-ins, opt-in real-MNIST fixture |
//! | [`baselines`] | AdderNet and XNOR/binary convolutions |
//!
//! # Quickstart
//!
//! ```
//! use pecan::core::{PecanBuilder, PecanVariant};
//! use pecan::nn::{models, Layer};
//! use pecan::autograd::Var;
//! use pecan::tensor::Tensor;
//!
//! # fn main() -> Result<(), pecan::tensor::ShapeError> {
//! // A multiplier-free LeNet: every conv/FC is PQ + table lookup.
//! let mut builder = PecanBuilder::from_seed(0, PecanVariant::Distance);
//! let mut net = models::lenet5_modified(&mut builder)?;
//! let logits = net.forward(&Var::constant(Tensor::zeros(&[1, 1, 28, 28])), false)?;
//! assert_eq!(logits.value().dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end training, CAM deployment, pruning and
//! the complexity–accuracy trade-off, and `crates/bench` for the harness
//! regenerating every table and figure of the paper.

#![forbid(unsafe_code)]

pub use pecan_autograd as autograd;
pub use pecan_baselines as baselines;
pub use pecan_cam as cam;
pub use pecan_core as core;
pub use pecan_datasets as datasets;
pub use pecan_index as index;
pub use pecan_nn as nn;
pub use pecan_pq as pq;
pub use pecan_serve as serve;
pub use pecan_tensor as tensor;

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness — see `shims/README.md` for scope.
//!
//! Provides the group / `bench_function` / `bench_with_input` API surface the
//! PECAN benches use, measuring wall-clock time with `std::time::Instant` and
//! printing a `median [min .. max]` line per benchmark. No warm-up modelling,
//! outlier analysis, plotting, or baseline comparison: the real crate does
//! those far better, and this shim's one job is to keep `cargo bench`
//! compiling and producing honest numbers offline.
//!
//! Two extensions support regression tracking across PRs:
//!
//! * every benchmark writes its median/min/max (in nanoseconds) to
//!   `target/bench/<sanitized-id>-<id-hash>.json` — override the directory with
//!   `PECAN_BENCH_JSON_DIR`;
//! * `PECAN_BENCH_SAMPLES=<n>` overrides every `sample_size()` call, letting
//!   CI do a one-sample smoke run of the full bench suite.

#![forbid(unsafe_code)]

use std::env;
use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches in this workspace use
/// directly).
pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every function registered through
/// [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkGroup")
            .field("name", &self.name)
            .field("sample_size", &self.sample_size)
            .finish()
    }
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`, identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (The real crate finalises reports here; the shim has
    /// nothing left to do but keeps the call site compiling.)
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter description.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing context passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, calibrating an iteration count so each sample takes
    /// a measurable amount of wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // A second `iter` call in the same closure would silently mix two
        // routines' timings into one report.
        self.samples.clear();

        // Calibrate: aim for samples of at least ~2 ms each.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let sample_size = env::var("PECAN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(sample_size);
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_count: sample_size,
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples collected)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    println!(
        "{id:<48} {:>12} [{} .. {}] ×{}",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        bencher.iters_per_sample,
    );
    write_json(id, median, min, max, bencher.samples.len(), bencher.iters_per_sample);
}

/// Directory the per-bench JSON files land in: `PECAN_BENCH_JSON_DIR` if
/// set, else `<target>/bench` located from the running bench executable
/// (`<target>/<profile>/deps/<bench>`), else a local `target/bench`.
fn json_dir() -> PathBuf {
    if let Some(dir) = env::var_os("PECAN_BENCH_JSON_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.join("bench");
            }
        }
    }
    PathBuf::from("target/bench")
}

/// Sanitized file name for one benchmark id. Distinct ids may sanitize to
/// the same readable stem (`p8 d9` vs `p8_d9`), so a hash of the raw id is
/// appended — two different benchmarks can never overwrite each other's
/// regression data.
fn json_file_name(id: &str) -> String {
    let stem: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') { c } else { '_' })
        .collect();
    // FNV-1a over the raw id
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{stem}-{:08x}.json", hash as u32)
}

/// Persists one benchmark's timings as
/// `<json_dir>/<sanitized-id>-<id-hash>.json` so regression tracking can
/// diff medians across runs. Failures are reported but never fail the
/// bench.
fn write_json(
    id: &str,
    median: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
    iters_per_sample: u64,
) {
    let dir = json_dir();
    let body = format!(
        "{{\n  \"name\": \"{}\",\n  \"median_ns\": {},\n  \"min_ns\": {},\n  \"max_ns\": {},\n  \"samples\": {},\n  \"iters_per_sample\": {}\n}}\n",
        id.replace('\\', "\\\\").replace('"', "\\\""),
        median.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        samples,
        iters_per_sample,
    );
    let path = dir.join(json_file_name(id));
    if let Err(err) = fs::create_dir_all(&dir).and_then(|()| fs::write(&path, body)) {
        eprintln!("criterion shim: could not write {}: {err}", path.display());
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b)` expands
/// to a function `name()` running each registered benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The sink's env overrides are process-global, and `run_one` reads them
    /// on every call — so every test that touches either side must hold this
    /// lock, both to avoid concurrent getenv/setenv (UB on glibc) and to
    /// keep one test's overrides from leaking into another's measurements.
    /// Each guarded test also routes the sink into its own scratch dir so
    /// `cargo test` never litters the real `target/bench` regression data.
    fn env_lock(scratch: &str) -> (MutexGuard<'static, ()>, std::path::PathBuf) {
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = env::temp_dir().join("pecan-criterion-shim-tests").join(scratch);
        let _ = fs::remove_dir_all(&dir);
        env::set_var("PECAN_BENCH_JSON_DIR", &dir);
        (guard, dir)
    }

    #[test]
    fn group_runs_and_reports() {
        let (_guard, dir) = env_lock("group");
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut group = c.benchmark_group("shim_self_test");
            group.sample_size(3);
            group.bench_function("count", |b| {
                ran += 1;
                b.iter(|| (0..100u64).sum::<u64>());
            });
            group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
                b.iter(|| (0..n).product::<u64>());
            });
            group.finish();
        }
        env::remove_var("PECAN_BENCH_JSON_DIR");
        assert_eq!(ran, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn json_sink_and_sample_override() {
        let (_guard, dir) = env_lock("sink");
        env::set_var("PECAN_BENCH_SAMPLES", "2");
        run_one("sink_test/group/p8 d9", 30, |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        env::remove_var("PECAN_BENCH_SAMPLES");
        env::remove_var("PECAN_BENCH_JSON_DIR");
        let written = fs::read_to_string(dir.join(json_file_name("sink_test/group/p8 d9")))
            .expect("sink file exists");
        assert!(written.contains("\"name\": \"sink_test/group/p8 d9\""));
        assert!(written.contains("\"median_ns\": "));
        // PECAN_BENCH_SAMPLES overrode the requested 30 samples
        assert!(written.contains("\"samples\": 2"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn colliding_sanitized_ids_get_distinct_files() {
        let a = json_file_name("linear/p8 d9");
        let b = json_file_name("linear/p8_d9");
        assert!(a.starts_with("linear_p8_d9-"));
        assert!(b.starts_with("linear_p8_d9-"));
        assert_ne!(a, b);
        assert_eq!(a, json_file_name("linear/p8 d9"));
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "p8_d9").to_string(), "f/p8_d9");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the subset of the `rand` 0.8 API that the PECAN workspace
//! uses — see `shims/README.md` for scope and caveats. The generator behind
//! [`rngs::StdRng`] is xoshiro256** seeded through SplitMix64: fast,
//! deterministic, and statistically sound for the k-means / initialiser /
//! data-augmentation workloads here, but **not** stream-compatible with the
//! real crate.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only `seed_from_u64` is provided; the workspace
/// never seeds from byte arrays.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a [`Standard`](distributions::Standard)
    /// distribution (uniform over all bit patterns for integers, `[0, 1)`
    /// for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        // 53 random bits → uniform f64 in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples from an explicit distribution object.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range {lo}..{}{hi}",
                    if inclusive { "=" } else { "" },
                );
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                // Modulo bias is < 2⁻⁶⁴ · span — irrelevant for the spans
                // used in this workspace (all far below 2³²).
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty float range {lo}..{}{hi}",
                    if inclusive { "=" } else { "" },
                );
                let raw = rng.next_u64() >> (64 - $bits);
                let unit = if inclusive {
                    // closed [0, 1]: denominator 2^bits − 1 lets raw reach it
                    raw as $t / ((1u64 << $bits) - 1) as $t
                } else {
                    raw as $t / (1u64 << $bits) as $t
                };
                let value = lo + (hi - lo) * unit;
                if !inclusive && value >= hi {
                    // `lo + (hi-lo)*unit` can round up to exactly `hi` even
                    // though unit < 1; fold that 2⁻²⁴-probability draw back
                    // to `lo` to preserve the half-open contract.
                    lo
                } else {
                    value
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32 => 24, f64 => 53);

/// Range expressions accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator — the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution objects usable with [`Rng::sample`](super::Rng::sample).

    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The type's "natural" distribution: all bit patterns for integers,
    /// `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform distribution over `[lo, hi)` or `[lo, hi]`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over the half-open interval `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Self { lo, hi, inclusive: false }
        }

        /// Uniform over the closed interval `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Self { lo, hi, inclusive: true }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_between(self.lo, self.hi, self.inclusive, rng)
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::distributions::Uniform;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new(-1.0f32, 1.0);
        let mean: f32 =
            (0..4096).map(|_| dist.sample(&mut rng)).sum::<f32>() / 4096.0;
        assert!(mean.abs() < 0.05, "uniform mean {mean} too far from 0");
    }

    #[test]
    fn exclusive_float_range_never_returns_upper_bound() {
        // An all-ones stream maximises `unit`, the draw where
        // `lo + (hi-lo)*unit` is at risk of rounding up to exactly `hi`.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        for (lo, hi) in [(1.0f32, 2.0), (3.0, 10.0), (0.75, 1.0), (-0.08, 0.08)] {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "gen_range({lo}..{hi}) returned {v}");
        }
        let v64 = rng.gen_range(1.0f64..2.0);
        assert!((1.0..2.0).contains(&v64), "f64 draw returned {v64}");
    }

    #[test]
    fn inclusive_ranges_reach_their_upper_bound() {
        let mut rng = StdRng::seed_from_u64(21);
        assert_eq!(rng.gen_range(3usize..=3), 3);
        assert_eq!(rng.gen_range(0.5f32..=0.5), 0.5);
        let hit_top = (0..200).any(|_| rng.gen_range(0u32..=1) == 1);
        assert!(hit_top, "0..=1 never produced 1");
        let dist = Uniform::new_inclusive(0u32, 5);
        let hit_five = (0..500).any(|_| dist.sample(&mut rng) == 5);
        assert!(hit_five, "new_inclusive(0, 5) never produced 5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate — see `shims/README.md` for scope.
//!
//! Supports the subset the PECAN property tests use: the [`proptest!`] macro
//! with an optional `#![proptest_config(..)]` attribute, [`Strategy`] +
//! [`Strategy::prop_map`], range strategies, [`collection::vec`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Generation is a
//! deterministic seeded RNG (seed derived from the test name), so failures
//! reproduce exactly across runs. There is **no shrinking**: a failing case
//! reports the case number and the assertion message only.

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG threaded through strategy generation.
pub type TestRng = StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (the real crate's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 / 0, S1 / 1)
    (S0 / 0, S1 / 1, S2 / 2)
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3)
}

pub mod bool {
    //! Strategies for `bool` (the real crate's `proptest::bool`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `true` / `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy (the real crate's `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.gen_range(0u8..2) == 1
        }
    }
}

pub mod num {
    //! Whole-domain numeric strategies (the real crate's `proptest::num`).

    macro_rules! num_any_module {
        ($($m:ident / $t:ty),* $(,)?) => {$(
            pub mod $m {
                #![allow(missing_docs)]
                use crate::{Strategy, TestRng};
                use rand::Rng;

                /// Uniform strategy over the full domain of the type.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// The real crate's `proptest::num::$m::ANY`.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(0..=<$t>::MAX)
                    }
                }
            }
        )*};
    }

    num_any_module!(u8 / u8, u16 / u16, u32 / u32, u64 / u64, usize / usize);
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`select()`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Draws uniformly from `options` (the real crate's
    /// `prop::sample::select` for the `Vec` case).
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// Size specifications accepted by [`vec()`]: an exact length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed `prop_assert!` / `prop_assert_eq!`, carried to the runner.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

#[doc(hidden)]
pub fn __run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name so every test gets its own stream, but the
    // same test sees the same cases on every run.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for index in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ (u64::from(index) << 32));
        if let Err(err) = case(&mut rng) {
            panic!(
                "proptest: test `{test_name}` failed at case {index}/{}: {err}",
                config.cases,
            );
        }
    }
}

/// Declares property tests. Mirrors the real crate's grammar for the forms
/// used in this workspace:
///
/// ```
/// use proptest::prelude::*;
///
/// // Real call sites put `#[test]` on each function; it is omitted here so
/// // the doc-test can invoke the expansion directly.
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in -10.0f32..10.0, b in -10.0f32..10.0) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-6);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__run_cases($config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)*
                let __proptest_outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __proptest_outcome
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing case
/// instead of unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                ),
            ));
        }
    }};
}

/// Everything a property test module normally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_controls_length(
            fixed in collection::vec(0.0f32..1.0, 12),
            ranged in collection::vec(0usize..5, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 12);
            prop_assert!((2..6).contains(&ranged.len()));
            prop_assert!(fixed.iter().all(|&v| (0.0..1.0).contains(&v)));
        }

        #[test]
        fn prop_map_applies(total in collection::vec(1usize..4, 5).prop_map(|v| v.len())) {
            prop_assert_eq!(total, 5);
        }

        #[test]
        fn tuple_strategies_generate_componentwise(
            (x, n) in (-1.0f32..1.0, 3usize..7),
            (a, b, c) in (0u8..4, Just(9i32), collection::vec(0usize..2, 3)),
        ) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(a < 4);
            prop_assert_eq!(b, 9);
            prop_assert_eq!(c.len(), 3);
        }

        #[test]
        fn select_draws_from_options(v in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::__run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("intentional"))
        });
    }

    #[test]
    fn same_test_name_reproduces_cases() {
        let mut first = Vec::new();
        crate::__run_cases(ProptestConfig::with_cases(8), "repro", |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::__run_cases(ProptestConfig::with_cases(8), "repro", |rng| {
            second.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}

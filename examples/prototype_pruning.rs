//! Prototype pruning (§5 / Fig. 6): measure which prototypes a trained
//! PECAN-D layer actually selects, drop the idle ones together with their
//! lookup-table entries, and verify the compact engine produces identical
//! outputs.
//!
//! ```text
//! cargo run --release --example prototype_pruning
//! ```

use pecan::core::prune::prune_unused;
use pecan::core::{LayerLut, PecanConv2d, PecanVariant, PqLayerSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(5);

    // A PECAN-D layer with a deliberately generous codebook (p = 64, as the
    // paper uses for ResNet-20) — most prototypes will go unused.
    let layer = PecanConv2d::new(
        &mut rng,
        PecanVariant::Distance,
        PqLayerSettings::new(64, 9, 0.5),
        2,
        8,
        3,
        1,
        1,
    )?;
    let engine = LayerLut::from_conv(&layer)?;

    // Calibration pass: 512 im2col columns of *structured* feature-like
    // data — real activations live near a low-dimensional set, which is
    // exactly why trained PECAN layers use only a fraction of their
    // prototypes (Fig. 6). Mimic that with noisy mixtures of 4 basis
    // patterns.
    let basis = pecan::tensor::uniform(&mut rng, &[18, 4], -1.0, 1.0);
    let mut xcol = pecan::tensor::Tensor::zeros(&[18, 512]);
    for i in 0..512 {
        let b = i % 4;
        for r in 0..18 {
            use rand::Rng;
            let noise: f32 = rng.gen_range(-0.15..0.15);
            xcol.set2(r, i, basis.get2(r, b) + noise);
        }
    }
    let mut stats = engine.new_stats();
    let reference = engine.forward_matrix(&xcol, Some(&mut stats))?;

    println!("prototype usage per group (Fig. 6 measurement):");
    for g in 0..stats.groups() {
        let used = stats.used(g);
        let bars: String = stats
            .counts(g)
            .iter()
            .map(|&c| if c == 0 { '·' } else if c < 8 { '▁' } else if c < 32 { '▄' } else { '█' })
            .collect();
        println!("  group {g}: {used}/{} used  [{bars}]", stats.prototypes());
    }
    println!("overall utilization: {:.1}%", stats.utilization() * 100.0);

    // Prune and verify equivalence on the calibration data.
    let report = prune_unused(
        PecanVariant::Distance,
        *layer.pq_config(),
        &layer.weight().to_tensor(),
        &layer.codebook().to_tensors(),
        None,
        &stats,
    )?;
    let pruned_out = report.engine.forward_matrix(&xcol, None)?;
    println!(
        "\nafter pruning: {} → {} prototypes/group, memory saved {:.1}%, max |Δ| = {:.2e}",
        layer.pq_config().prototypes(),
        report.engine.config().prototypes(),
        report.memory_saved * 100.0,
        pruned_out.max_abs_diff(&reference)
    );
    Ok(())
}

//! Serving walkthrough: compile PECAN models into frozen engines,
//! snapshot them to disk, reload them, and serve **two models side by
//! side** over HTTP through per-model micro-batching schedulers.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use pecan::core::InferBatch;
use pecan::serve::client::HttpClient;
use pecan::serve::{
    demo, EngineRegistry, FrozenEngine, SchedulerConfig, Server, ServerConfig,
};
use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Trained models become immutable, Arc-shared inference plans:
    //    LUTs and im2col geometry precomputed once, lock-free reads.
    let lenet = demo::lenet_engine(7);
    let mlp = demo::mlp_engine(7);
    println!(
        "compiled `{}`: {:?} → {:?}, {} stages, {} LUT scalars",
        lenet.name().unwrap_or("?"),
        lenet.input_shape(),
        lenet.output_shape(),
        lenet.stage_count(),
        lenet.lut_scalars()
    );

    // 2. Snapshot round trip — the reloaded engine is bit-identical and
    //    carries its model name (format v2).
    let path = std::env::temp_dir().join("pecan-serving-example.psnp");
    lenet.save_snapshot(&path)?;
    let lenet = Arc::new(FrozenEngine::load_snapshot(&path)?);
    println!(
        "snapshot round trip via {} ok (model `{}`)",
        path.display(),
        lenet.name().unwrap_or("?")
    );

    // 3. The batch-first core: the whole batch is ONE column-major matrix
    //    through the entire pipeline — no per-sample splitting anywhere.
    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|k| (0..lenet.input_len()).map(|i| ((i + k) as f32 * 0.017).sin()).collect())
        .collect();
    let batch = InferBatch::from_samples(&inputs, &[lenet.input_len()])?;
    let logits = lenet.infer(batch)?; // [10, 4] column matrix
    let shim = lenet.predict_batch(&inputs)?; // the per-sample shim
    for (i, out) in shim.iter().enumerate() {
        assert_eq!(logits.col(i), &out[..], "shim == matrix pipeline, bitwise");
    }
    println!("batch of {} ran as one [10, 4] matrix through {} stages", 4, lenet.stage_count());

    // 4. Serve BOTH models: each gets its own scheduler and counters; the
    //    first registered one answers the bare routes.
    let registry = EngineRegistry::new();
    let scheduler = SchedulerConfig {
        max_batch: 16,
        max_wait: Duration::from_micros(200),
        queue_capacity: 256,
        workers: 1,
    };
    registry.register(lenet.clone(), scheduler.clone())?;
    registry.register(Arc::new(mlp), scheduler)?;
    let server = Server::start_registry(registry, ServerConfig::default())?;
    let addr = server.local_addr();
    println!(
        "serving {:?} on http://{addr} (default `{}`)",
        server.registry().names(),
        server.registry().default_model().name()
    );

    // 5. An HTTP client (std only — the same one `loadgen` uses at scale):
    //    the default route and the named route answer the same engine.
    let mut client = HttpClient::connect(addr)?;
    let (status, response) = client.predict(None, &inputs[0])?;
    assert_eq!(status, 200, "{response}");
    let (status, named) = client.predict(Some("lenet"), &inputs[0])?;
    assert_eq!(status, 200, "{named}");
    let served = pecan::serve::json::array_field(&response, "output")
        .map_err(|e| format!("bad response: {e}"))?;

    // 6. The wire changed nothing: HTTP answer == in-process answer,
    //    bitwise — and the mlp route serves its own engine.
    let direct = lenet.predict(&inputs[0])?;
    assert_eq!(served.len(), direct.len());
    for (a, b) in served.iter().zip(&direct) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let (status, mlp_health) = client.healthz(Some("mlp"))?;
    assert_eq!(status, 200, "{mlp_health}");
    println!("served logits match in-process inference bit-for-bit: {served:.3?}");

    // 7. Per-model counters under one /stats document.
    let (_, stats) = client.call("GET", "/stats", "")?;
    println!("server stats: {stats}");
    server.stop();
    std::fs::remove_file(&path)?;
    Ok(())
}

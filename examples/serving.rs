//! Serving walkthrough: compile a PECAN model into a frozen engine,
//! snapshot it to disk, reload it, and answer real HTTP traffic through
//! the micro-batching scheduler.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use pecan::serve::client::HttpClient;
use pecan::serve::{demo, FrozenEngine, SchedulerConfig, Server, ServerConfig};
use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A trained model becomes an immutable, Arc-shared inference plan:
    //    LUTs and im2col geometry precomputed once, lock-free reads.
    let engine = demo::lenet_engine(7);
    println!(
        "compiled LeNet engine: {:?} → {:?}, {} stages, {} LUT scalars",
        engine.input_shape(),
        engine.output_shape(),
        engine.stage_count(),
        engine.lut_scalars()
    );

    // 2. Snapshot round trip — the reloaded engine is bit-identical.
    let path = std::env::temp_dir().join("pecan-serving-example.psnp");
    engine.save_snapshot(&path)?;
    let engine = Arc::new(FrozenEngine::load_snapshot(&path)?);
    println!("snapshot round trip via {} ok", path.display());

    // 3. Serve it: bounded queue, micro-batches of up to 16, one worker.
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            scheduler: SchedulerConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(200),
                queue_capacity: 256,
                workers: 1,
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("serving on http://{addr}");

    // 4. An HTTP client (std only — the same one `loadgen` uses at scale).
    let input: Vec<f32> = (0..engine.input_len()).map(|i| (i as f32 * 0.017).sin()).collect();
    let body = pecan::serve::json::format_f32_array(&input);
    let mut client = HttpClient::connect(addr)?;
    let (status, response) = client.call("POST", "/predict", &body)?;
    assert_eq!(status, 200, "{response}");
    let served = pecan::serve::json::array_field(&response, "output")
        .map_err(|e| format!("bad response: {e}"))?;

    // 5. The wire changed nothing: HTTP answer == in-process answer, bitwise.
    let direct = engine.predict(&input)?;
    assert_eq!(served.len(), direct.len());
    for (a, b) in served.iter().zip(&direct) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    println!("served logits match in-process inference bit-for-bit: {served:.3?}");

    let stats = server.stats();
    println!("server stats: {}", stats.to_json());
    server.stop();
    std::fs::remove_file(&path)?;
    Ok(())
}

//! The complexity–accuracy spectrum (§3, Tables 2–4): sweep the prototype
//! count `p` for PECAN-A and PECAN-D on the same task and report accuracy
//! next to the Table-1 op counts. PECAN-A buys accuracy with
//! multiplications; PECAN-D stays multiplier-free throughout.
//!
//! ```text
//! cargo run --release --example accuracy_tradeoff
//! ```

use pecan::core::complexity::{pecan_a_ops, pecan_d_ops, LayerShape};
use pecan::core::{train_pecan, PecanBuilder, PecanVariant, PqLayerSettings, Strategy};
use pecan::datasets::{make_batches, synthetic_mnist};
use pecan::nn::{Batch, Flatten, LayerBuilder, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let data = synthetic_mnist(&mut rng, 400);
    let (train, test) = data.split(320);
    let train_batches: Vec<Batch> = make_batches(&train, 32, Some(&mut rng))
        .into_iter()
        .map(|(i, l)| Batch::new(i, l))
        .collect::<Result<_, _>>()?;
    let test_batches: Vec<Batch> = make_batches(&test, 32, Some(&mut rng))
        .into_iter()
        .map(|(i, l)| Batch::new(i, l))
        .collect::<Result<_, _>>()?;

    // One PECAN classifier layer over the flattened image (784 → 10) so the
    // sweep isolates the effect of p; d = 16 keeps D·d = 784 valid (D = 49).
    let shape = LayerShape::fc(784, 10);
    println!(
        "{:<9} {:>3} {:>12} {:>12} {:>10}",
        "variant", "p", "#Add", "#Mul", "accuracy"
    );
    for &variant in &[PecanVariant::Angle, PecanVariant::Distance] {
        for &p in &[2usize, 4, 8, 16] {
            let tau = if variant == PecanVariant::Angle { 1.0 } else { 0.5 };
            let mut b = PecanBuilder::from_seed(100 + p as u64, variant)
                .with_settings(0, PqLayerSettings::new(p, 16, tau));
            let mut net = Sequential::new();
            net.push(Box::new(Flatten));
            net.push(b.linear(0, 784, 10));
            let report = train_pecan(
                &mut net,
                Strategy::CoOptimization,
                &train_batches,
                &test_batches,
                10,
                0.01,
                8,
            )?;
            let ops = match variant {
                PecanVariant::Angle => pecan_a_ops(&shape, p, 49, 16),
                PecanVariant::Distance => pecan_d_ops(&shape, p, 49, 16),
            };
            println!(
                "{:<9} {:>3} {:>12} {:>12} {:>9.1}%",
                match variant {
                    PecanVariant::Angle => "PECAN-A",
                    PecanVariant::Distance => "PECAN-D",
                },
                p,
                ops.adds,
                ops.muls,
                report.eval_accuracy * 100.0
            );
        }
    }
    println!("\nPECAN-D rows show 0 multiplications at every operating point.");
    Ok(())
}

//! Quickstart: train a small multiplier-free PECAN-D network on synthetic
//! MNIST, then serve it through the CAM/lookup-table inference engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pecan::autograd::Var;
use pecan::core::{train_pecan, LayerLut, PecanBuilder, PecanVariant, PqLayerSettings, Strategy};
use pecan::datasets::{make_batches, synthetic_mnist};
use pecan::nn::{Batch, Flatten, LayerBuilder, MaxPool2d, Relu, Sequential};
use pecan::tensor::{im2col, Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Data: procedural 28×28 digits (stand-in for MNIST; same shapes).
    let data = synthetic_mnist(&mut rng, 600);
    let (train, test) = data.split(500);
    let to_batches = |d: &pecan::datasets::InMemoryDataset,
                      rng: &mut StdRng|
     -> Result<Vec<Batch>, Box<dyn Error>> {
        make_batches(d, 32, Some(rng))
            .into_iter()
            .map(|(images, labels)| Batch::new(images, labels).map_err(Into::into))
            .collect()
    };
    let train_batches = to_batches(&train, &mut rng)?;
    let test_batches = to_batches(&test, &mut rng)?;

    // 2. Model: a compact conv→pool→FC net where the conv and the classifier
    //    are PECAN-D layers (L1 prototype matching + table lookup).
    let mut builder = PecanBuilder::from_seed(42, PecanVariant::Distance)
        .with_settings(0, PqLayerSettings::new(16, 9, 0.5))
        .with_settings(1, PqLayerSettings::new(16, 8, 0.5));
    let mut net = Sequential::new();
    net.push(builder.conv2d(0, 1, 6, 3, 1, 0)); // [6, 26, 26]
    net.push(Box::new(Relu));
    net.push(Box::new(MaxPool2d::new(2, 2))); // [6, 13, 13]
    net.push(Box::new(MaxPool2d::new(2, 2))); // [6, 6, 6]
    net.push(Box::new(Flatten));
    net.push(builder.linear(1, 6 * 6 * 6, 10));

    // 3. Train end-to-end (prototypes and weights jointly, Eq. 4–6).
    println!("training PECAN-D on {} synthetic digits ...", train.len());
    let report = train_pecan(
        &mut net,
        Strategy::CoOptimization,
        &train_batches,
        &test_batches,
        12,
        0.005,
        8,
    )?;
    println!(
        "final train loss {:.3}, test accuracy {:.1}%",
        report.losses.last().copied().unwrap_or(f32::NAN),
        report.eval_accuracy * 100.0
    );

    // 4. Deploy: build the Algorithm-1 engine for the conv layer and verify
    //    it against the training-path forward on one test image.
    let conv = net.layers()[0]
        .as_any()
        .downcast_ref::<pecan::core::PecanConv2d>()
        .expect("layer 0 is a PECAN conv");
    let engine = LayerLut::from_conv(conv)?;
    let image = test.image(0);
    let geom = Conv2dGeometry::new(1, 28, 28, 3, 1, 0)?;
    let cols = im2col(&image, &geom)?;
    let via_lut = engine.forward_matrix(&cols, None)?;

    let x = Var::constant(Tensor::from_vec(
        image.data().to_vec(),
        &[1, 1, 28, 28],
    )?);
    let mut conv_only = PecanBuilder::from_seed(0, PecanVariant::Distance); // unused builder
    let _ = &mut conv_only;
    let direct = net.layers_mut()[0].forward(&x, false)?;
    let direct_flat = direct.value().reshape(&[6, 26 * 26])?;
    println!(
        "CAM/LUT inference vs training path: max |Δ| = {:.2e} (identical arithmetic)",
        via_lut.max_abs_diff(&direct_flat)
    );
    println!(
        "lookup-table memory: {} scalars across {} groups",
        engine.lut_scalars(),
        engine.config().groups()
    );
    Ok(())
}

//! Edge deployment: take a PECAN-D layer, program its prototypes into a
//! fixed-point CAM and its products into an integer lookup table, and show
//! the whole inference path is **multiplier-free integer arithmetic** —
//! then price the network on the paper's VIA-Nano cost model (§4.3).
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use pecan::cam::fixed::{FixedCam, FixedLut, Quantizer};
use pecan::cam::{CostModel, OpCounts};
use pecan::core::configs::vgg_small_plan;
use pecan::core::{LayerLut, PecanConv2d, PecanVariant, PqLayerSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(3);

    // A PECAN-D convolution as it would ship: 8 prototypes per group.
    let layer = PecanConv2d::new(
        &mut rng,
        PecanVariant::Distance,
        PqLayerSettings::new(8, 9, 0.5),
        4,
        8,
        3,
        1,
        1,
    )?;
    let engine = LayerLut::from_conv(&layer)?;

    // Program fixed-point hardware: i16 prototypes, i32 LUT entries.
    let q = Quantizer::new(12);
    let cams: Vec<FixedCam> = layer
        .codebook()
        .to_tensors()
        .iter()
        .map(|cb| {
            let rows = cb.transpose2().expect("codebooks are rank 2");
            FixedCam::from_tensor(&rows, q).expect("valid CAM rows")
        })
        .collect();
    let luts: Vec<FixedLut> = engine
        .luts()
        .iter()
        .map(|l| FixedLut::from_tensor(l.table(), q).expect("valid LUT"))
        .collect();

    // Run one im2col column through the integer pipeline.
    let xcol = pecan::tensor::uniform(&mut rng, &[36, 1], -1.0, 1.0);
    let d = engine.config().dim();
    let mut acc = vec![0i64; engine.outputs()];
    for (j, (cam, lut)) in cams.iter().zip(&luts).enumerate() {
        let query: Vec<i16> = (0..d).map(|k| q.quantize(xcol.get2(j * d + k, 0))).collect();
        let (winner, _) = cam.search(&query)?; // integer L1 — adds only
        lut.accumulate(winner, &mut acc)?; // integer adds only
    }
    let fixed_out = luts[0].dequantize(&acc);
    let float_out = engine.forward_matrix(&xcol, None)?;
    let float_col: Vec<f32> = (0..engine.outputs()).map(|o| float_out.get2(o, 0)).collect();
    let max_err = fixed_out
        .iter()
        .zip(&float_col)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("integer pipeline vs float reference: max |Δ| = {max_err:.4}");
    println!("(arithmetic used: i32 subtract/abs/accumulate + i64 adds — zero multipliers)");

    // Price a full VGG-Small on the paper's cost model (Table 5).
    let plan = vgg_small_plan(10);
    let model = CostModel::via_nano();
    let rows: [(&str, OpCounts); 3] = [
        ("CNN", plan.baseline_total()),
        ("PECAN-A", plan.pecan_a_total()),
        ("PECAN-D", plan.pecan_d_total()),
    ];
    let reference = plan.pecan_d_total();
    println!("\nVGG-Small on Intel VIA Nano 2000 (mul = 4 cyc/4x power, add = 2 cyc/1x):");
    println!("{:<10} {:>12} {:>12} {:>10} {:>14}", "method", "#Mul", "#Add", "power", "latency");
    for (name, ops) in rows {
        println!(
            "{:<10} {:>12} {:>12} {:>10.2} {:>12.2}G",
            name,
            ops.muls,
            ops.adds,
            model.normalized_power(&ops, &reference),
            model.cycles(&ops) as f64 / 1e9
        );
    }
    Ok(())
}

//! Cross-crate integration: the Algorithm-1 CAM/LUT inference engine must
//! agree with the training-path forward for every layer kind and variant —
//! this is the paper's core claim that inference needs only similarity
//! search plus table lookup.

use pecan::autograd::Var;
use pecan::core::{LayerLut, PecanConv2d, PecanLinear, PecanVariant, PqLayerSettings};
use pecan::nn::Layer;
use pecan::tensor::{im2col, Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn conv_lut_equivalence_across_variants_and_shapes() {
    let mut rng = StdRng::seed_from_u64(1);
    for (variant, tau) in [(PecanVariant::Distance, 0.5), (PecanVariant::Angle, 1.0)] {
        for (cin, cout, k, size, p, d) in [
            (1usize, 4usize, 3usize, 7usize, 4usize, 9usize),
            (3, 8, 3, 6, 8, 9),
            (4, 5, 3, 5, 4, 12), // d ≠ k² grouping
        ] {
            let mut layer = PecanConv2d::new(
                &mut rng,
                variant,
                PqLayerSettings::new(p, d, tau),
                cin,
                cout,
                k,
                1,
                1,
            )
            .expect("valid settings");
            let x_t = pecan::tensor::uniform(&mut rng, &[1, cin, size, size], -1.0, 1.0);
            let direct = layer
                .forward(&Var::constant(x_t.clone()), false)
                .expect("forward");

            let engine = LayerLut::from_conv(&layer).expect("engine builds");
            let geom = Conv2dGeometry::new(cin, size, size, k, 1, 1).expect("geometry");
            let img = Tensor::from_vec(x_t.data().to_vec(), &[cin, size, size]).expect("image");
            let cols = im2col(&img, &geom).expect("im2col");
            let via_lut = engine.forward_matrix(&cols, None).expect("LUT forward");

            let direct_flat = direct
                .value()
                .reshape(&[cout, geom.n_patches()])
                .expect("reshape");
            let err = via_lut.max_abs_diff(&direct_flat);
            assert!(
                err < 1e-3,
                "{variant:?} cin={cin} cout={cout} d={d}: LUT diverges by {err}"
            );
        }
    }
}

#[test]
fn linear_lut_equivalence() {
    let mut rng = StdRng::seed_from_u64(2);
    for (variant, tau) in [(PecanVariant::Distance, 0.5), (PecanVariant::Angle, 1.0)] {
        let mut layer = PecanLinear::new(
            &mut rng,
            variant,
            PqLayerSettings::new(8, 8, tau),
            32,
            7,
        )
        .expect("valid settings");
        let x_t = pecan::tensor::uniform(&mut rng, &[5, 32], -1.0, 1.0);
        let direct = layer.forward(&Var::constant(x_t.clone()), false).expect("forward");
        let engine = LayerLut::from_linear(&layer).expect("engine builds");
        let cols = x_t.transpose2().expect("transpose");
        let via_lut = engine.forward_matrix(&cols, None).expect("LUT forward");
        let direct_cols = direct.value().transpose2().expect("transpose");
        assert!(via_lut.max_abs_diff(&direct_cols) < 1e-3, "{variant:?} linear diverges");
    }
}

#[test]
fn pecan_d_inference_is_multiplier_free_in_op_model() {
    use pecan::core::complexity::{pecan_d_ops, LayerShape};
    // representative layers from every architecture in the paper
    let shapes = [
        LayerShape::conv(1, 8, 3, 26, 26),
        LayerShape::conv(512, 512, 3, 8, 8),
        LayerShape::conv(256, 256, 5, 16, 16),
        LayerShape::fc(8192, 10),
    ];
    for s in shapes {
        let rows = s.rows();
        // find a valid grouping
        let d = (1..=rows).rev().find(|d| rows % d == 0 && *d <= 32).unwrap();
        let ops = pecan_d_ops(&s, 64, rows / d, d);
        assert!(ops.is_multiplier_free(), "{s:?}");
    }
}

//! Cross-crate integration: train baseline, PECAN-A and PECAN-D versions of
//! the same topology on the same synthetic data and check the paper's
//! qualitative ordering — everything learns, PECAN-D stays multiplier-free.

use pecan::core::{train_pecan, PecanBuilder, PecanVariant, PqLayerSettings, Strategy};
use pecan::datasets::{make_batches, synthetic_mnist};
use pecan::nn::{Batch, Flatten, LayerBuilder, MaxPool2d, Relu, Sequential, StandardBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn batches(data: &pecan::datasets::InMemoryDataset, rng: &mut StdRng) -> Vec<Batch> {
    make_batches(data, 25, Some(rng))
        .into_iter()
        .map(|(i, l)| Batch::new(i, l).expect("loader emits valid batches"))
        .collect()
}

/// A small conv net all three variants share.
fn build(builder: &mut dyn LayerBuilder) -> Sequential {
    let mut net = Sequential::new();
    net.push(builder.conv2d(0, 1, 6, 3, 1, 0)); // 26×26
    net.push(Box::new(Relu));
    net.push(Box::new(MaxPool2d::new(2, 2))); // 13×13
    net.push(Box::new(MaxPool2d::new(2, 2))); // 6×6
    net.push(Box::new(Flatten));
    net.push(builder.linear(1, 6 * 36, 10));
    net
}

fn run(variant: Option<PecanVariant>, seed: u64) -> f32 {
    let mut rng = StdRng::seed_from_u64(9);
    // Budget tuned to the smallest run that still clears the thresholds
    // below with margin — this is the slowest test in the suite.
    let data = synthetic_mnist(&mut rng, 280);
    let (train, test) = data.split(200);
    let train_b = batches(&train, &mut rng);
    let test_b = batches(&test, &mut rng);

    let mut net = match variant {
        None => build(&mut StandardBuilder::from_seed(seed)),
        Some(v) => {
            // A sharper softmax than the paper's CIFAR settings compensates
            // for the smaller feature magnitudes of this reduced task.
            let tau = if v == PecanVariant::Angle { 0.25 } else { 0.5 };
            let mut b = PecanBuilder::from_seed(seed, v)
                .with_settings(0, PqLayerSettings::new(16, 9, tau))
                .with_settings(1, PqLayerSettings::new(16, 8, tau));
            build(&mut b)
        }
    };
    let report = train_pecan(
        &mut net,
        Strategy::CoOptimization,
        &train_b,
        &test_b,
        7,
        0.006,
        6,
    )
    .expect("training runs");
    report.eval_accuracy
}

#[test]
fn all_three_variants_learn_the_task() {
    // The training GEMMs run on the scoped pool configured by
    // PECAN_NUM_THREADS (default: available_parallelism, capped) — nothing
    // is hardcoded here, and the worker count cannot change results: the
    // packed GEMM is bit-identical across thread counts (gemm_parity tests),
    // so these accuracy thresholds hold for any setting, including the CI
    // PECAN_NUM_THREADS=1 determinism leg.
    let threads = pecan::tensor::configured_threads();
    match std::env::var("PECAN_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        // CI's PECAN_NUM_THREADS=1 leg lands here: a small explicit override
        // must be honored verbatim (larger/invalid values follow the
        // library's own cap policy, not re-asserted here to avoid drift).
        Some(n) if (1..=8).contains(&n) => {
            assert_eq!(threads, n, "env override must be honored");
        }
        _ => assert!(threads >= 1, "thread configuration must yield a worker"),
    }
    println!("training on {threads} GEMM worker(s) (PECAN_NUM_THREADS to override)");
    let baseline = run(None, 31);
    let pecan_a = run(Some(PecanVariant::Angle), 32);
    let pecan_d = run(Some(PecanVariant::Distance), 33);
    println!("baseline {baseline:.3}, PECAN-A {pecan_a:.3}, PECAN-D {pecan_d:.3}");
    // Everything must clearly beat chance (10 classes).
    assert!(baseline > 0.6, "baseline failed to learn: {baseline}");
    assert!(pecan_a > 0.5, "PECAN-A failed to learn: {pecan_a}");
    assert!(pecan_d > 0.4, "PECAN-D failed to learn: {pecan_d}");
}

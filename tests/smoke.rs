//! Smoke test for the README / facade quickstart path: builder → model zoo →
//! forward pass. If this breaks, the first thing every new user tries breaks.

use pecan::autograd::Var;
use pecan::core::{PecanBuilder, PecanVariant};
use pecan::nn::{models, Layer};
use pecan::tensor::Tensor;

#[test]
fn quickstart_lenet_forward_produces_logits() {
    // Mirrors the `src/lib.rs` quickstart verbatim: a multiplier-free
    // PECAN-D LeNet over one zero MNIST frame.
    let mut builder = PecanBuilder::from_seed(0, PecanVariant::Distance);
    let mut net = models::lenet5_modified(&mut builder).expect("lenet builds");
    let logits = net
        .forward(&Var::constant(Tensor::zeros(&[1, 1, 28, 28])), false)
        .expect("forward succeeds");
    assert_eq!(logits.value().dims(), &[1, 10]);
    assert!(
        logits.value().data().iter().all(|v| v.is_finite()),
        "logits must be finite"
    );
}

#[test]
fn quickstart_works_for_both_variants_and_batches() {
    for variant in [PecanVariant::Angle, PecanVariant::Distance] {
        let mut builder = PecanBuilder::from_seed(7, variant);
        let mut net = models::lenet5_modified(&mut builder).expect("lenet builds");
        let logits = net
            .forward(&Var::constant(Tensor::zeros(&[3, 1, 28, 28])), false)
            .expect("forward succeeds");
        assert_eq!(logits.value().dims(), &[3, 10], "{variant:?} batch logits");
    }
}

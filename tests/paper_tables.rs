//! Cross-crate integration: the op-count columns of every paper table must
//! come out of the complexity model + architecture plans. These duplicate a
//! few crate-level pins at the facade level so a regression anywhere in the
//! stack (plans, formulas, cost model) fails loudly.

use pecan::cam::CostModel;
use pecan::core::configs::{
    convmixer_plan, lenet_plan, resnet_plan, vgg_small_plan, DimChoice,
};

#[test]
fn table2_lenet_op_columns() {
    let plan = lenet_plan();
    assert_eq!(plan.baseline_total().muls, 248_096); // 248.10K
    assert_eq!(plan.baseline_total().adds, 248_096);
    assert_eq!(plan.pecan_a_total().muls, 196_880); // 196.88K
    assert_eq!(plan.pecan_d_total().muls, 0);
    assert_eq!(plan.pecan_d_total().adds, 1_998_064); // 2.00M
}

#[test]
fn table3_and_4_op_columns() {
    // CIFAR-10 and CIFAR-100 differ only in the classifier head.
    for classes in [10usize, 100] {
        let vgg = vgg_small_plan(classes);
        assert!((vgg.baseline_total().muls as f64 / 1e9 - 0.61).abs() < 0.01);
        assert!((vgg.pecan_a_total().muls as f64 / 1e9 - 0.54).abs() < 0.01);
        assert!((vgg.pecan_d_total().adds as f64 / 1e9 - 0.37).abs() < 0.01);
        assert_eq!(vgg.pecan_d_total().muls, 0);

        let r20 = resnet_plan(3, classes, None);
        assert!((r20.baseline_total().muls as f64 / 1e6 - 40.55).abs() < 0.5);
        assert!((r20.pecan_a_total().muls as f64 / 1e6 - 38.12).abs() < 0.5);
        assert!((r20.pecan_d_total().adds as f64 / 1e6 - 211.71).abs() < 1.0);

        let r32 = resnet_plan(5, classes, None);
        assert!((r32.baseline_total().muls as f64 / 1e6 - 68.86).abs() < 0.5);
        assert!((r32.pecan_a_total().muls as f64 / 1e6 - 64.20).abs() < 0.5);
        assert!((r32.pecan_d_total().adds as f64 / 1e6 - 353.26).abs() < 1.5);
    }
}

#[test]
fn table5_power_and_latency_columns() {
    let plan = vgg_small_plan(10);
    let model = CostModel::via_nano();
    let cnn = plan.baseline_total();
    let pecan_d = plan.pecan_d_total();
    let adder = pecan::cam::OpCounts::new(2 * cnn.muls, 0); // AdderNet

    // Paper: 8.24 / 3.30 / 1 normalized power; 3.66G / 2.44G / 0.72G cycles.
    assert!((model.normalized_power(&cnn, &pecan_d) - 8.24).abs() < 0.15);
    assert!((model.normalized_power(&adder, &pecan_d) - 3.30).abs() < 0.05);
    assert!((model.cycles(&cnn) as f64 / 1e9 - 3.66).abs() < 0.03);
    assert!((model.cycles(&adder) as f64 / 1e9 - 2.44).abs() < 0.02);
    assert!((model.cycles(&pecan_d) as f64 / 1e9 - 0.72).abs() < 0.03);
}

#[test]
fn table_a4_convmixer_op_columns() {
    let plan = convmixer_plan();
    assert!((plan.baseline_total().muls as f64 / 1e9 - 3.36).abs() < 0.01);
    assert!((plan.pecan_a_total().muls as f64 / 1e9 - 2.36).abs() < 0.01);
    assert!((plan.pecan_d_total().adds as f64 / 1e9 - 0.98).abs() < 0.01);
}

#[test]
fn figure4_dim_ablation_plans_are_constructible() {
    for choice in [DimChoice::Kernel, DimChoice::KernelSq, DimChoice::Cin] {
        let plan = resnet_plan(3, 10, Some(choice));
        assert!(plan.is_valid(), "{choice:?} plan invalid");
        assert!(plan.pecan_d_total().muls == 0);
    }
}

//! Link-and-anchor checker for the repository's markdown documentation.
//!
//! Walks `README.md`, everything under `docs/`, and the crate READMEs,
//! extracts every inline markdown link, and verifies:
//!
//! * relative file links resolve to a file or directory that exists in
//!   the repo (so `docs/*.md` cross-references and README pointers can't
//!   rot silently);
//! * anchor links (`#section`, `file.md#section`) name a heading that
//!   actually exists in the target file, using GitHub's slugification;
//! * absolute URLs are at least well-formed (`http://`/`https://` — the
//!   environment is offline, so they are not fetched).
//!
//! Fenced code blocks are ignored on both sides: links inside them are
//! not checked, and headings inside them do not create anchors.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The documentation surface under test. Deliberately explicit so a new
/// doc must be added here (and a deleted one removed) consciously.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![
        root.join("README.md"),
        root.join("ROADMAP.md"),
        root.join("shims/README.md"),
        root.join("crates/bench/README.md"),
    ];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for e in entries.flatten() {
        if e.path().extension().and_then(|x| x.to_str()) == Some("md") {
            files.push(e.path());
        }
    }
    files.sort();
    assert!(
        files.iter().filter(|f| f.starts_with(&docs)).count() >= 3,
        "expected the architecture / serving-ops / snapshot-format set under docs/"
    );
    files
}

/// Strips fenced code blocks (``` … ```) so neither links nor headings
/// inside them count.
fn without_code_fences(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence {
            out.push_str(line);
            out.push('\n');
        }
    }
    assert!(!in_fence, "unterminated code fence");
    out
}

/// GitHub heading slug: lowercase; keep alphanumerics, `-` and `_`;
/// spaces become hyphens; everything else is dropped.
fn slugify(heading: &str) -> String {
    let mut slug = String::new();
    for c in heading.trim().chars() {
        match c {
            ' ' => slug.push('-'),
            c if c.is_alphanumeric() || c == '-' || c == '_' => {
                slug.extend(c.to_lowercase());
            }
            _ => {}
        }
    }
    slug
}

/// Every anchor a markdown file exposes (its heading slugs, with GitHub's
/// `-1`, `-2` … suffixes for duplicates).
fn anchors(text: &str) -> BTreeSet<String> {
    let mut seen: Vec<String> = Vec::new();
    let mut set = BTreeSet::new();
    for line in without_code_fences(text).lines() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('#') {
            continue;
        }
        let heading = trimmed.trim_start_matches('#');
        if !heading.starts_with(' ') && !heading.is_empty() {
            continue; // "#hashtag", not a heading
        }
        // Strip inline markdown that doesn't contribute to the slug.
        let plain: String = heading.replace(['`', '*'], "");
        let base = slugify(&plain);
        let dupes = seen.iter().filter(|s| **s == base).count();
        seen.push(base.clone());
        set.insert(if dupes == 0 { base } else { format!("{base}-{dupes}") });
    }
    set
}

/// Extracts `(target, context)` for every inline `[text](target)` link.
fn links(text: &str) -> Vec<String> {
    let cleaned = without_code_fences(text);
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(rel_end) = cleaned[start..].find(')') {
                let target = &cleaned[start..start + rel_end];
                // Markdown allows an optional title: [t](url "title").
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    out.push(target.to_string());
                }
                i = start + rel_end;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn every_markdown_link_resolves_and_every_anchor_exists() {
    let root = repo_root();
    let mut checked_links = 0;
    let mut failures = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let own_anchors = anchors(&text);
        for target in links(&text) {
            checked_links += 1;
            let fail = |why: String| format!("{}: [{}] {}", file.display(), target, why);
            if target.starts_with("http://") || target.starts_with("https://") {
                if !target[8..].contains('.') && !target[7..].contains('.') {
                    failures.push(fail("absolute URL without a host".into()));
                }
                continue;
            }
            if target.starts_with("mailto:") {
                continue;
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            // Resolve the file part relative to the linking document.
            let resolved = if path_part.is_empty() {
                file.clone()
            } else {
                let base = file.parent().unwrap_or(&root);
                base.join(path_part)
            };
            if !resolved.exists() {
                failures.push(fail(format!("broken path: {}", resolved.display())));
                continue;
            }
            if let Some(anchor) = anchor {
                let targets = if path_part.is_empty() {
                    own_anchors.clone()
                } else if resolved.extension().and_then(|x| x.to_str()) == Some("md") {
                    anchors(&std::fs::read_to_string(&resolved).expect("readable target"))
                } else {
                    continue; // anchors into non-markdown (e.g. source) not checked
                };
                if !targets.contains(anchor) {
                    failures.push(fail(format!(
                        "missing anchor #{anchor} (available: {})",
                        targets.iter().cloned().collect::<Vec<_>>().join(", ")
                    )));
                }
            }
        }
    }
    assert!(
        checked_links >= 20,
        "suspiciously few links checked ({checked_links}) — extractor regression?"
    );
    assert!(failures.is_empty(), "broken documentation links:\n{}", failures.join("\n"));
}

#[test]
fn docs_cross_reference_each_other_and_the_code() {
    // The three-document set must stay cross-linked: each doc links the
    // other two, and the snapshot spec points at its implementation.
    let root = repo_root();
    let spec = std::fs::read_to_string(root.join("docs/snapshot-format.md")).unwrap();
    let ops = std::fs::read_to_string(root.join("docs/serving-ops.md")).unwrap();
    let arch = std::fs::read_to_string(root.join("docs/architecture.md")).unwrap();
    for (doc, text, others) in [
        ("snapshot-format", &spec, ["serving-ops.md", "architecture.md"]),
        ("serving-ops", &ops, ["architecture.md", "snapshot-format.md"]),
        ("architecture", &arch, ["serving-ops.md", "snapshot-format.md"]),
    ] {
        for other in others {
            assert!(text.contains(other), "docs/{doc}.md must link {other}");
        }
    }
    assert!(spec.contains("crates/serve/src/snapshot.rs"), "spec links its implementation");
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    for doc in ["docs/architecture.md", "docs/serving-ops.md", "docs/snapshot-format.md"] {
        assert!(readme.contains(doc), "README must link {doc}");
    }
}

#[test]
fn slugification_matches_github_conventions() {
    assert_eq!(slugify("Building and testing"), "building-and-testing");
    assert_eq!(slugify("The connection tier: epoll event loop"), "the-connection-tier-epoll-event-loop");
    assert_eq!(slugify("Snapshot v3 (current)"), "snapshot-v3-current");
    assert_eq!(slugify("`serve` flags"), "serve-flags");
    let text = "# A\n## A\n```\n# not a heading\n```\n## B c\n";
    let a = anchors(text);
    assert!(a.contains("a") && a.contains("a-1") && a.contains("b-c"));
    assert!(!a.contains("not-a-heading"));
}

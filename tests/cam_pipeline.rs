//! Cross-crate integration: fixed-point CAM pipeline fidelity and device
//! noise robustness of PECAN-D inference.

use pecan::cam::fixed::{FixedCam, FixedLut, Quantizer};
use pecan::core::{LayerLut, PecanConv2d, PecanVariant, PqLayerSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn layer(seed: u64) -> PecanConv2d {
    let mut rng = StdRng::seed_from_u64(seed);
    PecanConv2d::new(
        &mut rng,
        PecanVariant::Distance,
        PqLayerSettings::new(8, 9, 0.5),
        2,
        6,
        3,
        1,
        1,
    )
    .expect("valid settings")
}

#[test]
fn fixed_point_pipeline_tracks_float_reference() {
    let l = layer(41);
    let engine = LayerLut::from_conv(&l).expect("engine");
    let q = Quantizer::new(12);
    let cams: Vec<FixedCam> = l
        .codebook()
        .to_tensors()
        .iter()
        .map(|cb| FixedCam::from_tensor(&cb.transpose2().unwrap(), q).unwrap())
        .collect();
    let luts: Vec<FixedLut> = engine
        .luts()
        .iter()
        .map(|t| FixedLut::from_tensor(t.table(), q).unwrap())
        .collect();

    let mut rng = StdRng::seed_from_u64(42);
    let xcol = pecan::tensor::uniform(&mut rng, &[18, 25], -1.0, 1.0);
    let float_out = engine.forward_matrix(&xcol, None).expect("float forward");

    let d = engine.config().dim();
    let mut worst = 0.0f32;
    for i in 0..25 {
        let mut acc = vec![0i64; engine.outputs()];
        for (j, (cam, lut)) in cams.iter().zip(&luts).enumerate() {
            let query: Vec<i16> =
                (0..d).map(|k| q.quantize(xcol.get2(j * d + k, i))).collect();
            let (winner, _) = cam.search(&query).expect("search");
            lut.accumulate(winner, &mut acc).expect("accumulate");
        }
        let fixed = luts[0].dequantize(&acc);
        for (o, &fv) in fixed.iter().enumerate() {
            worst = worst.max((fv - float_out.get2(o, i)).abs());
        }
    }
    // 12-bit quantization over 2 groups: error stays in the low milli-range
    assert!(worst < 0.05, "fixed-point error {worst}");
}

#[test]
fn small_device_noise_degrades_gracefully() {
    let l = layer(43);
    let mut rng = StdRng::seed_from_u64(44);
    let xcol = pecan::tensor::uniform(&mut rng, &[18, 200], -1.0, 1.0);

    let engine = LayerLut::from_conv(&l).expect("engine");
    let clean = engine.forward_matrix(&xcol, None).expect("clean forward");

    let mismatch_at = |sigma: f32, seed: u64| -> f32 {
        let mut engine = LayerLut::from_conv(&l).expect("engine");
        let mut rng = StdRng::seed_from_u64(seed);
        engine.perturb_prototypes(sigma, &mut rng);
        let noisy = engine.forward_matrix(&xcol, None).expect("noisy forward");
        // fraction of columns whose output changed at all
        let cols = clean.dims()[1];
        let mut changed = 0;
        for i in 0..cols {
            for o in 0..clean.dims()[0] {
                if (clean.get2(o, i) - noisy.get2(o, i)).abs() > 1e-6 {
                    changed += 1;
                    break;
                }
            }
        }
        changed as f32 / cols as f32
    };

    let tiny = mismatch_at(0.001, 1);
    let moderate = mismatch_at(0.1, 1);
    let huge = mismatch_at(2.0, 1);
    println!("assignment churn: σ=0.001 → {tiny}, σ=0.1 → {moderate}, σ=2.0 → {huge}");
    // tiny noise rarely flips an argmax; catastrophic noise flips most
    assert!(tiny < 0.2, "tiny noise churned {tiny}");
    assert!(huge > moderate || huge > 0.5, "huge noise should churn far more");
}

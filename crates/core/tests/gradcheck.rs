//! Finite-difference gradient checks through complete PECAN layers.
//!
//! PECAN-A is smooth, so its analytic gradients must match central
//! differences tightly. PECAN-D's forward is piecewise constant (hard
//! argmax), so instead of FD we check the *surrogate* path: with a steep
//! annealing slope the codebook gradient of the relaxed objective must
//! match finite differences of that same relaxed objective.

use pecan_autograd::{check_gradients, Var};
use pecan_core::{PecanConv2d, PecanLinear, PecanVariant, PqLayerSettings};
use pecan_nn::Layer;
use pecan_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pecan_a_conv_weight_gradient_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Var::constant(pecan_tensor::uniform(&mut rng, &[1, 1, 5, 5], -1.0, 1.0));
    let w0 = pecan_tensor::uniform(&mut rng, &[2, 9], -0.5, 0.5);
    // The layer clones codebooks internally; rebuild it per evaluation with
    // a fixed seed so the prototypes are identical across calls.
    let report = check_gradients(&w0, 1e-2, 10, |w| {
        let mut layer_rng = StdRng::seed_from_u64(7);
        let layer = PecanConv2d::from_pretrained(
            &mut layer_rng,
            PecanVariant::Angle,
            PqLayerSettings::new(4, 9, 0.5),
            w.to_tensor(),
            1,
            3,
            1,
            0,
            false,
        )
        .expect("layer");
        // Re-thread the Var so gradients reach the checked leaf: run the
        // composed forward manually with the leaf as the weight.
        let geom = layer.geometry(5, 5).expect("geometry");
        let xcol = x.im2col_batch(&geom).expect("im2col");
        let cb = layer.codebook();
        let mut parts = Vec::new();
        for j in 0..cb.config().groups() {
            let xj = xcol
                .slice_rows(j * cb.config().dim(), cb.config().dim())
                .expect("slice");
            let k = pecan_pq::soft_assign_angle(cb.group(j), &xj, 0.5).expect("assign");
            parts.push(cb.group(j).matmul(&k).expect("matmul"));
        }
        let xtilde = pecan_autograd::concat_rows(&parts).expect("concat");
        let y = w.matmul(&xtilde).expect("matmul");
        y.mul(&y).expect("square").sum_all()
    });
    assert!(
        report.passes(3e-2),
        "PECAN-A weight gradient: max rel err {}",
        report.max_relative_error
    );
}

#[test]
fn pecan_a_codebook_gradient_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(2);
    let x_t = pecan_tensor::uniform(&mut rng, &[9, 6], -1.0, 1.0); // im2col slice
    let w_t = pecan_tensor::uniform(&mut rng, &[3, 9], -0.5, 0.5);
    let c0 = pecan_tensor::uniform(&mut rng, &[9, 4], -0.4, 0.4);

    let report = check_gradients(&c0, 1e-3, 12, |c| {
        let x = Var::constant(x_t.clone());
        let w = Var::constant(w_t.clone());
        let k = pecan_pq::soft_assign_angle(c, &x, 0.7).expect("assign");
        let xtilde = c.matmul(&k).expect("reconstruct");
        let y = w.matmul(&xtilde).expect("project");
        y.mul(&y).expect("square").sum_all()
    });
    assert!(
        report.passes(2e-2),
        "PECAN-A codebook gradient: max rel err {}",
        report.max_relative_error
    );
}

#[test]
fn pecan_d_relaxed_codebook_gradient_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(3);
    let x_t = pecan_tensor::uniform(&mut rng, &[6, 5], -1.0, 1.0);
    let c0 = pecan_tensor::uniform(&mut rng, &[6, 3], -0.5, 0.5);
    let slope = 150.0; // steep: surrogate ≈ true sign away from kinks

    let report = check_gradients(&c0, 5e-3, 12, |c| {
        let x = Var::constant(x_t.clone());
        // relaxed objective: sum of softened assignment weights × distances
        let soft = pecan_pq::soft_assign_distance(c, &x, 0.5, slope).expect("assign");
        let xtilde = c.matmul(&soft).expect("reconstruct");
        xtilde.mul(&xtilde).expect("square").sum_all()
    });
    assert!(
        report.passes(5e-2),
        "PECAN-D relaxed gradient: max rel err {}",
        report.max_relative_error
    );
}

#[test]
fn pecan_linear_trains_on_regression_objective() {
    // End-to-end sanity: a PECAN linear layer fits a fixed random target,
    // confirming gradients reach both prototypes and weights.
    let mut rng = StdRng::seed_from_u64(4);
    let mut layer = PecanLinear::new(
        &mut rng,
        PecanVariant::Angle,
        PqLayerSettings::new(8, 8, 0.25),
        16,
        4,
    )
    .expect("layer");
    let x = Var::constant(pecan_tensor::uniform(&mut rng, &[8, 16], -1.0, 1.0));
    let target = Var::constant(pecan_tensor::uniform(&mut rng, &[8, 4], -1.0, 1.0));
    let mut opt = pecan_autograd::Adam::new(layer.parameters(), 0.02);
    let mut first = f32::NAN;
    let mut last = f32::NAN;
    for step in 0..60 {
        use pecan_autograd::Optimizer;
        opt.zero_grad();
        let y = layer.forward(&x, true).expect("forward");
        let diff = y.sub(&target).expect("diff");
        let loss = diff.mul(&diff).expect("sq").mean_all();
        let v = loss.value().data()[0];
        if step == 0 {
            first = v;
        }
        last = v;
        loss.backward();
        opt.step();
    }
    assert!(
        last < first * 0.5,
        "regression loss did not halve: {first} → {last}"
    );
    let _ = Tensor::zeros(&[1]);
}

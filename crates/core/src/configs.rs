//! Paper-scale architecture plans: every layer's shape plus its PECAN-A and
//! PECAN-D codebook settings, exactly as listed in Tables A2 (LeNet),
//! A3 (VGG-Small, ResNet-20/32) and A4 (ConvMixer).
//!
//! These plans drive the #Add/#Mul columns of Tables 2–5 through the
//! [`crate::complexity`] model; the unit tests pin the totals to the
//! paper's reported numbers.

use crate::complexity::{baseline_ops, pecan_a_ops, pecan_d_ops, LayerShape};
use pecan_cam::OpCounts;

/// PQ settings `(p, d)` of one layer under one PECAN variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanSettings {
    /// Prototypes per codebook.
    pub prototypes: usize,
    /// Sub-vector dimension.
    pub dim: usize,
}

impl PlanSettings {
    /// Shorthand constructor.
    pub fn new(prototypes: usize, dim: usize) -> Self {
        Self { prototypes, dim }
    }

    /// Number of groups for a layer with the given im2col rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim` does not divide `rows`.
    pub fn groups_for(&self, rows: usize) -> usize {
        assert_eq!(rows % self.dim, 0, "dim {} must divide rows {rows}", self.dim);
        rows / self.dim
    }
}

/// One layer of an architecture plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanLayer {
    /// Human-readable layer name ("CONV1", "FC2", ...).
    pub name: String,
    /// Compute shape for op counting.
    pub shape: LayerShape,
    /// PECAN-A settings; `None` keeps the layer uncompressed.
    pub angle: Option<PlanSettings>,
    /// PECAN-D settings; `None` keeps the layer uncompressed.
    pub distance: Option<PlanSettings>,
}

impl PlanLayer {
    fn new(
        name: &str,
        shape: LayerShape,
        angle: Option<PlanSettings>,
        distance: Option<PlanSettings>,
    ) -> Self {
        Self { name: name.to_string(), shape, angle, distance }
    }
}

/// A full paper-scale architecture with per-layer PECAN settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchPlan {
    /// Architecture name.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<PlanLayer>,
}

impl ArchPlan {
    /// Total baseline op counts (the "Baseline" rows of Tables 2–4).
    pub fn baseline_total(&self) -> OpCounts {
        self.layers
            .iter()
            .map(|l| baseline_ops(&l.shape))
            .fold(OpCounts::default(), |a, b| a + b)
    }

    /// Total PECAN-A op counts; uncompressed layers contribute their
    /// baseline cost.
    pub fn pecan_a_total(&self) -> OpCounts {
        self.layers
            .iter()
            .map(|l| match l.angle {
                Some(s) => {
                    pecan_a_ops(&l.shape, s.prototypes, s.groups_for(l.shape.rows()), s.dim)
                }
                None => baseline_ops(&l.shape),
            })
            .fold(OpCounts::default(), |a, b| a + b)
    }

    /// Total PECAN-D op counts; uncompressed layers contribute their
    /// baseline cost (which keeps their multiplications — the paper's
    /// ConvMixer keeps the patch embedding and classifier dense).
    pub fn pecan_d_total(&self) -> OpCounts {
        self.layers
            .iter()
            .map(|l| match l.distance {
                Some(s) => {
                    pecan_d_ops(&l.shape, s.prototypes, s.groups_for(l.shape.rows()), s.dim)
                }
                None => baseline_ops(&l.shape),
            })
            .fold(OpCounts::default(), |a, b| a + b)
    }

    /// Validates that every configured layer's `d` divides its im2col rows.
    pub fn is_valid(&self) -> bool {
        self.layers.iter().all(|l| {
            l.angle.map_or(true, |s| l.shape.rows() % s.dim == 0)
                && l.distance.map_or(true, |s| l.shape.rows() % s.dim == 0)
        })
    }
}

fn s(p: usize, d: usize) -> Option<PlanSettings> {
    Some(PlanSettings::new(p, d))
}

/// The modified LeNet-5 plan of Tables A1/A2.
pub fn lenet_plan() -> ArchPlan {
    ArchPlan {
        name: "LeNet-5 (modified)".into(),
        layers: vec![
            PlanLayer::new("CONV1", LayerShape::conv(1, 8, 3, 26, 26), s(4, 9), s(64, 9)),
            PlanLayer::new("CONV2", LayerShape::conv(8, 16, 3, 11, 11), s(8, 24), s(64, 9)),
            PlanLayer::new("FC1", LayerShape::fc(400, 128), s(8, 16), s(64, 8)),
            PlanLayer::new("FC2", LayerShape::fc(128, 64), s(8, 16), s(64, 8)),
            PlanLayer::new("FC3", LayerShape::fc(64, 10), s(8, 16), s(64, 8)),
        ],
    }
}

/// The VGG-Small plan of Table A3 (CIFAR input 32×32).
pub fn vgg_small_plan(num_classes: usize) -> ArchPlan {
    let widths = [128usize, 128, 256, 256, 512, 512];
    let maps = [32usize, 32, 16, 16, 8, 8];
    // Table A3: PECAN-A p/d = 16/9 @32², 16/32 at lower maps; PECAN-D 32/3.
    let a_dims = [9usize, 9, 32, 32, 32, 32];
    let mut layers = Vec::new();
    let mut c_in = 3;
    for i in 0..6 {
        layers.push(PlanLayer::new(
            &format!("CONV{}", i + 1),
            LayerShape::conv(c_in, widths[i], 3, maps[i], maps[i]),
            s(16, a_dims[i]),
            s(32, 3),
        ));
        c_in = widths[i];
    }
    layers.push(PlanLayer::new(
        "FC",
        LayerShape::fc(512 * 4 * 4, num_classes),
        s(16, 16),
        s(32, 16),
    ));
    ArchPlan { name: "VGG-Small".into(), layers }
}

/// The CIFAR ResNet plan of Table A3 (`blocks_per_stage` = 3 → ResNet-20,
/// 5 → ResNet-32). `conv_dim_override` replaces the conv sub-vector
/// dimension for the Fig. 4 ablation (`None` keeps Table A3 settings).
pub fn resnet_plan(
    blocks_per_stage: usize,
    num_classes: usize,
    conv_dim_override: Option<DimChoice>,
) -> ArchPlan {
    let depth = 6 * blocks_per_stage + 2;
    let mut layers = Vec::new();
    // Table A3: conv0 A 8/9 D 128/3; stage convs A 8/9 (32²) or 8/16 (16², 8²), D 64/3.
    let dims_for = |default_a: usize, c_in: usize, k: usize| -> (usize, usize) {
        match conv_dim_override {
            None => (default_a, 3),
            Some(DimChoice::Kernel) => (k, k),      // d = k
            Some(DimChoice::KernelSq) => (k * k, k * k), // d = k²
            Some(DimChoice::Cin) => (c_in, c_in),   // d = cin
        }
    };
    let (a0, d0) = dims_for(9, 3, 3);
    layers.push(PlanLayer::new(
        "CONV0",
        LayerShape::conv(3, 16, 3, 32, 32),
        s(8, a0),
        s(128, d0),
    ));
    let stage_widths = [16usize, 32, 64];
    let stage_maps = [32usize, 16, 8];
    let stage_a_dim = [9usize, 16, 16];
    let mut c_in = 16;
    for stage in 0..3 {
        for b in 0..blocks_per_stage {
            for half in 0..2 {
                let cin_here = if b == 0 && half == 0 { c_in } else { stage_widths[stage] };
                let (a_d, d_d) = dims_for(stage_a_dim[stage], cin_here, 3);
                layers.push(PlanLayer::new(
                    &format!("S{}B{}C{}", stage + 1, b + 1, half + 1),
                    LayerShape::conv(
                        cin_here,
                        stage_widths[stage],
                        3,
                        stage_maps[stage],
                        stage_maps[stage],
                    ),
                    s(8, a_d),
                    s(64, d_d),
                ));
            }
        }
        c_in = stage_widths[stage];
    }
    layers.push(PlanLayer::new(
        "FC",
        LayerShape::fc(64, num_classes),
        s(8, 16),
        s(64, 4),
    ));
    ArchPlan { name: format!("ResNet-{depth}"), layers }
}

/// Prototype-dimension choices of the Fig. 4 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimChoice {
    /// `d = k` (finest grouping, `D = k·cin`).
    Kernel,
    /// `d = k²` (the default, `D = cin`).
    KernelSq,
    /// `d = cin` (coarsest, `D = k²`).
    Cin,
}

/// The modified ConvMixer plan of Table A4 (Tiny-ImageNet, 64×64 input,
/// depth 8, `k = 5`, dim 256, patch 4). The paper keeps the first
/// convolution and the classifier uncompressed.
pub fn convmixer_plan() -> ArchPlan {
    let dim = 256;
    let map = 16; // 64 / patch 4
    let mut layers = vec![PlanLayer::new(
        "PATCH",
        LayerShape::conv(3, dim, 4, map, map),
        None,
        None,
    )];
    for i in 0..8 {
        layers.push(PlanLayer::new(
            &format!("MIX{}", i + 1),
            LayerShape::conv(dim, dim, 5, map, map),
            s(16, 25),
            s(32, 25),
        ));
    }
    layers.push(PlanLayer::new("FC", LayerShape::fc(dim, 200), None, None));
    ArchPlan { name: "ConvMixer-256/8".into(), layers }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: u64, paper_millions: f64, tol: f64) -> bool {
        let a = actual as f64 / 1e6;
        (a - paper_millions).abs() / paper_millions < tol
    }

    #[test]
    fn all_plans_are_valid() {
        assert!(lenet_plan().is_valid());
        assert!(vgg_small_plan(10).is_valid());
        assert!(resnet_plan(3, 10, None).is_valid());
        assert!(resnet_plan(5, 100, None).is_valid());
        assert!(convmixer_plan().is_valid());
        for choice in [DimChoice::Kernel, DimChoice::KernelSq, DimChoice::Cin] {
            assert!(resnet_plan(3, 10, Some(choice)).is_valid(), "{choice:?}");
        }
    }

    #[test]
    fn lenet_totals_match_table_2() {
        let plan = lenet_plan();
        assert_eq!(plan.baseline_total().muls, 248_096);
        assert_eq!(plan.pecan_a_total().muls, 196_880);
        let d = plan.pecan_d_total();
        assert_eq!(d.muls, 0);
        assert_eq!(d.adds, 1_998_064);
    }

    #[test]
    fn vgg_small_totals_match_table_3() {
        let plan = vgg_small_plan(10);
        // Paper: 0.61G / 0.54G / 0.37G
        assert!(close(plan.baseline_total().muls, 607.7, 0.01), "{}", plan.baseline_total());
        assert!(close(plan.pecan_a_total().muls, 541.9, 0.01), "{}", plan.pecan_a_total());
        let d = plan.pecan_d_total();
        assert_eq!(d.muls, 0);
        assert!(close(d.adds, 365.4, 0.01), "{d}");
    }

    #[test]
    fn resnet20_totals_match_table_3() {
        let plan = resnet_plan(3, 10, None);
        // Paper: 40.55M / 38.12M / 211.71M
        assert!(close(plan.baseline_total().muls, 40.55, 0.01), "{}", plan.baseline_total());
        assert!(close(plan.pecan_a_total().muls, 38.12, 0.01), "{}", plan.pecan_a_total());
        let d = plan.pecan_d_total();
        assert_eq!(d.muls, 0);
        assert!(close(d.adds, 211.71, 0.01), "{d}");
    }

    #[test]
    fn resnet32_totals_match_table_3() {
        let plan = resnet_plan(5, 10, None);
        // Paper: 68.86M / 64.20M / 353.26M
        assert!(close(plan.baseline_total().muls, 68.86, 0.01), "{}", plan.baseline_total());
        assert!(close(plan.pecan_a_total().muls, 64.20, 0.01), "{}", plan.pecan_a_total());
        let d = plan.pecan_d_total();
        assert_eq!(d.muls, 0);
        assert!(close(d.adds, 353.26, 0.01), "{d}");
    }

    #[test]
    fn convmixer_totals_match_table_a4() {
        let plan = convmixer_plan();
        // Paper: 3.36G / 2.36G / 0.98G (uncompressed layers add ~3.2M)
        assert!(close(plan.baseline_total().muls, 3358.0, 0.01), "{}", plan.baseline_total());
        assert!(close(plan.pecan_a_total().muls, 2361.0, 0.01), "{}", plan.pecan_a_total());
        let d = plan.pecan_d_total();
        // uncompressed patch+fc keep ~3.2M muls
        assert!(d.muls < 4_000_000, "{d}");
        assert!(close(d.adds, 977.0, 0.01), "{d}");
    }

    #[test]
    fn cifar100_head_changes_little() {
        let p10 = resnet_plan(3, 10, None).baseline_total().muls;
        let p100 = resnet_plan(3, 100, None).baseline_total().muls;
        assert!(p100 > p10);
        assert!(p100 - p10 < 10_000); // only the classifier grows
    }

    #[test]
    fn dim_ablation_changes_group_structure() {
        let k = resnet_plan(3, 10, Some(DimChoice::Kernel));
        let k2 = resnet_plan(3, 10, Some(DimChoice::KernelSq));
        let cin = resnet_plan(3, 10, Some(DimChoice::Cin));
        // finer dims → more groups → more PECAN-D adds
        let adds_k = k.pecan_d_total().adds;
        let adds_k2 = k2.pecan_d_total().adds;
        let adds_cin = cin.pecan_d_total().adds;
        assert!(adds_k > adds_k2, "{adds_k} vs {adds_k2}");
        assert!(adds_k2 > adds_cin, "{adds_k2} vs {adds_cin}");
    }
}

//! The closed-form inference-complexity model of Table 1.
//!
//! For a layer with `cin` input channels, `cout` outputs, kernel `k` and
//! output map `Hout×Wout` (an FC layer is the `k = Hout = Wout = 1` case),
//! with PQ grouping `D` groups of dimension `d` and `p` prototypes:
//!
//! | method | #Add | #Mul |
//! |---|---|---|
//! | baseline | `cin·HW·k²·cout` | same |
//! | PECAN-A | `p·D·HW·(d + cout)` | same |
//! | PECAN-D | `D·HW·(2pd + cout)` | **0** |
//!
//! The unit tests pin these against the paper's Table 2/A2 numbers (LeNet
//! CONV1: 48.67K baseline, 45.97K PECAN-A, 784.16K/0 PECAN-D, ...).

use pecan_cam::OpCounts;

/// The shape of one compute layer for op counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Input channels `cin` (for FC: input features).
    pub c_in: usize,
    /// Output channels `cout` (for FC: output features).
    pub c_out: usize,
    /// Square kernel size `k` (1 for FC).
    pub kernel: usize,
    /// Output height (1 for FC).
    pub h_out: usize,
    /// Output width (1 for FC).
    pub w_out: usize,
}

impl LayerShape {
    /// A convolution layer shape.
    pub fn conv(c_in: usize, c_out: usize, kernel: usize, h_out: usize, w_out: usize) -> Self {
        Self { c_in, c_out, kernel, h_out, w_out }
    }

    /// A fully-connected layer shape (`k = Hout = Wout = 1`).
    pub fn fc(in_features: usize, out_features: usize) -> Self {
        Self { c_in: in_features, c_out: out_features, kernel: 1, h_out: 1, w_out: 1 }
    }

    /// Whether this is an FC layer.
    pub fn is_fc(&self) -> bool {
        self.kernel == 1 && self.h_out == 1 && self.w_out == 1
    }

    /// Rows of the im2col matrix: `cin·k²`.
    pub fn rows(&self) -> usize {
        self.c_in * self.kernel * self.kernel
    }

    /// Output positions `Hout·Wout`.
    pub fn positions(&self) -> usize {
        self.h_out * self.w_out
    }
}

/// Baseline (im2col GEMM) op counts: `cin·HW·k²·cout` MACs.
pub fn baseline_ops(shape: &LayerShape) -> OpCounts {
    let n = (shape.rows() * shape.positions() * shape.c_out) as u64;
    OpCounts::mac(n)
}

/// PECAN-A op counts: `p·D·HW·(d + cout)` additions and multiplications
/// (distance stage `p·D·HW·d` MACs + weighted retrieval `p·D·HW·cout`).
///
/// # Panics
///
/// Panics (debug) if `groups·dim != cin·k²`.
pub fn pecan_a_ops(shape: &LayerShape, prototypes: usize, groups: usize, dim: usize) -> OpCounts {
    debug_assert_eq!(groups * dim, shape.rows(), "grouping must cover the im2col rows");
    let n = (prototypes * groups * shape.positions() * (dim + shape.c_out)) as u64;
    OpCounts::mac(n)
}

/// PECAN-D op counts: `D·HW·(2pd + cout)` additions, **zero**
/// multiplications (L1 matching `2pd` per group-position + one LUT column
/// accumulation of `cout`).
///
/// # Panics
///
/// Panics (debug) if `groups·dim != cin·k²`.
pub fn pecan_d_ops(shape: &LayerShape, prototypes: usize, groups: usize, dim: usize) -> OpCounts {
    debug_assert_eq!(groups * dim, shape.rows(), "grouping must cover the im2col rows");
    let adds = (groups * shape.positions() * (2 * prototypes * dim + shape.c_out)) as u64;
    OpCounts::new(adds, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Table A2 — modified LeNet-5 on MNIST, layer by layer.

    #[test]
    fn lenet_conv1_matches_table_a2() {
        let s = LayerShape::conv(1, 8, 3, 26, 26);
        assert_eq!(baseline_ops(&s), OpCounts::mac(48_672)); // 48.67K
        assert_eq!(pecan_a_ops(&s, 4, 1, 9), OpCounts::mac(45_968)); // 45.97K
        assert_eq!(pecan_d_ops(&s, 64, 1, 9), OpCounts::new(784_160, 0)); // 784.16K
    }

    #[test]
    fn lenet_conv2_matches_table_a2() {
        let s = LayerShape::conv(8, 16, 3, 11, 11);
        assert_eq!(baseline_ops(&s), OpCounts::mac(139_392)); // 139.39K
        assert_eq!(pecan_a_ops(&s, 8, 3, 24), OpCounts::mac(116_160)); // 116.16K
        assert_eq!(pecan_d_ops(&s, 64, 8, 9), OpCounts::new(1_130_624, 0)); // 1.13M
    }

    #[test]
    fn lenet_fc_layers_match_table_a2() {
        let fc1 = LayerShape::fc(400, 128);
        assert_eq!(baseline_ops(&fc1), OpCounts::mac(51_200));
        assert_eq!(pecan_a_ops(&fc1, 8, 25, 16), OpCounts::mac(28_800));
        assert_eq!(pecan_d_ops(&fc1, 64, 50, 8), OpCounts::new(57_600, 0));

        let fc2 = LayerShape::fc(128, 64);
        assert_eq!(baseline_ops(&fc2), OpCounts::mac(8_192));
        assert_eq!(pecan_a_ops(&fc2, 8, 8, 16), OpCounts::mac(5_120));
        assert_eq!(pecan_d_ops(&fc2, 64, 16, 8), OpCounts::new(17_408, 0));

        let fc3 = LayerShape::fc(64, 10);
        assert_eq!(baseline_ops(&fc3), OpCounts::mac(640));
        assert_eq!(pecan_a_ops(&fc3, 8, 4, 16), OpCounts::mac(832));
        assert_eq!(pecan_d_ops(&fc3, 64, 8, 8), OpCounts::new(8_272, 0));
    }

    #[test]
    fn lenet_totals_match_table_2() {
        // Table 2: baseline 248.10K, PECAN-A 196.88K, PECAN-D 2.00M adds / 0 muls
        let shapes = [
            LayerShape::conv(1, 8, 3, 26, 26),
            LayerShape::conv(8, 16, 3, 11, 11),
            LayerShape::fc(400, 128),
            LayerShape::fc(128, 64),
            LayerShape::fc(64, 10),
        ];
        let a_cfg = [(4, 1, 9), (8, 3, 24), (8, 25, 16), (8, 8, 16), (8, 4, 16)];
        let d_cfg = [(64, 1, 9), (64, 8, 9), (64, 50, 8), (64, 16, 8), (64, 8, 8)];

        let base: u64 = shapes.iter().map(|s| baseline_ops(s).muls).sum();
        assert_eq!(base, 248_096); // 248.10K

        let a: u64 = shapes
            .iter()
            .zip(a_cfg)
            .map(|(s, (p, g, d))| pecan_a_ops(s, p, g, d).muls)
            .sum();
        assert_eq!(a, 196_880); // 196.88K

        let d_total: OpCounts = shapes
            .iter()
            .zip(d_cfg)
            .map(|(s, (p, g, dd))| pecan_d_ops(s, p, g, dd))
            .fold(OpCounts::default(), |acc, o| acc + o);
        assert_eq!(d_total.muls, 0);
        assert_eq!(d_total.adds, 1_998_064); // ≈ 2.00M
    }

    #[test]
    fn fc_is_conv_with_unit_kernel() {
        let fc = LayerShape::fc(128, 64);
        let conv = LayerShape::conv(128, 64, 1, 1, 1);
        assert_eq!(fc, conv);
        assert!(fc.is_fc());
        assert!(!LayerShape::conv(3, 8, 3, 32, 32).is_fc());
    }

    #[test]
    fn pecan_d_is_always_multiplier_free() {
        let s = LayerShape::conv(64, 128, 3, 8, 8);
        assert!(pecan_d_ops(&s, 64, 192, 3).is_multiplier_free());
    }
}

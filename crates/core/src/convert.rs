use crate::layers::{PecanConv2d, PecanLinear};
use pecan_nn::{Conv2d, Layer, LayerBuilder, Linear, StandardBuilder};
use pecan_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Which similarity measure a PECAN layer uses (§3.1 vs §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PecanVariant {
    /// PECAN-A: dot-product attention over prototypes (multiplicative,
    /// higher accuracy).
    Angle,
    /// PECAN-D: L1 nearest-prototype with one-hot lookup (additive only —
    /// multiplier-free inference).
    Distance,
}

/// Per-layer codebook settings: prototypes `p`, sub-vector dimension `d`
/// and softmax temperature `τ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PqLayerSettings {
    /// Prototypes per codebook (`p`).
    pub prototypes: usize,
    /// Sub-vector dimension (`d`, must divide `cin·k²`).
    pub dim: usize,
    /// Softmax temperature (`τ`; paper: 1.0 for PECAN-A, 0.5 for PECAN-D).
    pub tau: f32,
}

impl PqLayerSettings {
    /// Convenience constructor.
    pub fn new(prototypes: usize, dim: usize, tau: f32) -> Self {
        Self { prototypes, dim, tau }
    }
}

/// Pretrained parameters harvested from a baseline layer, keyed by builder
/// layer index.
#[derive(Debug, Clone)]
struct Pretrained {
    weight: Tensor,
    bias: Option<Tensor>,
}

/// [`LayerBuilder`] that instantiates the model zoo with PECAN layers.
///
/// * per-layer settings via [`PecanBuilder::with_settings`] (defaults:
///   `d = k²` for convolutions, `d = 16`/`8` for FC layers; `p = 8`/`τ = 1`
///   for PECAN-A, `p = 64`/`τ = 0.5` for PECAN-D — the shapes of
///   Tables A2/A3);
/// * selected layers can be kept as standard (uncompressed) layers via
///   [`PecanBuilder::keep_standard`] — the paper does this for ConvMixer's
///   patch embedding and classifier;
/// * pretrained weights (from a [`RecordingBuilder`]-instrumented baseline)
///   can be injected with [`PecanBuilder::with_pretrained_from`], optionally
///   frozen for the uni-optimization strategy.
pub struct PecanBuilder {
    rng: StdRng,
    variant: PecanVariant,
    settings: HashMap<usize, PqLayerSettings>,
    standard: HashSet<usize>,
    pretrained: HashMap<usize, Pretrained>,
    freeze_weights: bool,
    fallback: StandardBuilder,
    default_tau: Option<f32>,
    default_prototypes: Option<usize>,
    conv_dim_rule: Option<Box<dyn Fn(usize, usize) -> usize>>,
}

impl PecanBuilder {
    /// Creates a builder with a fixed seed.
    pub fn from_seed(seed: u64, variant: PecanVariant) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            variant,
            settings: HashMap::new(),
            standard: HashSet::new(),
            pretrained: HashMap::new(),
            freeze_weights: false,
            fallback: StandardBuilder::from_seed(seed ^ 0x5eed),
            default_tau: None,
            default_prototypes: None,
            conv_dim_rule: None,
        }
    }

    /// Creates a builder seeding from the caller's RNG.
    pub fn new<R: Rng>(rng: &mut R, variant: PecanVariant) -> Self {
        Self::from_seed(rng.gen(), variant)
    }

    /// Overrides the codebook settings of layer `index`.
    pub fn with_settings(mut self, index: usize, settings: PqLayerSettings) -> Self {
        self.settings.insert(index, settings);
        self
    }

    /// Applies a whole settings table (layer index → settings).
    pub fn with_settings_table(
        mut self,
        table: impl IntoIterator<Item = (usize, PqLayerSettings)>,
    ) -> Self {
        self.settings.extend(table);
        self
    }

    /// Keeps layer `index` as a standard (uncompressed) layer.
    pub fn keep_standard(mut self, index: usize) -> Self {
        self.standard.insert(index);
        self
    }

    /// Injects pretrained parameters recorded by a [`RecordingBuilder`];
    /// when `freeze` is set, the PECAN layers exclude those weights from
    /// training (uni-optimization, §4.4.2).
    pub fn with_pretrained_from(mut self, recorder: &RecordingBuilder, freeze: bool) -> Self {
        for (index, (weight, bias)) in recorder.snapshot() {
            self.pretrained.insert(index, Pretrained { weight, bias });
        }
        self.freeze_weights = freeze;
        self
    }

    /// Which similarity variant this builder produces.
    pub fn variant(&self) -> PecanVariant {
        self.variant
    }

    /// Overrides the softmax temperature used by default settings (explicit
    /// [`PecanBuilder::with_settings`] entries are unaffected).
    pub fn with_default_tau(mut self, tau: f32) -> Self {
        self.default_tau = Some(tau);
        self
    }

    /// Overrides the prototype count used by default settings.
    pub fn with_default_prototypes(mut self, prototypes: usize) -> Self {
        self.default_prototypes = Some(prototypes);
        self
    }

    /// Overrides the conv sub-vector dimension rule: `rule(c_in, kernel)`
    /// returns `d` (must divide `c_in·kernel²`). Drives the Fig. 4
    /// prototype-dimension ablation (`d ∈ {k, k², cin}`).
    pub fn with_conv_dim_rule(
        mut self,
        rule: impl Fn(usize, usize) -> usize + 'static,
    ) -> Self {
        self.conv_dim_rule = Some(Box::new(rule));
        self
    }

    fn default_conv_settings(&self, c_in: usize, kernel: usize) -> PqLayerSettings {
        let dim = match &self.conv_dim_rule {
            Some(rule) => rule(c_in, kernel),
            None => kernel * kernel,
        };
        let base = match self.variant {
            PecanVariant::Angle => PqLayerSettings::new(8, dim, 1.0),
            PecanVariant::Distance => PqLayerSettings::new(64, dim, 0.5),
        };
        self.apply_default_overrides(base)
    }

    fn apply_default_overrides(&self, mut base: PqLayerSettings) -> PqLayerSettings {
        if let Some(tau) = self.default_tau {
            base.tau = tau;
        }
        if let Some(p) = self.default_prototypes {
            base.prototypes = p;
        }
        base
    }

    fn default_linear_settings(&self, in_features: usize) -> PqLayerSettings {
        let pick_dim = |target: usize| {
            if in_features % target == 0 {
                target
            } else {
                // largest divisor of in_features not exceeding the target
                (1..=target.min(in_features))
                    .rev()
                    .find(|d| in_features % d == 0)
                    .unwrap_or(1)
            }
        };
        let base = match self.variant {
            PecanVariant::Angle => PqLayerSettings::new(8, pick_dim(16), 1.0),
            PecanVariant::Distance => PqLayerSettings::new(64, pick_dim(8), 0.5),
        };
        self.apply_default_overrides(base)
    }
}

impl LayerBuilder for PecanBuilder {
    fn conv2d(
        &mut self,
        layer_index: usize,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Box<dyn Layer> {
        if self.standard.contains(&layer_index) {
            return self.fallback.conv2d(layer_index, c_in, c_out, kernel, stride, padding);
        }
        let settings = self
            .settings
            .get(&layer_index)
            .copied()
            .unwrap_or_else(|| self.default_conv_settings(c_in, kernel));
        let layer = if let Some(pre) = self.pretrained.get(&layer_index) {
            PecanConv2d::from_pretrained(
                &mut self.rng,
                self.variant,
                settings,
                pre.weight.clone(),
                c_in,
                kernel,
                stride,
                padding,
                self.freeze_weights,
            )
        } else {
            PecanConv2d::new(
                &mut self.rng,
                self.variant,
                settings,
                c_in,
                c_out,
                kernel,
                stride,
                padding,
            )
        };
        Box::new(layer.unwrap_or_else(|e| {
            panic!("invalid PECAN settings for conv layer {layer_index}: {e}")
        }))
    }

    fn linear(
        &mut self,
        layer_index: usize,
        in_features: usize,
        out_features: usize,
    ) -> Box<dyn Layer> {
        if self.standard.contains(&layer_index) {
            return self.fallback.linear(layer_index, in_features, out_features);
        }
        let settings = self
            .settings
            .get(&layer_index)
            .copied()
            .unwrap_or_else(|| self.default_linear_settings(in_features));
        let layer = if let Some(pre) = self.pretrained.get(&layer_index) {
            PecanLinear::from_pretrained(
                &mut self.rng,
                self.variant,
                settings,
                pre.weight.clone(),
                pre.bias.clone().unwrap_or_else(|| Tensor::zeros(&[out_features])),
                self.freeze_weights,
            )
        } else {
            PecanLinear::new(&mut self.rng, self.variant, settings, in_features, out_features)
        };
        Box::new(layer.unwrap_or_else(|e| {
            panic!("invalid PECAN settings for linear layer {layer_index}: {e}")
        }))
    }
}

/// A [`LayerBuilder`] that wraps another builder and records `Var` handles
/// of every conv/linear parameter it creates.
///
/// Because parameters are shared reference-counted handles, the recorded
/// snapshot reflects *trained* values after the model has been optimised —
/// harvest them with [`RecordingBuilder::snapshot`] and feed a
/// [`PecanBuilder`] for the uni-optimization experiments (Table 6).
pub struct RecordingBuilder {
    inner: StandardBuilder,
    recorded: Vec<(usize, pecan_autograd::Var, Option<pecan_autograd::Var>)>,
}

impl RecordingBuilder {
    /// Wraps a standard builder with the given seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { inner: StandardBuilder::from_seed(seed), recorded: Vec::new() }
    }

    /// Current (possibly trained) weights per layer index.
    pub fn snapshot(&self) -> Vec<(usize, (Tensor, Option<Tensor>))> {
        self.recorded
            .iter()
            .map(|(idx, w, b)| (*idx, (w.to_tensor(), b.as_ref().map(|b| b.to_tensor()))))
            .collect()
    }
}

impl LayerBuilder for RecordingBuilder {
    fn conv2d(
        &mut self,
        layer_index: usize,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Box<dyn Layer> {
        let layer = self.inner.conv2d(layer_index, c_in, c_out, kernel, stride, padding);
        let conv = layer
            .as_any()
            .downcast_ref::<Conv2d>()
            .expect("StandardBuilder produces Conv2d");
        self.recorded
            .push((layer_index, conv.weight().clone(), conv.bias().cloned()));
        layer
    }

    fn linear(
        &mut self,
        layer_index: usize,
        in_features: usize,
        out_features: usize,
    ) -> Box<dyn Layer> {
        let layer = self.inner.linear(layer_index, in_features, out_features);
        let lin = layer
            .as_any()
            .downcast_ref::<Linear>()
            .expect("StandardBuilder produces Linear");
        self.recorded
            .push((layer_index, lin.weight().clone(), Some(lin.bias().clone())));
        layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pecan_autograd::Var;
    use pecan_nn::models;

    #[test]
    fn pecan_lenet_builds_and_runs_both_variants() {
        for variant in [PecanVariant::Angle, PecanVariant::Distance] {
            let mut b = PecanBuilder::from_seed(7, variant);
            let mut net = models::lenet5_modified(&mut b).unwrap();
            let x = Var::constant(Tensor::zeros(&[1, 1, 28, 28]));
            let y = net.forward(&x, false).unwrap();
            assert_eq!(y.value().dims(), &[1, 10]);
        }
    }

    #[test]
    fn keep_standard_leaves_layer_unconverted() {
        let mut b = PecanBuilder::from_seed(7, PecanVariant::Distance).keep_standard(0);
        let conv = b.conv2d(0, 3, 8, 3, 1, 1);
        assert_eq!(conv.name(), "Conv2d");
        let pecan_conv = b.conv2d(1, 3, 8, 3, 1, 1);
        assert_eq!(pecan_conv.name(), "PecanConv2d");
    }

    #[test]
    fn settings_table_overrides_defaults() {
        let mut b = PecanBuilder::from_seed(7, PecanVariant::Angle)
            .with_settings(0, PqLayerSettings::new(4, 27, 1.0));
        let conv = b.conv2d(0, 3, 8, 3, 1, 1);
        let pecan = conv.as_any().downcast_ref::<PecanConv2d>().unwrap();
        assert_eq!(pecan.pq_config().prototypes(), 4);
        assert_eq!(pecan.pq_config().dim(), 27);
        assert_eq!(pecan.pq_config().groups(), 1);
    }

    #[test]
    fn recording_builder_harvests_trained_weights() {
        let mut rec = RecordingBuilder::from_seed(3);
        let layer = rec.conv2d(0, 1, 2, 3, 1, 0);
        // simulate training: mutate the live weight
        let conv = layer.as_any().downcast_ref::<Conv2d>().unwrap();
        conv.weight().update_value(|w| {
            w.data_mut()[0] = 42.0;
        });
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1 .0.data()[0], 42.0);
    }

    #[test]
    fn pretrained_injection_freezes_weights() {
        let mut rec = RecordingBuilder::from_seed(3);
        let _ = rec.conv2d(0, 1, 4, 3, 1, 0);
        let mut b = PecanBuilder::from_seed(9, PecanVariant::Distance)
            .with_pretrained_from(&rec, true)
            .with_settings(0, PqLayerSettings::new(4, 9, 0.5));
        let conv = b.conv2d(0, 1, 4, 3, 1, 0);
        let pecan = conv.as_any().downcast_ref::<PecanConv2d>().unwrap();
        assert!(pecan.is_weight_frozen());
        assert_eq!(pecan.parameters().len(), 1); // codebook only
    }

    #[test]
    fn linear_default_dim_divides_inputs() {
        // 400 is not divisible by 16 default? 400 / 16 = 25 exactly; try a
        // prime-ish feature count to exercise the divisor search.
        let mut b = PecanBuilder::from_seed(1, PecanVariant::Angle);
        let lin = b.linear(0, 62, 10); // 62 = 2·31 → dim 2
        let pecan = lin.as_any().downcast_ref::<PecanLinear>().unwrap();
        assert_eq!(62 % pecan.pq_config().dim(), 0);
    }
}

use crate::convert::{PecanVariant, PqLayerSettings};
use pecan_autograd::{concat_rows, Var};
use pecan_nn::Layer;
use pecan_pq::{anneal_slope, assign_distance_ste, soft_assign_angle, Codebook, PqConfig};
use pecan_tensor::{Conv2dGeometry, ShapeError, Tensor};
use rand::Rng;
use std::any::Any;

/// Quantizes the columns of an im2col matrix group-by-group and rebuilds
/// the approximated feature matrix `X̃` (Eq. 2 / Eq. 3–5).
fn quantize_columns(
    codebook: &Codebook,
    variant: PecanVariant,
    tau: f32,
    slope: f32,
    xcol: &Var,
) -> Result<Var, ShapeError> {
    let d = codebook.config().dim();
    let mut parts = Vec::with_capacity(codebook.config().groups());
    for j in 0..codebook.config().groups() {
        let xj = xcol.slice_rows(j * d, d)?;
        let assignment = match variant {
            PecanVariant::Angle => soft_assign_angle(codebook.group(j), &xj, tau)?,
            PecanVariant::Distance => {
                assign_distance_ste(codebook.group(j), &xj, tau, slope)?
            }
        };
        parts.push(codebook.group(j).matmul(&assignment)?);
    }
    concat_rows(&parts)
}

/// A convolution realised through product quantization + table lookup —
/// the PECAN replacement for `Conv2d` (§3).
///
/// During training the layer runs the differentiable composition
/// `F · X̃` where `X̃` is the prototype reconstruction of the im2col matrix;
/// at inference the same arithmetic is served by [`crate::LayerLut`]
/// (Algorithm 1), which the test suite asserts is numerically identical.
pub struct PecanConv2d {
    weight: Var, // [cout, cin·k²] — the flattened filter matrix F
    codebook: Codebook,
    variant: PecanVariant,
    c_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    slope: f32,
    freeze_weight: bool,
}

impl PecanConv2d {
    /// Creates a PECAN convolution with He-initialised weights and
    /// uniform-initialised prototypes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `settings.dim` does not divide
    /// `c_in·kernel²`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        rng: &mut R,
        variant: PecanVariant,
        settings: PqLayerSettings,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, ShapeError> {
        let fan_in = c_in * kernel * kernel;
        let weight = Var::parameter(pecan_tensor::he_normal(rng, &[c_out, fan_in], fan_in));
        Self::with_weight(rng, variant, settings, weight, c_in, kernel, stride, padding, false)
    }

    /// Creates a PECAN convolution around an existing (e.g. pretrained)
    /// flattened weight matrix. With `freeze_weight = true` the weight is
    /// excluded from [`Layer::parameters`] — the paper's uni-optimization
    /// strategy (§4.4.2).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes are inconsistent with the config.
    #[allow(clippy::too_many_arguments)]
    pub fn from_pretrained<R: Rng>(
        rng: &mut R,
        variant: PecanVariant,
        settings: PqLayerSettings,
        weight: Tensor,
        c_in: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        freeze_weight: bool,
    ) -> Result<Self, ShapeError> {
        weight.shape().expect_rank(2)?;
        if weight.dims()[1] != c_in * kernel * kernel {
            return Err(ShapeError::new(format!(
                "pretrained conv weight {:?} does not match cin {c_in}, k {kernel}",
                weight.dims()
            )));
        }
        let weight = Var::parameter(weight);
        Self::with_weight(
            rng,
            variant,
            settings,
            weight,
            c_in,
            kernel,
            stride,
            padding,
            freeze_weight,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_weight<R: Rng>(
        rng: &mut R,
        variant: PecanVariant,
        settings: PqLayerSettings,
        weight: Var,
        c_in: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        freeze_weight: bool,
    ) -> Result<Self, ShapeError> {
        let rows = c_in * kernel * kernel;
        let config =
            PqConfig::for_rows(rows, settings.prototypes, settings.dim, settings.tau)?;
        let c_out = weight.value().dims()[0];
        let codebook = Codebook::random(rng, config);
        Ok(Self {
            weight,
            codebook,
            variant,
            c_in,
            c_out,
            kernel,
            stride,
            padding,
            slope: 1.0,
            freeze_weight,
        })
    }

    /// The flattened filter matrix `F` (`[cout, cin·k²]`).
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The layer's codebooks.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Which similarity measure this layer uses.
    pub fn variant(&self) -> PecanVariant {
        self.variant
    }

    /// `(c_in, c_out, kernel, stride, padding)`.
    pub fn conv_config(&self) -> (usize, usize, usize, usize, usize) {
        (self.c_in, self.c_out, self.kernel, self.stride, self.padding)
    }

    /// The PQ configuration (p, D, d, τ).
    pub fn pq_config(&self) -> &PqConfig {
        self.codebook.config()
    }

    /// Current annealed sign-gradient slope `a` (PECAN-D).
    pub fn slope(&self) -> f32 {
        self.slope
    }

    /// Whether the filter weights are frozen (uni-optimization).
    pub fn is_weight_frozen(&self) -> bool {
        self.freeze_weight
    }

    /// Geometry for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the kernel does not fit.
    pub fn geometry(&self, h: usize, w: usize) -> Result<Conv2dGeometry, ShapeError> {
        Conv2dGeometry::new(self.c_in, h, w, self.kernel, self.stride, self.padding)
    }
}

impl Layer for PecanConv2d {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        let dims = input.value().dims().to_vec();
        if dims.len() != 4 || dims[1] != self.c_in {
            return Err(ShapeError::new(format!(
                "PecanConv2d({}, {}) got input {:?}",
                self.c_in, self.c_out, dims
            )));
        }
        let geom = self.geometry(dims[2], dims[3])?;
        let xcol = input.im2col_batch(&geom)?;
        let tau = self.pq_config().tau();
        let xtilde = quantize_columns(&self.codebook, self.variant, tau, self.slope, &xcol)?;
        let y2d = self.weight.matmul(&xtilde)?;
        y2d.cols_to_nchw(dims[0], geom.h_out(), geom.w_out())
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.codebook.parameters();
        if !self.freeze_weight {
            p.push(self.weight.clone());
        }
        p
    }

    fn name(&self) -> &'static str {
        "PecanConv2d"
    }

    fn set_epoch(&mut self, epoch: usize, total: usize) {
        if matches!(self.variant, PecanVariant::Distance) {
            self.slope = anneal_slope(epoch, total);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A fully-connected layer realised through product quantization + table
/// lookup — the PECAN replacement for `Linear` (the FC rows of Tables A2/A3
/// treat it as a `k = Hout = Wout = 1` convolution).
pub struct PecanLinear {
    weight: Var, // [out, in]
    bias: Var,   // [out]
    codebook: Codebook,
    variant: PecanVariant,
    in_features: usize,
    out_features: usize,
    slope: f32,
    freeze_weight: bool,
}

impl PecanLinear {
    /// Creates a PECAN linear layer with Xavier-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `settings.dim` does not divide
    /// `in_features`.
    pub fn new<R: Rng>(
        rng: &mut R,
        variant: PecanVariant,
        settings: PqLayerSettings,
        in_features: usize,
        out_features: usize,
    ) -> Result<Self, ShapeError> {
        let weight = pecan_tensor::xavier_uniform(
            rng,
            &[out_features, in_features],
            in_features,
            out_features,
        );
        Self::from_pretrained(
            rng,
            variant,
            settings,
            weight,
            Tensor::zeros(&[out_features]),
            false,
        )
    }

    /// Creates a PECAN linear layer around pretrained parameters, optionally
    /// freezing them (uni-optimization).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes are inconsistent with the config.
    pub fn from_pretrained<R: Rng>(
        rng: &mut R,
        variant: PecanVariant,
        settings: PqLayerSettings,
        weight: Tensor,
        bias: Tensor,
        freeze_weight: bool,
    ) -> Result<Self, ShapeError> {
        weight.shape().expect_rank(2)?;
        bias.shape().expect_rank(1)?;
        let (out_features, in_features) = (weight.dims()[0], weight.dims()[1]);
        if bias.len() != out_features {
            return Err(ShapeError::new("linear bias does not match weight rows"));
        }
        let config =
            PqConfig::for_rows(in_features, settings.prototypes, settings.dim, settings.tau)?;
        let codebook = Codebook::random(rng, config);
        Ok(Self {
            weight: Var::parameter(weight),
            bias: Var::parameter(bias),
            codebook,
            variant,
            in_features,
            out_features,
            slope: 1.0,
            freeze_weight,
        })
    }

    /// The weight matrix `[out, in]`.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Var {
        &self.bias
    }

    /// The layer's codebooks.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Which similarity measure this layer uses.
    pub fn variant(&self) -> PecanVariant {
        self.variant
    }

    /// `(in_features, out_features)`.
    pub fn features(&self) -> (usize, usize) {
        (self.in_features, self.out_features)
    }

    /// The PQ configuration (p, D, d, τ).
    pub fn pq_config(&self) -> &PqConfig {
        self.codebook.config()
    }

    /// Whether the weights are frozen (uni-optimization).
    pub fn is_weight_frozen(&self) -> bool {
        self.freeze_weight
    }
}

impl Layer for PecanLinear {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        let dims = input.value().dims().to_vec();
        if dims.len() != 2 || dims[1] != self.in_features {
            return Err(ShapeError::new(format!(
                "PecanLinear({}, {}) got input {:?}",
                self.in_features, self.out_features, dims
            )));
        }
        // [N, in] → [in, N]: columns become the "feature sub-vectors".
        let xcol = input.transpose2()?;
        let tau = self.pq_config().tau();
        let xtilde = quantize_columns(&self.codebook, self.variant, tau, self.slope, &xcol)?;
        let y2d = self.weight.matmul(&xtilde)?.add_bias_rows(&self.bias)?;
        y2d.transpose2()
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.codebook.parameters();
        if !self.freeze_weight {
            p.push(self.weight.clone());
            p.push(self.bias.clone());
        }
        p
    }

    fn name(&self) -> &'static str {
        "PecanLinear"
    }

    fn set_epoch(&mut self, epoch: usize, total: usize) {
        if matches!(self.variant, PecanVariant::Distance) {
            self.slope = anneal_slope(epoch, total);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn settings(p: usize, d: usize) -> PqLayerSettings {
        PqLayerSettings { prototypes: p, dim: d, tau: 0.5 }
    }

    #[test]
    fn pecan_conv_forward_shape_both_variants() {
        let mut rng = StdRng::seed_from_u64(0);
        for variant in [PecanVariant::Angle, PecanVariant::Distance] {
            let mut layer =
                PecanConv2d::new(&mut rng, variant, settings(4, 9), 2, 5, 3, 1, 1).unwrap();
            let x = Var::constant(pecan_tensor::uniform(&mut rng, &[2, 2, 6, 6], -1.0, 1.0));
            let y = layer.forward(&x, true).unwrap();
            assert_eq!(y.value().dims(), &[2, 5, 6, 6]);
        }
    }

    #[test]
    fn pecan_conv_rejects_bad_grouping() {
        let mut rng = StdRng::seed_from_u64(0);
        // cin·k² = 18, dim 5 does not divide
        assert!(
            PecanConv2d::new(&mut rng, PecanVariant::Angle, settings(4, 5), 2, 5, 3, 1, 1)
                .is_err()
        );
    }

    #[test]
    fn distance_variant_trains_codebook_through_ste() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer =
            PecanConv2d::new(&mut rng, PecanVariant::Distance, settings(3, 9), 1, 2, 3, 1, 0)
                .unwrap();
        let x = Var::constant(pecan_tensor::uniform(&mut rng, &[1, 1, 5, 5], -1.0, 1.0));
        let y = layer.forward(&x, true).unwrap();
        y.mul(&y).unwrap().sum_all().backward();
        for group in layer.codebook().groups() {
            let g = group.grad().expect("codebook group receives gradient");
            assert!(g.data().iter().any(|&v| v.abs() > 0.0));
        }
        assert!(layer.weight().grad().is_some());
    }

    #[test]
    fn frozen_weights_are_not_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        let weight = Tensor::zeros(&[4, 9]);
        let layer = PecanConv2d::from_pretrained(
            &mut rng,
            PecanVariant::Distance,
            settings(4, 9),
            weight,
            1,
            3,
            1,
            0,
            true,
        )
        .unwrap();
        // only the single codebook group remains trainable
        assert_eq!(layer.parameters().len(), 1);
        assert!(layer.is_weight_frozen());
    }

    #[test]
    fn pecan_linear_forward_and_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer =
            PecanLinear::new(&mut rng, PecanVariant::Angle, settings(4, 8), 16, 5).unwrap();
        let x = Var::constant(pecan_tensor::uniform(&mut rng, &[3, 16], -1.0, 1.0));
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.value().dims(), &[3, 5]);
        // 2 codebook groups + weight + bias
        assert_eq!(layer.parameters().len(), 4);
        assert!(layer.forward(&Var::constant(Tensor::zeros(&[3, 9])), true).is_err());
    }

    #[test]
    fn epoch_annealing_only_affects_distance() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d_layer =
            PecanConv2d::new(&mut rng, PecanVariant::Distance, settings(2, 9), 1, 2, 3, 1, 0)
                .unwrap();
        let mut a_layer =
            PecanConv2d::new(&mut rng, PecanVariant::Angle, settings(2, 9), 1, 2, 3, 1, 0)
                .unwrap();
        d_layer.set_epoch(100, 100);
        a_layer.set_epoch(100, 100);
        assert!(d_layer.slope() > 50.0);
        assert!((a_layer.slope() - 1.0).abs() < 1e-6);
    }
}

//! Usage-driven prototype pruning (§5 / Fig. 6).
//!
//! After training, many prototypes are never selected at inference (the
//! paper reports 26 of 64 used in ResNet-20's second convolution), so they
//! — and their lookup-table entries — can be removed with **zero** accuracy
//! impact: the winner of every L1 search is by definition a used prototype,
//! and removing non-winners cannot change any argmax.

use crate::{LayerLut, PecanVariant};
use pecan_pq::{PqConfig, UsageStats};
use pecan_tensor::{ShapeError, Tensor};

/// Outcome of pruning one layer.
#[derive(Debug)]
pub struct PruneReport {
    /// The compacted inference engine.
    pub engine: LayerLut,
    /// Prototypes kept per group (indices into the original codebooks).
    pub kept: Vec<Vec<usize>>,
    /// Fraction of (prototype + LUT) memory removed.
    pub memory_saved: f32,
}

/// Prunes never-used prototypes from a PECAN-D layer given usage statistics
/// collected on representative data, rebuilding a compact [`LayerLut`].
///
/// Groups where *no* prototype was used keep their first prototype (an
/// all-unused group means the calibration data never exercised the layer,
/// and an empty codebook would be invalid).
///
/// # Errors
///
/// Returns [`ShapeError`] when `stats` does not match the layer shape or
/// the layer is not PECAN-D (weighted PECAN-A retrieval touches every
/// prototype, so usage-based pruning does not apply).
pub fn prune_unused(
    variant: PecanVariant,
    config: PqConfig,
    weight: &Tensor,
    codebooks: &[Tensor],
    bias: Option<Tensor>,
    stats: &UsageStats,
) -> Result<PruneReport, ShapeError> {
    if variant != PecanVariant::Distance {
        return Err(ShapeError::new(
            "usage-based pruning applies to PECAN-D (hard assignment) only",
        ));
    }
    if stats.groups() != config.groups() || stats.prototypes() != config.prototypes() {
        return Err(ShapeError::new(format!(
            "usage stats {}×{} do not match config {}×{}",
            stats.groups(),
            stats.prototypes(),
            config.groups(),
            config.prototypes()
        )));
    }
    let mut kept: Vec<Vec<usize>> = Vec::with_capacity(config.groups());
    let mut max_kept = 1usize;
    for g in 0..config.groups() {
        let used: Vec<usize> = (0..config.prototypes())
            .filter(|&m| stats.counts(g)[m] > 0)
            .collect();
        let used = if used.is_empty() { vec![0] } else { used };
        max_kept = max_kept.max(used.len());
        kept.push(used);
    }

    // Rebuild per-group codebooks at a common (maximum) width so one
    // PqConfig covers all groups; groups with fewer survivors repeat their
    // last survivor (harmless: duplicates can never win over themselves
    // differently).
    let d = config.dim();
    let mut new_codebooks = Vec::with_capacity(config.groups());
    for (g, keep) in kept.iter().enumerate() {
        let mut cb = Tensor::zeros(&[d, max_kept]);
        for slot in 0..max_kept {
            let src = keep[slot.min(keep.len() - 1)];
            for k in 0..d {
                cb.set2(k, slot, codebooks[g].get2(k, src));
            }
        }
        new_codebooks.push(cb);
    }
    let new_config = PqConfig::for_rows(config.rows(), max_kept, d, config.tau())?;
    let engine = LayerLut::build(variant, new_config, weight, &new_codebooks, bias)?;

    let before = config.prototype_scalars() + config.lut_scalars(weight.dims()[0]);
    let after = new_config.prototype_scalars() + new_config.lut_scalars(weight.dims()[0]);
    let memory_saved = 1.0 - after as f32 / before as f32;
    Ok(PruneReport { engine, kept, memory_saved })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PecanConv2d, PqLayerSettings};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PecanConv2d, Tensor) {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = PecanConv2d::new(
            &mut rng,
            PecanVariant::Distance,
            PqLayerSettings::new(8, 9, 0.5),
            1,
            4,
            3,
            1,
            1,
        )
        .unwrap();
        let xcol = pecan_tensor::uniform(&mut rng, &[9, 40], -1.0, 1.0);
        (layer, xcol)
    }

    #[test]
    fn pruned_engine_is_output_equivalent_on_calibration_data() {
        let (layer, xcol) = setup();
        let engine = LayerLut::from_conv(&layer).unwrap();
        let mut stats = engine.new_stats();
        let reference = engine.forward_matrix(&xcol, Some(&mut stats)).unwrap();

        let report = prune_unused(
            PecanVariant::Distance,
            *layer.pq_config(),
            &layer.weight().to_tensor(),
            &layer.codebook().to_tensors(),
            None,
            &stats,
        )
        .unwrap();
        let pruned_out = report.engine.forward_matrix(&xcol, None).unwrap();
        assert!(
            pruned_out.max_abs_diff(&reference) < 1e-5,
            "pruning changed outputs by {}",
            pruned_out.max_abs_diff(&reference)
        );
    }

    #[test]
    fn pruning_reports_memory_savings_when_prototypes_idle() {
        let (layer, _) = setup();
        // fabricate stats where only prototypes 0 and 3 are used
        let mut stats = UsageStats::new(1, 8);
        stats.record_all(0, &[0, 3, 3, 0]);
        let report = prune_unused(
            PecanVariant::Distance,
            *layer.pq_config(),
            &layer.weight().to_tensor(),
            &layer.codebook().to_tensors(),
            None,
            &stats,
        )
        .unwrap();
        assert_eq!(report.kept, vec![vec![0, 3]]);
        assert!(report.memory_saved > 0.5, "saved {}", report.memory_saved);
        assert_eq!(report.engine.config().prototypes(), 2);
    }

    #[test]
    fn pruning_rejects_angle_variant_and_bad_stats() {
        let (layer, _) = setup();
        let stats = UsageStats::new(1, 8);
        assert!(prune_unused(
            PecanVariant::Angle,
            *layer.pq_config(),
            &layer.weight().to_tensor(),
            &layer.codebook().to_tensors(),
            None,
            &stats,
        )
        .is_err());
        let wrong = UsageStats::new(2, 8);
        assert!(prune_unused(
            PecanVariant::Distance,
            *layer.pq_config(),
            &layer.weight().to_tensor(),
            &layer.codebook().to_tensors(),
            None,
            &wrong,
        )
        .is_err());
    }

    #[test]
    fn empty_groups_keep_a_placeholder_prototype() {
        let (layer, _) = setup();
        let stats = UsageStats::new(1, 8); // nothing used
        let report = prune_unused(
            PecanVariant::Distance,
            *layer.pq_config(),
            &layer.weight().to_tensor(),
            &layer.codebook().to_tensors(),
            None,
            &stats,
        )
        .unwrap();
        assert_eq!(report.kept, vec![vec![0]]);
        assert_eq!(report.engine.config().prototypes(), 1);
    }
}

use crate::layers::PecanConv2d;
use crate::LayerLut;
use pecan_tensor::{ShapeError, Tensor};

/// The three matrices of one Fig. 5 panel: the flattened input features,
/// their PECAN-D quantized reconstruction, and the codebook that produced
/// it — for one codebook group of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizationSnapshot {
    /// Original feature sub-matrix `X(j)` (`[d, cols]`).
    pub features: Tensor,
    /// Quantized reconstruction `X̃(j)` (`[d, cols]`; every column is some
    /// prototype).
    pub quantized: Tensor,
    /// The group's codebook `C(j)` (`[d, p]`).
    pub codebook: Tensor,
    /// Winning prototype per column.
    pub assignments: Vec<usize>,
}

impl QuantizationSnapshot {
    /// Mean per-element absolute reconstruction error `|X − X̃|`.
    pub fn reconstruction_error(&self) -> f32 {
        let diff: f32 = self
            .features
            .data()
            .iter()
            .zip(self.quantized.data())
            .map(|(&a, &b)| (a - b).abs())
            .sum();
        diff / self.features.len().max(1) as f32
    }

    /// Renders a matrix as a coarse ASCII heatmap (rows × columns, five
    /// intensity levels) — the textual stand-in for Fig. 5's images.
    pub fn heatmap(matrix: &Tensor) -> String {
        let (rows, cols) = (matrix.dims()[0], matrix.dims()[1]);
        let lo = matrix.min();
        let hi = matrix.max();
        let span = (hi - lo).max(1e-9);
        let glyphs = [' ', '░', '▒', '▓', '█'];
        let mut out = String::with_capacity(rows * (cols + 1));
        for r in 0..rows {
            for c in 0..cols {
                let t = ((matrix.get2(r, c) - lo) / span * 4.0).round() as usize;
                out.push(glyphs[t.min(4)]);
            }
            out.push('\n');
        }
        out
    }
}

/// Captures the Fig. 5 visualisation data for one group of a PECAN-D
/// convolution: runs the hard assignment over the given im2col columns and
/// reconstructs `X̃(j) = C(j)·one_hot(k(j))`.
///
/// # Errors
///
/// Returns [`ShapeError`] when `group` is out of range or `xcol` does not
/// match the layer's geometry.
pub fn quantization_snapshot(
    layer: &PecanConv2d,
    xcol: &Tensor,
    group: usize,
) -> Result<QuantizationSnapshot, ShapeError> {
    let config = *layer.pq_config();
    if group >= config.groups() {
        return Err(ShapeError::new(format!(
            "group {group} out of range for {} groups",
            config.groups()
        )));
    }
    let groups = layer.codebook().split_rows(xcol)?;
    let features = groups[group].clone();
    let codebook = layer.codebook().group(group).to_tensor();
    let scores = pecan_pq::l1_scores(&codebook, &features)?;
    let assignments = pecan_pq::hard_assign(&scores)?;
    let mut quantized = Tensor::zeros(features.dims());
    for (i, &m) in assignments.iter().enumerate() {
        for k in 0..config.dim() {
            quantized.set2(k, i, codebook.get2(k, m));
        }
    }
    // LayerLut is the canonical assignment path; cross-check on debug builds.
    debug_assert!({
        let engine = LayerLut::from_conv(layer)?;
        let mut stats = engine.new_stats();
        engine.forward_matrix(xcol, Some(&mut stats))?;
        stats.counts(group).iter().sum::<u64>() as usize == assignments.len()
    });
    Ok(QuantizationSnapshot { features, quantized, codebook, assignments })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PecanVariant, PqLayerSettings};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> PecanConv2d {
        let mut rng = StdRng::seed_from_u64(0);
        PecanConv2d::new(
            &mut rng,
            PecanVariant::Distance,
            PqLayerSettings::new(4, 9, 0.5),
            2,
            3,
            3,
            1,
            1,
        )
        .unwrap()
    }

    #[test]
    fn snapshot_columns_are_prototypes() {
        let l = layer();
        let mut rng = StdRng::seed_from_u64(1);
        let xcol = pecan_tensor::uniform(&mut rng, &[18, 12], -1.0, 1.0);
        let snap = quantization_snapshot(&l, &xcol, 1).unwrap();
        assert_eq!(snap.features.dims(), &[9, 12]);
        assert_eq!(snap.quantized.dims(), &[9, 12]);
        assert_eq!(snap.codebook.dims(), &[9, 4]);
        // every quantized column equals the assigned prototype
        for (i, &m) in snap.assignments.iter().enumerate() {
            for k in 0..9 {
                assert_eq!(snap.quantized.get2(k, i), snap.codebook.get2(k, m));
            }
        }
        assert!(snap.reconstruction_error() > 0.0);
    }

    #[test]
    fn quantizing_prototypes_has_zero_error() {
        let l = layer();
        // feed the group-0 prototypes themselves as features
        let cb = l.codebook().group(0).to_tensor(); // [9, 4]
        let mut xcol = Tensor::zeros(&[18, 4]);
        for r in 0..9 {
            for c in 0..4 {
                xcol.set2(r, c, cb.get2(r, c));
            }
        }
        let snap = quantization_snapshot(&l, &xcol, 0).unwrap();
        assert!(snap.reconstruction_error() < 1e-6);
        assert_eq!(snap.assignments, vec![0, 1, 2, 3]);
    }

    #[test]
    fn heatmap_has_row_per_matrix_row() {
        let m = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.25], &[2, 2]).unwrap();
        let art = QuantizationSnapshot::heatmap(&m);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('█'));
    }

    #[test]
    fn group_out_of_range_is_error() {
        let l = layer();
        let xcol = Tensor::zeros(&[18, 4]);
        assert!(quantization_snapshot(&l, &xcol, 2).is_err());
    }
}

use pecan_autograd::{Adam, StepDecay};
use pecan_nn::{accuracy, train_epoch, Batch, Layer};
use pecan_tensor::ShapeError;

/// The two PECAN training strategies of §4.4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Train weights *and* prototypes jointly from scratch (used for
    /// CIFAR-scale experiments; the stronger strategy in Table 6).
    CoOptimization,
    /// Freeze pretrained weights and learn only the prototypes (used for
    /// the MNIST experiments). The freezing itself is configured when
    /// building the model ([`crate::PecanBuilder::with_pretrained_from`]);
    /// this variant documents intent and is reported in summaries.
    UniOptimization,
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Strategy used.
    pub strategy: Strategy,
    /// Per-epoch mean training loss.
    pub losses: Vec<f32>,
    /// Final accuracy on the evaluation batches.
    pub eval_accuracy: f32,
}

/// Trains a (PECAN or baseline) model with Adam + step-decay, driving the
/// per-epoch hooks PECAN-D needs for its annealed sign gradient (Eq. 6):
/// every epoch, [`Layer::set_epoch`] is broadcast before the pass.
///
/// # Errors
///
/// Returns [`ShapeError`] when the model rejects a batch shape.
///
/// # Example
///
/// ```no_run
/// use pecan_core::{train_pecan, PecanBuilder, PecanVariant, Strategy};
/// use pecan_nn::models;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let mut b = PecanBuilder::from_seed(0, PecanVariant::Distance);
/// let mut net = models::lenet5_modified(&mut b)?;
/// let (train, test): (Vec<_>, Vec<_>) = (vec![], vec![]);
/// let report = train_pecan(
///     &mut net, Strategy::CoOptimization, &train, &test, 10, 0.001, 200,
/// )?;
/// println!("accuracy {:.2}%", report.eval_accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
pub fn train_pecan(
    model: &mut dyn Layer,
    strategy: Strategy,
    train_batches: &[Batch],
    eval_batches: &[Batch],
    epochs: usize,
    learning_rate: f32,
    decay_epoch: usize,
) -> Result<TrainingReport, ShapeError> {
    let params = model.parameters();
    let mut opt = Adam::new(params, learning_rate);
    let schedule = StepDecay::new(learning_rate, decay_epoch.max(1), 0.1);
    let mut losses = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        model.set_epoch(epoch, epochs);
        schedule.apply(&mut opt, epoch);
        let stats = train_epoch(model, &mut opt, train_batches)?;
        losses.push(stats.loss);
    }
    let eval_accuracy = accuracy(model, eval_batches)?;
    Ok(TrainingReport { strategy, losses, eval_accuracy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PecanBuilder, PecanVariant, PqLayerSettings};
    use pecan_nn::{Flatten, LayerBuilder, Sequential};
    use pecan_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two-class batches separable by which image half carries energy.
    fn spatial_batches(rng: &mut StdRng, n_batches: usize, batch: usize) -> Vec<Batch> {
        let mut out = Vec::new();
        for _ in 0..n_batches {
            let mut images = Tensor::zeros(&[batch, 1, 4, 4]);
            let mut labels = Vec::new();
            for i in 0..batch {
                let class = rng.gen_range(0..2usize);
                for y in 0..4 {
                    for x in 0..4 {
                        let lit = if class == 0 { y < 2 } else { y >= 2 };
                        let v = if lit { 1.0 } else { -1.0 } + rng.gen_range(-0.2..0.2);
                        images.set(&[i, 0, y, x], v);
                    }
                }
                labels.push(class);
            }
            out.push(Batch::new(images, labels).unwrap());
        }
        out
    }

    fn tiny_pecan_model(variant: PecanVariant, seed: u64) -> Sequential {
        let mut b = PecanBuilder::from_seed(seed, variant)
            .with_settings(0, PqLayerSettings::new(8, 16, 0.5));
        let mut net = Sequential::new();
        net.push(Box::new(Flatten));
        net.push(b.linear(0, 16, 2));
        net
    }

    #[test]
    fn pecan_d_model_learns_separable_task() {
        let mut rng = StdRng::seed_from_u64(21);
        let train = spatial_batches(&mut rng, 6, 16);
        let test = spatial_batches(&mut rng, 2, 16);
        let mut net = tiny_pecan_model(PecanVariant::Distance, 22);
        let report =
            train_pecan(&mut net, Strategy::CoOptimization, &train, &test, 30, 0.01, 20)
                .unwrap();
        assert!(
            report.eval_accuracy > 0.9,
            "PECAN-D failed to learn: accuracy {}",
            report.eval_accuracy
        );
        assert_eq!(report.losses.len(), 30);
        assert!(report.losses.last().unwrap() < report.losses.first().unwrap());
    }

    #[test]
    fn pecan_a_model_learns_separable_task() {
        let mut rng = StdRng::seed_from_u64(23);
        let train = spatial_batches(&mut rng, 6, 16);
        let test = spatial_batches(&mut rng, 2, 16);
        let mut net = tiny_pecan_model(PecanVariant::Angle, 24);
        let report =
            train_pecan(&mut net, Strategy::CoOptimization, &train, &test, 30, 0.01, 20)
                .unwrap();
        assert!(
            report.eval_accuracy > 0.9,
            "PECAN-A failed to learn: accuracy {}",
            report.eval_accuracy
        );
    }

    #[test]
    fn empty_training_still_reports() {
        let mut net = tiny_pecan_model(PecanVariant::Angle, 25);
        let report =
            train_pecan(&mut net, Strategy::UniOptimization, &[], &[], 3, 0.01, 1).unwrap();
        assert_eq!(report.strategy, Strategy::UniOptimization);
        assert_eq!(report.losses, vec![0.0, 0.0, 0.0]);
    }
}

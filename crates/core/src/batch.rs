//! Batch-first activation carrier for the Algorithm-1 inference path.
//!
//! [`InferBatch`] is the unit of work that flows through a compiled
//! inference pipeline: **one contiguous column-major `[features, batch]`
//! buffer** plus the per-sample shape it encodes. Keeping the whole batch
//! in a single matrix is what lets consecutive table-lookup layers feed
//! the lane-blocked `pecan-index` scanners wide column matrices instead of
//! per-sample slivers — the PQ-DNN throughput recipe of PQA (Abouelhamayed
//! et al., 2023) and PQTable (Matsui et al., 2017).
//!
//! # Layout contract
//!
//! The buffer is **column-major**: column `i` (one sample, or one im2col
//! patch) occupies the contiguous range `data[i * features .. (i + 1) *
//! features]`. Within a column, the sample is flattened in the usual
//! row-major order of its `sample_shape` — a `[c, h, w]` feature map
//! stores channel-major, exactly like a rank-3 [`Tensor`]. Two
//! consequences the pipeline relies on:
//!
//! * every per-column operation (CAM query gathers, bias seeding, LUT
//!   accumulation, pooling windows) reads and writes contiguous memory;
//! * reinterpreting the per-sample shape ([`InferBatch::reshaped`], e.g.
//!   flatten `[c, h, w] → [c·h·w]`) is metadata-only — zero copies.
//!
//! This is the transpose of the row-major `[rows, cols]` matrices the
//! training-path tools pass around; [`InferBatch::from_matrix`] /
//! [`InferBatch::to_matrix`] convert (with a copy) at the boundary.

use pecan_tensor::{Conv2dGeometry, ShapeError, Tensor};

/// A batch of activations as one contiguous column-major matrix.
///
/// **Layout contract**: column `i` (one sample, or one im2col patch)
/// occupies the contiguous range `data[i · features .. (i + 1) ·
/// features]`; within a column the sample is flattened row-major over
/// `sample_shape` (a `[c, h, w]` feature map stores channel-major,
/// exactly like a rank-3 [`Tensor`]). Per-column work therefore touches
/// contiguous memory, and reshapes ([`InferBatch::reshaped`], e.g.
/// flatten) are metadata-only. This is the *transpose* of the row-major
/// `[rows, cols]` matrices the training-path tools pass around;
/// [`InferBatch::from_matrix`] / [`InferBatch::to_matrix`] convert (with
/// a copy) at the boundary.
///
/// Constructed at the edge of a serving pipeline (one column per
/// request), transformed in place by each stage, and split back into
/// per-sample vectors only when the responses leave the process.
///
/// # Example
///
/// ```
/// use pecan_core::InferBatch;
///
/// let batch = InferBatch::from_samples(
///     &[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]],
///     &[2, 2],
/// )?;
/// assert_eq!((batch.features(), batch.cols()), (4, 2));
/// assert_eq!(batch.col(1), &[5.0, 6.0, 7.0, 8.0]);
/// // flatten is metadata-only
/// let flat = batch.reshaped(&[4])?;
/// assert_eq!(flat.sample_shape(), &[4]);
/// # Ok::<(), pecan_tensor::ShapeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InferBatch {
    data: Vec<f32>,
    sample_shape: Vec<usize>,
    features: usize,
    cols: usize,
}

fn checked_features(sample_shape: &[usize]) -> Result<usize, ShapeError> {
    if sample_shape.is_empty() || sample_shape.contains(&0) {
        return Err(ShapeError::new(format!(
            "sample shape {sample_shape:?} must be non-empty with non-zero dims"
        )));
    }
    Ok(sample_shape.iter().product())
}

impl InferBatch {
    /// An all-zero batch of `cols` samples of shape `sample_shape`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `sample_shape` is empty or has a zero
    /// dimension. `cols == 0` (an empty batch) is valid.
    pub fn zeros(sample_shape: &[usize], cols: usize) -> Result<Self, ShapeError> {
        let features = checked_features(sample_shape)?;
        Ok(Self {
            data: vec![0.0; features * cols],
            sample_shape: sample_shape.to_vec(),
            features,
            cols,
        })
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len()` is not `features · cols`
    /// for the given shape.
    pub fn from_data(
        data: Vec<f32>,
        sample_shape: &[usize],
        cols: usize,
    ) -> Result<Self, ShapeError> {
        let features = checked_features(sample_shape)?;
        if data.len() != features * cols {
            return Err(ShapeError::new(format!(
                "buffer of {} for {cols} columns of {features} features",
                data.len()
            )));
        }
        Ok(Self { data, sample_shape: sample_shape.to_vec(), features, cols })
    }

    /// Packs per-sample vectors into one contiguous batch (the serving
    /// entry point: one column per request).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when any sample's length does not match
    /// `sample_shape`.
    pub fn from_samples(samples: &[Vec<f32>], sample_shape: &[usize]) -> Result<Self, ShapeError> {
        let features = checked_features(sample_shape)?;
        let mut data = Vec::with_capacity(features * samples.len());
        for (i, s) in samples.iter().enumerate() {
            if s.len() != features {
                return Err(ShapeError::new(format!(
                    "sample {i} has {} values, batch carries {features} features",
                    s.len()
                )));
            }
            data.extend_from_slice(s);
        }
        Ok(Self { data, sample_shape: sample_shape.to_vec(), features, cols: samples.len() })
    }

    /// Converts a row-major `[rows, cols]` column matrix (the layout the
    /// training-path tools use) into a batch — a transpose copy.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x` is not rank 2.
    pub fn from_matrix(x: &Tensor) -> Result<Self, ShapeError> {
        x.shape().expect_rank(2)?;
        let (rows, cols) = (x.dims()[0], x.dims()[1]);
        if rows == 0 {
            return Err(ShapeError::new("column matrix must have at least one row"));
        }
        let mut data = vec![0.0f32; rows * cols];
        let src = x.data();
        for r in 0..rows {
            let srow = &src[r * cols..(r + 1) * cols];
            for (i, &v) in srow.iter().enumerate() {
                data[i * rows + r] = v;
            }
        }
        Ok(Self { data, sample_shape: vec![rows], features: rows, cols })
    }

    /// Converts back into a row-major `[features, cols]` matrix — the
    /// transpose of [`InferBatch::from_matrix`].
    pub fn to_matrix(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.features, self.cols]);
        let dst = out.data_mut();
        for i in 0..self.cols {
            let col = &self.data[i * self.features..(i + 1) * self.features];
            for (r, &v) in col.iter().enumerate() {
                dst[r * self.cols + i] = v;
            }
        }
        out
    }

    /// Splits the batch back into one flat vector per sample (the serving
    /// exit point).
    pub fn into_samples(self) -> Vec<Vec<f32>> {
        let features = self.features;
        let mut data = self.data;
        let mut out = Vec::with_capacity(self.cols);
        for i in (0..self.cols).rev() {
            out.push(data.split_off(i * features));
        }
        out.reverse();
        out
    }

    /// Values per column (`∏ sample_shape`).
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of columns (samples, or patches for an im2col view).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shape each column encodes.
    pub fn sample_shape(&self) -> &[usize] {
        &self.sample_shape
    }

    /// The whole column-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the whole buffer (elementwise stages work here).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the batch, returning the raw buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Column `i` as a contiguous slice.
    pub fn col(&self, i: usize) -> &[f32] {
        &self.data[i * self.features..(i + 1) * self.features]
    }

    /// Column `i` as a contiguous mutable slice.
    pub fn col_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.features..(i + 1) * self.features]
    }

    /// Reinterprets the per-sample shape without touching the buffer
    /// (flatten and friends — metadata-only, zero copy).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the new shape's element count differs.
    pub fn reshaped(mut self, sample_shape: &[usize]) -> Result<Self, ShapeError> {
        let features = checked_features(sample_shape)?;
        if features != self.features {
            return Err(ShapeError::new(format!(
                "cannot reshape {} features into {sample_shape:?}",
                self.features
            )));
        }
        self.sample_shape = sample_shape.to_vec();
        Ok(self)
    }

    /// Batched im2col: unfolds every `[cin, h, w]` column of the batch
    /// into its `[cin·k², Hout·Wout]` patch columns, producing **one**
    /// `[patch_len, batch · n_patches]` matrix — sample `i`'s patches
    /// occupy columns `i·n .. (i+1)·n`. This is the batch-carrying form of
    /// [`pecan_tensor::im2col`]: the taps are identical (pure gather, zero
    /// padding outside the image), so downstream results are bit-identical
    /// to unfolding each sample alone.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the per-sample shape is not the
    /// geometry's `[cin, h, w]`.
    pub fn im2col(&self, geom: &Conv2dGeometry) -> Result<InferBatch, ShapeError> {
        let _span = pecan_obs::span("core.im2col");
        let expect = [geom.c_in(), geom.h_in(), geom.w_in()];
        if self.sample_shape != expect {
            return Err(ShapeError::new(format!(
                "batched im2col expects samples {expect:?}, batch carries {:?}",
                self.sample_shape
            )));
        }
        let k = geom.kernel();
        let n = geom.n_patches();
        let patch_len = geom.patch_len();
        let (h_in, w_in) = (geom.h_in() as isize, geom.w_in() as isize);
        let mut out = InferBatch::zeros(&[patch_len], self.cols * n)?;
        for i in 0..self.cols {
            let src = self.col(i);
            for oy in 0..geom.h_out() {
                for ox in 0..geom.w_out() {
                    let col = out.col_mut((i * n) + oy * geom.w_out() + ox);
                    let mut r = 0;
                    for c in 0..geom.c_in() {
                        for ky in 0..k {
                            let iy = (oy * geom.stride() + ky) as isize - geom.padding() as isize;
                            for kx in 0..k {
                                let ix =
                                    (ox * geom.stride() + kx) as isize - geom.padding() as isize;
                                col[r] = if iy >= 0 && iy < h_in && ix >= 0 && ix < w_in {
                                    src[(c * geom.h_in() + iy as usize) * geom.w_in()
                                        + ix as usize]
                                } else {
                                    0.0
                                };
                                r += 1;
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pecan_tensor::im2col;

    #[test]
    fn shape_validation() {
        assert!(InferBatch::zeros(&[], 2).is_err());
        assert!(InferBatch::zeros(&[2, 0], 2).is_err());
        assert!(InferBatch::from_data(vec![0.0; 5], &[2], 2).is_err());
        assert!(InferBatch::from_samples(&[vec![0.0; 3]], &[2, 2]).is_err());
        assert!(InferBatch::zeros(&[3], 0).unwrap().data().is_empty());
    }

    #[test]
    fn matrix_round_trip_is_exact() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32 * 0.3 - 1.0).collect(), &[3, 4])
            .unwrap();
        let b = InferBatch::from_matrix(&x).unwrap();
        assert_eq!((b.features(), b.cols()), (3, 4));
        // column 2 of the matrix = sample 2 of the batch
        assert_eq!(b.col(2), &[x.get2(0, 2), x.get2(1, 2), x.get2(2, 2)]);
        assert_eq!(b.to_matrix().data(), x.data());
    }

    #[test]
    fn samples_round_trip_and_reshape() {
        let samples = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let b = InferBatch::from_samples(&samples, &[1, 2, 2]).unwrap();
        let flat = b.clone().reshaped(&[4]).unwrap();
        assert_eq!(flat.data(), b.data(), "reshape copies nothing");
        assert!(b.clone().reshaped(&[5]).is_err());
        assert_eq!(b.into_samples(), samples);
    }

    #[test]
    fn batched_im2col_matches_per_sample_im2col() {
        let geom = Conv2dGeometry::new(2, 5, 4, 3, 2, 1).unwrap();
        let mut samples = Vec::new();
        for s in 0..3 {
            samples.push(
                (0..2 * 5 * 4)
                    .map(|i| ((i * 7 + s * 13) % 11) as f32 - 5.0)
                    .collect::<Vec<f32>>(),
            );
        }
        let batch = InferBatch::from_samples(&samples, &[2, 5, 4]).unwrap();
        let cols = batch.im2col(&geom).unwrap();
        let n = geom.n_patches();
        assert_eq!(cols.cols(), 3 * n);
        for (s, sample) in samples.iter().enumerate() {
            let img = Tensor::from_vec(sample.clone(), &[2, 5, 4]).unwrap();
            let single = im2col(&img, &geom).unwrap();
            for p in 0..n {
                for r in 0..geom.patch_len() {
                    assert_eq!(
                        cols.col(s * n + p)[r].to_bits(),
                        single.get2(r, p).to_bits(),
                        "sample {s} patch {p} row {r}"
                    );
                }
            }
        }
        // shape mismatch is typed
        assert!(InferBatch::zeros(&[2, 4, 4], 1).unwrap().im2col(&geom).is_err());
    }
}

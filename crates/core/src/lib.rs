//! PECAN — the Product-QuantizEd Content Addressable Memory Network.
//!
//! This crate is the paper's primary contribution: DNN layers whose
//! filtering/linear transform is realised **solely** through product
//! quantization and table lookup.
//!
//! * [`PecanConv2d`] / [`PecanLinear`] — drop-in replacements for
//!   convolution and fully-connected layers. Each quantizes its im2col
//!   sub-vectors onto learned prototypes using either the **angle** measure
//!   (PECAN-A, Eq. 2: softmax attention over dot products) or the
//!   **distance** measure (PECAN-D, Eq. 3–6: hard L1 argmax with a
//!   straight-through softmax backward and an epoch-annealed sign
//!   surrogate). PECAN-D performs **zero multiplications** at inference.
//! * [`LayerLut`] — the Algorithm-1 inference engine: prototypes programmed
//!   into CAM arrays, products precomputed into lookup tables; asserted
//!   numerically identical to the training-path forward.
//! * [`PecanBuilder`] — builds any model-zoo topology with PECAN layers and
//!   per-layer codebook settings (Tables A2/A3/A4); supports both training
//!   strategies of §4.4.2 (co-optimization from scratch and
//!   uni-optimization on frozen pretrained weights).
//! * [`complexity`] — the closed-form op-count model of Table 1, validated
//!   to reproduce the paper's #Add/#Mul columns exactly.
//! * [`configs`] — the paper-scale architecture specs behind Tables 2–5 and
//!   A2–A4, plus the Fig. 4 prototype-dimension ablation.
//! * [`prune`] — usage-driven prototype pruning (§5 / Fig. 6).
//!
//! # Example
//!
//! ```
//! use pecan_core::{PecanBuilder, PecanVariant};
//! use pecan_nn::{models, Layer};
//! use pecan_autograd::Var;
//! use pecan_tensor::Tensor;
//!
//! # fn main() -> Result<(), pecan_tensor::ShapeError> {
//! // LeNet-5 with every conv/FC replaced by PECAN-D lookup layers.
//! let mut builder = PecanBuilder::from_seed(0, PecanVariant::Distance);
//! let mut net = models::lenet5_modified(&mut builder)?;
//! let logits = net.forward(&Var::constant(Tensor::zeros(&[1, 1, 28, 28])), false)?;
//! assert_eq!(logits.value().dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod batch;
pub mod complexity;
pub mod configs;
mod convert;
mod infer;
mod inspect;
mod layers;
pub mod prune;
mod train;

pub use batch::InferBatch;
pub use convert::{PecanBuilder, PecanVariant, PqLayerSettings, RecordingBuilder};
pub use infer::LayerLut;
pub use pecan_pq::UsageStats;
pub use inspect::{quantization_snapshot, QuantizationSnapshot};
pub use layers::{PecanConv2d, PecanLinear};
pub use train::{train_pecan, Strategy, TrainingReport};

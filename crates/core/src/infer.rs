use crate::batch::InferBatch;
use crate::layers::{PecanConv2d, PecanLinear};
use crate::PecanVariant;
use pecan_cam::{AnalogCam, DotProductCam, LookupTable};
use pecan_pq::{PqConfig, UsageStats};
use pecan_tensor::{ShapeError, Tensor};
use rand::Rng;

/// The Algorithm-1 inference engine for one PECAN layer.
///
/// Construction performs line 3 of Algorithm 1: the filter matrix is split
/// into per-group sub-matrices `W1(j) ∈ R^{cout×d}` and multiplied with the
/// codebooks `C1(j) ∈ R^{d×p}` once, yielding the lookup tables
/// `Y(j) ∈ R^{cout×p}`. The prototypes themselves are programmed into CAM
/// arrays ([`AnalogCam`] for PECAN-D, [`DotProductCam`] for PECAN-A).
///
/// At inference, each im2col column triggers `D` CAM searches and `D`
/// table reads — **no dense filtering arithmetic ever runs**. For PECAN-D
/// this path is multiplier-free; the test suite asserts it matches the
/// training-path forward bit-for-bit.
#[derive(Debug)]
pub struct LayerLut {
    variant: PecanVariant,
    tau: f32,
    config: PqConfig,
    c_out: usize,
    analog: Vec<AnalogCam>,
    dot: Vec<DotProductCam>,
    luts: Vec<LookupTable>,
    bias: Option<Tensor>,
}

impl LayerLut {
    /// Builds the engine from a PECAN convolution.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the layer's weight/codebook shapes are
    /// inconsistent (cannot happen for layers built through this crate).
    pub fn from_conv(layer: &PecanConv2d) -> Result<Self, ShapeError> {
        let weight = layer.weight().to_tensor();
        Self::build(
            layer.variant(),
            *layer.pq_config(),
            &weight,
            &layer.codebook().to_tensors(),
            None,
        )
    }

    /// Builds the engine from a PECAN linear layer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the layer's weight/codebook shapes are
    /// inconsistent.
    pub fn from_linear(layer: &PecanLinear) -> Result<Self, ShapeError> {
        let weight = layer.weight().to_tensor();
        Self::build(
            layer.variant(),
            *layer.pq_config(),
            &weight,
            &layer.codebook().to_tensors(),
            Some(layer.bias().to_tensor()),
        )
    }

    /// Builds the engine from raw parts (used by pruning and the noise
    /// experiments).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `weight` is not `[cout, D·d]` or any
    /// codebook group is not `[d, p]`.
    pub fn build(
        variant: PecanVariant,
        config: PqConfig,
        weight: &Tensor,
        codebooks: &[Tensor],
        bias: Option<Tensor>,
    ) -> Result<Self, ShapeError> {
        weight.shape().expect_rank(2)?;
        if weight.dims()[1] != config.rows() {
            return Err(ShapeError::new(format!(
                "weight {:?} does not cover {} im2col rows",
                weight.dims(),
                config.rows()
            )));
        }
        if codebooks.len() != config.groups() {
            return Err(ShapeError::new(format!(
                "{} codebooks for {} groups",
                codebooks.len(),
                config.groups()
            )));
        }
        let c_out = weight.dims()[0];
        let d = config.dim();
        let mut analog = Vec::new();
        let mut dot = Vec::new();
        let mut luts = Vec::with_capacity(config.groups());
        for (j, cb) in codebooks.iter().enumerate() {
            if cb.dims() != [d, config.prototypes()] {
                return Err(ShapeError::new(format!(
                    "codebook group {j} has shape {:?}",
                    cb.dims()
                )));
            }
            // W1(j): rows of the weight restricted to this group's columns.
            let mut w_j = Tensor::zeros(&[c_out, d]);
            for o in 0..c_out {
                for k in 0..d {
                    w_j.set2(o, k, weight.get2(o, j * d + k));
                }
            }
            luts.push(LookupTable::from_products(&w_j, cb)?);
            // CAM rows are prototypes: transpose [d, p] → [p, d].
            let rows = cb.transpose2()?;
            match variant {
                PecanVariant::Distance => analog.push(AnalogCam::new(rows)?),
                PecanVariant::Angle => dot.push(DotProductCam::new(rows)?),
            }
        }
        Ok(Self { variant, tau: config.tau(), config, c_out, analog, dot, luts, bias })
    }

    /// Rebuilds an engine from already-compiled parts: per-group codebooks
    /// (`[d, p]` each) and the matching precomputed lookup tables, plus an
    /// optional bias. This is the deserialization hook used by model
    /// snapshots (`pecan-serve`): no weight matrix is needed because the
    /// `W·C` products of Algorithm 1 line 3 are supplied ready-made, so a
    /// reloaded engine is **bit-identical** to the one that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the part counts or shapes disagree with
    /// `config` (group count, `[d, p]` codebooks, `[cout, p]` tables with a
    /// consistent `cout`, bias of length `cout`).
    pub fn from_tables(
        variant: PecanVariant,
        config: PqConfig,
        codebooks: &[Tensor],
        tables: Vec<LookupTable>,
        bias: Option<Tensor>,
    ) -> Result<Self, ShapeError> {
        if codebooks.len() != config.groups() || tables.len() != config.groups() {
            return Err(ShapeError::new(format!(
                "{} codebooks / {} tables for {} groups",
                codebooks.len(),
                tables.len(),
                config.groups()
            )));
        }
        let c_out = tables[0].outputs();
        for (j, t) in tables.iter().enumerate() {
            if t.outputs() != c_out || t.entries() != config.prototypes() {
                return Err(ShapeError::new(format!(
                    "table group {j} is [{}, {}], expected [{c_out}, {}]",
                    t.outputs(),
                    t.entries(),
                    config.prototypes()
                )));
            }
        }
        if let Some(b) = &bias {
            if b.len() != c_out {
                return Err(ShapeError::new(format!(
                    "bias of {} for {c_out} outputs",
                    b.len()
                )));
            }
        }
        let d = config.dim();
        let mut analog = Vec::new();
        let mut dot = Vec::new();
        for (j, cb) in codebooks.iter().enumerate() {
            if cb.dims() != [d, config.prototypes()] {
                return Err(ShapeError::new(format!(
                    "codebook group {j} has shape {:?}",
                    cb.dims()
                )));
            }
            let rows = cb.transpose2()?;
            match variant {
                PecanVariant::Distance => analog.push(AnalogCam::new(rows)?),
                PecanVariant::Angle => dot.push(DotProductCam::new(rows)?),
            }
        }
        Ok(Self { variant, tau: config.tau(), config, c_out, analog, dot, luts: tables, bias })
    }

    /// As [`LayerLut::from_tables`], but takes the CAM arrays directly in
    /// their **runtime** `[p, d]` row layout — no transpose, no copy. This
    /// is the zero-copy deserialization hook: snapshot v3 stores every
    /// section in runtime layout, so a loader can hand in borrowed
    /// [`Tensor`] views over a memory-mapped file and the engine is built
    /// without touching the bulk data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the part counts or shapes disagree with
    /// `config` (group count, `[p, d]` CAM rows, `[cout, p]` tables with a
    /// consistent `cout`, bias of length `cout`).
    pub fn from_borrowed_tables(
        variant: PecanVariant,
        config: PqConfig,
        cam_rows: Vec<Tensor>,
        tables: Vec<LookupTable>,
        bias: Option<Tensor>,
    ) -> Result<Self, ShapeError> {
        if cam_rows.len() != config.groups() || tables.len() != config.groups() {
            return Err(ShapeError::new(format!(
                "{} CAM arrays / {} tables for {} groups",
                cam_rows.len(),
                tables.len(),
                config.groups()
            )));
        }
        let c_out = tables[0].outputs();
        for (j, t) in tables.iter().enumerate() {
            if t.outputs() != c_out || t.entries() != config.prototypes() {
                return Err(ShapeError::new(format!(
                    "table group {j} is [{}, {}], expected [{c_out}, {}]",
                    t.outputs(),
                    t.entries(),
                    config.prototypes()
                )));
            }
        }
        if let Some(b) = &bias {
            if b.len() != c_out {
                return Err(ShapeError::new(format!(
                    "bias of {} for {c_out} outputs",
                    b.len()
                )));
            }
        }
        let d = config.dim();
        let mut analog = Vec::new();
        let mut dot = Vec::new();
        for (j, rows) in cam_rows.into_iter().enumerate() {
            if rows.dims() != [config.prototypes(), d] {
                return Err(ShapeError::new(format!(
                    "CAM group {j} has shape {:?}, expected [{}, {d}]",
                    rows.dims(),
                    config.prototypes()
                )));
            }
            match variant {
                PecanVariant::Distance => analog.push(AnalogCam::new(rows)?),
                PecanVariant::Angle => dot.push(DotProductCam::new(rows)?),
            }
        }
        Ok(Self { variant, tau: config.tau(), config, c_out, analog, dot, luts: tables, bias })
    }

    /// Output width `cout`.
    pub fn outputs(&self) -> usize {
        self.c_out
    }

    /// The PQ configuration the engine was built for.
    pub fn config(&self) -> &PqConfig {
        &self.config
    }

    /// Which similarity variant the engine runs (PECAN-D or PECAN-A).
    pub fn variant(&self) -> PecanVariant {
        self.variant
    }

    /// The bias added to every output column, when the source layer had one.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// The per-group codebooks as programmed into the CAM arrays,
    /// reconstructed as `[d, p]` tensors (the transpose of the stored rows —
    /// exact, no arithmetic). For a PECAN-D engine whose prototypes were
    /// perturbed with [`LayerLut::perturb_prototypes`], these are the *noisy*
    /// values the engine actually searches, which is what serialization
    /// wants.
    pub fn codebooks(&self) -> Vec<Tensor> {
        let transposed = |rows: &Tensor| {
            rows.transpose2().expect("CAM rows are always rank 2")
        };
        match self.variant {
            PecanVariant::Distance => {
                self.analog.iter().map(|cam| transposed(cam.rows())).collect()
            }
            PecanVariant::Angle => {
                self.dot.iter().map(|cam| transposed(cam.rows())).collect()
            }
        }
    }

    /// The per-group CAM arrays in their runtime `[p, d]` row layout — the
    /// exact tensors a [`LayerLut::from_borrowed_tables`] round trip needs
    /// (and the layout snapshot v3 stores, so serialization is a straight
    /// byte copy with no transpose).
    pub fn cam_rows(&self) -> Vec<&Tensor> {
        match self.variant {
            PecanVariant::Distance => self.analog.iter().map(AnalogCam::rows).collect(),
            PecanVariant::Angle => self.dot.iter().map(DotProductCam::rows).collect(),
        }
    }

    /// The per-group lookup tables.
    pub fn luts(&self) -> &[LookupTable] {
        &self.luts
    }

    /// Total lookup-table memory in scalars (`cout·D·p`, §3 storage (ii)).
    pub fn lut_scalars(&self) -> usize {
        self.luts.iter().map(LookupTable::scalars).sum()
    }

    /// Perturbs the stored CAM prototypes with Gaussian device noise
    /// (RRAM-variation experiment). Only meaningful for PECAN-D.
    pub fn perturb_prototypes<R: Rng>(&mut self, sigma: f32, rng: &mut R) {
        let mut noisy = Vec::with_capacity(self.analog.len());
        for cam in &self.analog {
            let rows = cam.rows().clone();
            noisy.push(
                AnalogCam::with_noise(rows, sigma, rng)
                    .expect("existing CAM rows are valid"),
            );
        }
        self.analog = noisy;
    }

    /// Runs Algorithm 1 over a whole batch of columns at once: `x` is a
    /// column-major [`InferBatch`] whose every column carries the layer's
    /// `D·d` im2col features, and the result is the `[cout]`-per-column
    /// output batch. When `stats` is given, PECAN-D records which
    /// prototype won each search (Fig. 6).
    ///
    /// This is the batch-first inference entry point: the batch enters as
    /// one contiguous matrix and leaves as one contiguous matrix, so
    /// consecutive LUT layers can chain without ever splitting the batch
    /// into per-sample buffers. PECAN-D hands each codebook group's
    /// sub-rows to [`AnalogCam::search_strided`] — the blocked
    /// `pecan-index` scan answering all columns of a group at once —
    /// straight out of the batch buffer; per-column accumulation order
    /// (bias, then groups in ascending order) matches the historical
    /// per-column loop, so outputs are bit-identical to it.
    ///
    /// Training-path tools that still hold a row-major `[rows, cols]`
    /// [`Tensor`] should call [`LayerLut::forward_matrix`], the thin shim
    /// over this method.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x` does not carry `D·d` features per
    /// column.
    pub fn forward_cols(
        &self,
        x: InferBatch,
        mut stats: Option<&mut UsageStats>,
    ) -> Result<InferBatch, ShapeError> {
        let _span = pecan_obs::span("core.forward_cols");
        if x.features() != self.config.rows() {
            return Err(ShapeError::new(format!(
                "feature matrix has {} rows, engine expects {}",
                x.features(),
                self.config.rows()
            )));
        }
        let cols = x.cols();
        let d = self.config.dim();
        let mut out = InferBatch::zeros(&[self.c_out], cols)?;
        match self.variant {
            PecanVariant::Distance => {
                // The output batch *is* the accumulator: column-major
                // [cout, cols], every LUT read adds into one contiguous
                // column.
                let acc = out.data_mut();
                if let Some(b) = &self.bias {
                    for column in acc.chunks_exact_mut(self.c_out) {
                        column.copy_from_slice(b.data());
                    }
                }
                // One gather scratch reused across every group's search.
                let mut scratch = Vec::new();
                for j in 0..self.config.groups() {
                    let hits = self.analog[j].search_strided_into(
                        x.data(),
                        x.features(),
                        j * d,
                        cols,
                        &mut scratch,
                    )?;
                    for (i, hit) in hits.iter().enumerate() {
                        self.luts[j].accumulate_column(
                            hit.row,
                            &mut acc[i * self.c_out..(i + 1) * self.c_out],
                        )?;
                        if let Some(s) = stats.as_deref_mut() {
                            s.record(j, hit.row);
                        }
                    }
                }
            }
            PecanVariant::Angle => {
                let mut scores = vec![0.0f32; self.config.prototypes()];
                for i in 0..cols {
                    let column = x.col(i);
                    let acc = out.col_mut(i);
                    if let Some(b) = &self.bias {
                        acc.copy_from_slice(b.data());
                    }
                    for j in 0..self.config.groups() {
                        self.dot[j].scores_into(&column[j * d..(j + 1) * d], &mut scores)?;
                        let weights = softmax(&scores, self.tau);
                        self.luts[j].accumulate_weighted(&weights, acc)?;
                        if let Some(s) = stats.as_deref_mut() {
                            // record the dominant prototype for usage stats
                            let best = argmax(&weights);
                            s.record(j, best);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Runs Algorithm 1 over a row-major im2col matrix `x` (`[D·d, cols]`),
    /// producing the layer output `[cout, cols]` — the retained
    /// [`Tensor`]-shaped shim over the batch-first
    /// [`LayerLut::forward_cols`]. Results are bit-identical to the batch
    /// path (the conversions transpose, they never touch values).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x` does not match the configuration.
    pub fn forward_matrix(
        &self,
        x: &Tensor,
        stats: Option<&mut UsageStats>,
    ) -> Result<Tensor, ShapeError> {
        let batch = InferBatch::from_matrix(x)?;
        Ok(self.forward_cols(batch, stats)?.to_matrix())
    }

    /// Fresh usage-statistics accumulator sized for this engine.
    pub fn new_stats(&self) -> UsageStats {
        UsageStats::new(self.config.groups(), self.config.prototypes())
    }
}

fn softmax(scores: &[f32], tau: f32) -> Vec<f32> {
    let mx = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max) / tau;
    let exps: Vec<f32> = scores.iter().map(|&s| (s / tau - mx).exp()).collect();
    let z: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PqLayerSettings;
    use pecan_autograd::Var;
    use pecan_nn::Layer;
    use pecan_tensor::{im2col, Conv2dGeometry};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv_layer(variant: PecanVariant, seed: u64) -> PecanConv2d {
        let mut rng = StdRng::seed_from_u64(seed);
        PecanConv2d::new(
            &mut rng,
            variant,
            PqLayerSettings::new(4, 9, 0.5),
            2,
            3,
            3,
            1,
            1,
        )
        .unwrap()
    }

    #[test]
    fn lut_inference_matches_training_forward_distance() {
        let mut layer = conv_layer(PecanVariant::Distance, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let x_t = pecan_tensor::uniform(&mut rng, &[1, 2, 5, 5], -1.0, 1.0);
        let x = Var::constant(x_t.clone());
        let train_path = layer.forward(&x, false).unwrap();

        let engine = LayerLut::from_conv(&layer).unwrap();
        let geom = Conv2dGeometry::new(2, 5, 5, 3, 1, 1).unwrap();
        let img = Tensor::from_vec(x_t.data().to_vec(), &[2, 5, 5]).unwrap();
        let cols = im2col(&img, &geom).unwrap();
        let lut_out = engine.forward_matrix(&cols, None).unwrap(); // [3, 25]

        // train path output is [1, 3, 5, 5] — same memory order as [3, 25]
        let train_flat = train_path.value().reshape(&[3, 25]).unwrap();
        assert!(
            lut_out.max_abs_diff(&train_flat) < 1e-4,
            "LUT path diverges from training path by {}",
            lut_out.max_abs_diff(&train_flat)
        );
    }

    #[test]
    fn lut_inference_matches_training_forward_angle() {
        let mut layer = conv_layer(PecanVariant::Angle, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let x_t = pecan_tensor::uniform(&mut rng, &[1, 2, 4, 4], -1.0, 1.0);
        let x = Var::constant(x_t.clone());
        let train_path = layer.forward(&x, false).unwrap();

        let engine = LayerLut::from_conv(&layer).unwrap();
        let geom = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        let img = Tensor::from_vec(x_t.data().to_vec(), &[2, 4, 4]).unwrap();
        let cols = im2col(&img, &geom).unwrap();
        let lut_out = engine.forward_matrix(&cols, None).unwrap();
        let train_flat = train_path.value().reshape(&[3, 16]).unwrap();
        assert!(lut_out.max_abs_diff(&train_flat) < 1e-3);
    }

    #[test]
    fn linear_lut_matches_layer() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = PecanLinear::new(
            &mut rng,
            PecanVariant::Distance,
            PqLayerSettings::new(4, 8, 0.5),
            16,
            5,
        )
        .unwrap();
        let x_t = pecan_tensor::uniform(&mut rng, &[3, 16], -1.0, 1.0);
        let y = layer.forward(&Var::constant(x_t.clone()), false).unwrap();

        let engine = LayerLut::from_linear(&layer).unwrap();
        let cols = x_t.transpose2().unwrap(); // [16, 3]
        let out = engine.forward_matrix(&cols, None).unwrap(); // [5, 3]
        let y_cols = y.value().transpose2().unwrap();
        assert!(out.max_abs_diff(&y_cols) < 1e-4);
    }

    #[test]
    fn usage_stats_are_recorded() {
        let layer = conv_layer(PecanVariant::Distance, 6);
        let engine = LayerLut::from_conv(&layer).unwrap();
        let mut stats = engine.new_stats();
        let mut rng = StdRng::seed_from_u64(7);
        let cols = pecan_tensor::uniform(&mut rng, &[18, 30], -1.0, 1.0);
        engine.forward_matrix(&cols, Some(&mut stats)).unwrap();
        let total: u64 = (0..stats.groups()).map(|g| stats.counts(g).iter().sum::<u64>()).sum();
        assert_eq!(total, 30 * 2); // 30 columns × 2 groups
    }

    #[test]
    fn noise_perturbation_changes_assignments_eventually() {
        let layer = conv_layer(PecanVariant::Distance, 8);
        let mut engine = LayerLut::from_conv(&layer).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let cols = pecan_tensor::uniform(&mut rng, &[18, 20], -1.0, 1.0);
        let clean = engine.forward_matrix(&cols, None).unwrap();
        engine.perturb_prototypes(5.0, &mut rng); // huge noise
        let noisy = engine.forward_matrix(&cols, None).unwrap();
        assert!(clean.max_abs_diff(&noisy) > 0.0);
    }

    #[test]
    fn forward_matrix_shim_is_bit_identical_to_batch_path() {
        for (variant, seed) in [(PecanVariant::Distance, 31), (PecanVariant::Angle, 32)] {
            let layer = conv_layer(variant, seed);
            let engine = LayerLut::from_conv(&layer).unwrap();
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let cols = pecan_tensor::uniform(&mut rng, &[18, 15], -1.0, 1.0);
            let via_shim = engine.forward_matrix(&cols, None).unwrap();
            let batch = InferBatch::from_matrix(&cols).unwrap();
            let via_batch = engine.forward_cols(batch, None).unwrap();
            assert_eq!(via_batch.sample_shape(), &[3]);
            assert_eq!(via_batch.cols(), 15);
            let back = via_batch.to_matrix();
            assert_eq!(via_shim.data(), back.data(), "{variant:?} shim must match batch");
        }
    }

    #[test]
    fn batch_stats_match_matrix_stats() {
        let layer = conv_layer(PecanVariant::Distance, 33);
        let engine = LayerLut::from_conv(&layer).unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        let cols = pecan_tensor::uniform(&mut rng, &[18, 25], -1.0, 1.0);
        let mut a = engine.new_stats();
        let mut b = engine.new_stats();
        engine.forward_matrix(&cols, Some(&mut a)).unwrap();
        engine
            .forward_cols(InferBatch::from_matrix(&cols).unwrap(), Some(&mut b))
            .unwrap();
        for g in 0..a.groups() {
            assert_eq!(a.counts(g), b.counts(g));
        }
    }

    #[test]
    fn from_tables_round_trips_both_variants() {
        for (variant, seed) in [(PecanVariant::Distance, 10), (PecanVariant::Angle, 11)] {
            let layer = conv_layer(variant, seed);
            let engine = LayerLut::from_conv(&layer).unwrap();
            let rebuilt = LayerLut::from_tables(
                engine.variant(),
                *engine.config(),
                &engine.codebooks(),
                engine.luts().to_vec(),
                engine.bias().cloned(),
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let cols = pecan_tensor::uniform(&mut rng, &[18, 13], -1.0, 1.0);
            let a = engine.forward_matrix(&cols, None).unwrap();
            let b = rebuilt.forward_matrix(&cols, None).unwrap();
            assert_eq!(a.data(), b.data(), "{variant:?} rebuild must be bit-identical");
        }
    }

    #[test]
    fn from_tables_validates_parts() {
        let layer = conv_layer(PecanVariant::Distance, 12);
        let engine = LayerLut::from_conv(&layer).unwrap();
        let cfg = *engine.config();
        let cbs = engine.codebooks();
        let luts = engine.luts().to_vec();
        // group-count mismatch
        assert!(LayerLut::from_tables(
            PecanVariant::Distance, cfg, &cbs[..1], luts.clone(), None
        )
        .is_err());
        // wrong codebook shape
        let bad_cbs = vec![Tensor::zeros(&[3, 4]); cbs.len()];
        assert!(LayerLut::from_tables(
            PecanVariant::Distance, cfg, &bad_cbs, luts.clone(), None
        )
        .is_err());
        // bias length mismatch
        assert!(LayerLut::from_tables(
            PecanVariant::Distance, cfg, &cbs, luts, Some(Tensor::zeros(&[99]))
        )
        .is_err());
    }

    #[test]
    fn build_validates_shapes() {
        let cfg = PqConfig::for_rows(8, 2, 4, 1.0).unwrap();
        let w = Tensor::zeros(&[3, 8]);
        let bad_weight = Tensor::zeros(&[3, 9]);
        let cb = vec![Tensor::zeros(&[4, 2]), Tensor::zeros(&[4, 2])];
        assert!(LayerLut::build(PecanVariant::Distance, cfg, &w, &cb, None).is_ok());
        assert!(LayerLut::build(PecanVariant::Distance, cfg, &bad_weight, &cb, None).is_err());
        assert!(LayerLut::build(PecanVariant::Distance, cfg, &w, &cb[..1], None).is_err());
        let engine = LayerLut::build(PecanVariant::Distance, cfg, &w, &cb, None).unwrap();
        assert!(engine.forward_matrix(&Tensor::zeros(&[7, 2]), None).is_err());
        assert_eq!(engine.lut_scalars(), 2 * 3 * 2);
    }
}

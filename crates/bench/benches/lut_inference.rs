//! End-to-end Algorithm-1 LUT inference for a whole LeNet-shaped layer
//! stack: PECAN-D float path vs fixed-point integer path vs the dense
//! baseline. Demonstrates the paper's deployment story at kernel level.

use criterion::{criterion_group, criterion_main, Criterion};
use pecan_cam::fixed::{FixedCam, FixedLut, Quantizer};
use pecan_core::{LayerLut, PecanConv2d, PecanVariant, PqLayerSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_lut_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let layer = PecanConv2d::new(
        &mut rng,
        PecanVariant::Distance,
        PqLayerSettings::new(16, 9, 0.5),
        8,
        16,
        3,
        1,
        1,
    )
    .expect("layer");
    let engine = LayerLut::from_conv(&layer).expect("engine");
    let xcol = pecan_tensor::uniform(&mut rng, &[72, 121], -1.0, 1.0);
    let weight = layer.weight().to_tensor();

    let q = Quantizer::new(12);
    let cams: Vec<FixedCam> = layer
        .codebook()
        .to_tensors()
        .iter()
        .map(|cb| FixedCam::from_tensor(&cb.transpose2().expect("rank 2"), q).expect("cam"))
        .collect();
    let luts: Vec<FixedLut> = engine
        .luts()
        .iter()
        .map(|t| FixedLut::from_tensor(t.table(), q).expect("lut"))
        .collect();
    let d = engine.config().dim();

    let mut group = c.benchmark_group("lut_inference");
    group.sample_size(20);
    group.bench_function("dense_baseline", |b| {
        b.iter(|| black_box(weight.matmul(&xcol).expect("matmul")));
    });
    group.bench_function("pecan_d_float", |b| {
        b.iter(|| black_box(engine.forward_matrix(&xcol, None).expect("forward")));
    });
    group.bench_function("pecan_d_fixed_point", |b| {
        b.iter(|| {
            let cols = xcol.dims()[1];
            let mut acc = vec![0i64; engine.outputs()];
            let mut out = 0i64;
            for i in 0..cols {
                acc.fill(0);
                for (j, (cam, lut)) in cams.iter().zip(&luts).enumerate() {
                    let query: Vec<i16> =
                        (0..d).map(|k| q.quantize(xcol.get2(j * d + k, i))).collect();
                    let (winner, _) = cam.search(&query).expect("search");
                    lut.accumulate(winner, &mut acc).expect("accumulate");
                }
                out += acc[0];
            }
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lut_inference);
criterion_main!(benches);

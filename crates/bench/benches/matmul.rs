//! Training-side GEMM kernel bench: the seed's scalar blocked-ikj oracle
//! vs the packed microkernel at 1 thread vs the scoped pool at 4 threads.
//!
//! The headline comparison is the 256×256×256 square product (the ROADMAP
//! scale-work target); a second shape reproduces a representative im2col
//! convolution GEMM (`cout × cin·k² × N·Hout·Wout`) from the reduced
//! training runs. All three kernels produce bit-identical outputs (pinned
//! by `crates/tensor/tests/gemm_parity.rs`), so this bench is purely about
//! wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use pecan_tensor::gemm::{gemm_with_threads, scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Case {
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let cases = [
        Case { label: "256x256x256", m: 256, k: 256, n: 256 },
        Case { label: "conv_32x144x2704", m: 32, k: 144, n: 2704 },
    ];
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for Case { label, m, k, n } in cases {
        let a = pecan_tensor::uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = pecan_tensor::uniform(&mut rng, &[k, n], -1.0, 1.0);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(format!("scalar/{label}"), |bch| {
            bch.iter(|| {
                scalar::gemm_nn(black_box(a.data()), black_box(b.data()), &mut out, m, k, n);
                black_box(out[0])
            });
        });
        for threads in [1usize, 4] {
            group.bench_function(format!("packed_t{threads}/{label}"), |bch| {
                bch.iter(|| {
                    gemm_with_threads(
                        black_box(a.data()),
                        false,
                        black_box(b.data()),
                        false,
                        &mut out,
                        m,
                        k,
                        n,
                        threads,
                    );
                    black_box(out[0])
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);

//! CAM prototype-search latency: the hardware primitive of PECAN-D.
//!
//! Two groups:
//!
//! * `cam_l1_search` — the original single-query linear-scan scaling in the
//!   number of stored prototypes `p` and sub-vector width `d`;
//! * `cam_search` — linear vs. indexed ([`PqTableIndex`]) vs. batched
//!   ([`BatchScanner`]) engines from `pecan-index` on the same workload:
//!   256 queries against `p ∈ {128, 512}` prototypes at `d = 32`, with the
//!   prototypes either uniform (worst case for bucketing) or clustered
//!   (the regime trained codebooks live in). Reported times are **per
//!   batch**; all engines return identical winners, so every entry is
//!   directly comparable. Medians also land in `target/bench/*.json` via
//!   the criterion shim's sink for cross-PR regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pecan_cam::AnalogCam;
use pecan_index::{BatchScanner, LinearScan, PqTableIndex, PrototypeIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_cam_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_l1_search");
    group.sample_size(30);

    for &p in &[8usize, 32, 128] {
        for &d in &[9usize, 32] {
            let mut rng = StdRng::seed_from_u64(p as u64 * 100 + d as u64);
            let rows = pecan_tensor::uniform(&mut rng, &[p, d], -1.0, 1.0);
            let cam = AnalogCam::new(rows).expect("cam");
            let query: Vec<f32> = (0..d).map(|i| (i as f32 * 0.13).sin()).collect();
            group.bench_with_input(BenchmarkId::new("search", format!("p{p}_d{d}")), &(), |b, ()| {
                b.iter(|| black_box(cam.search(&query).expect("search")));
            });
        }
    }
    group.finish();
}

/// `p` prototypes of width `d`: uniform noise, or samples around
/// `clusters` centres like a trained codebook.
fn prototypes(p: usize, d: usize, clusters: Option<usize>, rng: &mut StdRng) -> Vec<f32> {
    match clusters {
        None => (0..p * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        Some(n) => {
            let centres: Vec<f32> =
                (0..n * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            (0..p)
                .flat_map(|r| {
                    let c = r % n;
                    (0..d)
                        .map(|k| centres[c * d + k] + rng.gen_range(-0.1f32..0.1))
                        .collect::<Vec<_>>()
                })
                .collect()
        }
    }
}

/// Queries near stored prototypes — im2col features cluster around the
/// codebooks they were trained to match.
fn queries_near(rows: &[f32], d: usize, q: usize, rng: &mut StdRng) -> Vec<f32> {
    let p = rows.len() / d;
    (0..q)
        .flat_map(|i| {
            let anchor = (i * 17) % p;
            (0..d)
                .map(|k| rows[anchor * d + k] + rng.gen_range(-0.15f32..0.15))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_search");
    group.sample_size(30);
    const D: usize = 32;
    const Q: usize = 256;

    for &p in &[128usize, 512] {
        for (regime, clusters) in [("uniform", None), ("clustered", Some(p / 16))] {
            let mut rng = StdRng::seed_from_u64(p as u64);
            let rows = prototypes(p, D, clusters, &mut rng);
            let queries = queries_near(&rows, D, Q, &mut rng);

            let linear = LinearScan::new(rows.clone(), D).expect("linear");
            let table = PqTableIndex::new(rows.clone(), D).expect("pq table");
            let batch = BatchScanner::new(rows, D).expect("batch");
            assert!(!table.is_exhaustive_fallback(), "p={p} should bucket");
            let expect = linear.nearest_batch(&queries).expect("linear batch");
            assert_eq!(table.nearest_batch(&queries).expect("table batch"), expect);
            assert_eq!(batch.nearest_batch(&queries).expect("batch batch"), expect);

            let param = format!("{regime}_p{p}_d{D}_q{Q}");
            group.bench_with_input(
                BenchmarkId::new("linear", &param),
                &(),
                |b, ()| b.iter(|| black_box(linear.nearest_batch(&queries).expect("scan"))),
            );
            group.bench_with_input(
                BenchmarkId::new("pq_table", &param),
                &(),
                |b, ()| b.iter(|| black_box(table.nearest_batch(&queries).expect("probe"))),
            );
            group.bench_with_input(
                BenchmarkId::new("batch", &param),
                &(),
                |b, ()| b.iter(|| black_box(batch.nearest_batch(&queries).expect("block"))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cam_search, bench_engines);
criterion_main!(benches);

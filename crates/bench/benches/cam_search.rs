//! Analog-CAM L1 search latency scaling in the number of stored prototypes
//! `p` and the sub-vector width `d` — the hardware primitive of PECAN-D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pecan_cam::AnalogCam;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_cam_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_l1_search");
    group.sample_size(30);

    for &p in &[8usize, 32, 128] {
        for &d in &[9usize, 32] {
            let mut rng = StdRng::seed_from_u64(p as u64 * 100 + d as u64);
            let rows = pecan_tensor::uniform(&mut rng, &[p, d], -1.0, 1.0);
            let cam = AnalogCam::new(rows).expect("cam");
            let query: Vec<f32> = (0..d).map(|i| (i as f32 * 0.13).sin()).collect();
            group.bench_with_input(BenchmarkId::new("search", format!("p{p}_d{d}")), &(), |b, ()| {
                b.iter(|| black_box(cam.search(&query).expect("search")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cam_search);
criterion_main!(benches);

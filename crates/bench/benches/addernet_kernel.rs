//! Table 5's latency story at kernel level: dense conv GEMM vs an
//! AdderNet-style L1 filter vs PECAN-D similarity+lookup, all on the same
//! layer shape.

use criterion::{criterion_group, criterion_main, Criterion};
use pecan_core::{LayerLut, PecanConv2d, PecanVariant, PqLayerSettings};
use pecan_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Raw AdderNet kernel: scores[f, i] = −Σ_k |x[k,i] − w[f,k]|.
fn adder_kernel(weight: &Tensor, xcol: &Tensor) -> Tensor {
    let (cout, rows) = (weight.dims()[0], weight.dims()[1]);
    let cols = xcol.dims()[1];
    let mut out = Tensor::zeros(&[cout, cols]);
    for f in 0..cout {
        let wrow = weight.row(f);
        for i in 0..cols {
            let mut dist = 0.0;
            for (k, &wv) in wrow.iter().enumerate().take(rows) {
                dist += (xcol.get2(k, i) - wv).abs();
            }
            out.set2(f, i, -dist);
        }
    }
    out
}

fn bench_addernet(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let (cin, cout, hw) = (16usize, 16usize, 12usize);
    let rows = cin * 9;
    let cols = hw * hw;
    let weight = pecan_tensor::uniform(&mut rng, &[cout, rows], -0.2, 0.2);
    let xcol = pecan_tensor::uniform(&mut rng, &[rows, cols], -1.0, 1.0);

    let layer = PecanConv2d::from_pretrained(
        &mut rng,
        PecanVariant::Distance,
        PqLayerSettings::new(8, 9, 0.5),
        weight.clone(),
        cin,
        3,
        1,
        1,
        true,
    )
    .expect("layer");
    let engine = LayerLut::from_conv(&layer).expect("engine");

    let mut group = c.benchmark_group("table5_kernels");
    group.sample_size(20);
    group.bench_function("cnn_gemm", |b| {
        b.iter(|| black_box(weight.matmul(&xcol).expect("matmul")));
    });
    group.bench_function("addernet_l1_filter", |b| {
        b.iter(|| black_box(adder_kernel(&weight, &xcol)));
    });
    group.bench_function("pecan_d_lookup", |b| {
        b.iter(|| black_box(engine.forward_matrix(&xcol, None).expect("forward")));
    });
    group.finish();
}

criterion_group!(benches, bench_addernet);
criterion_main!(benches);

//! Kernel-level latency: dense im2col convolution vs PECAN-A attention
//! retrieval vs PECAN-D L1 + LUT retrieval on the same layer shape. This is
//! the "who wins" behind Tables 1–4: PECAN trades dense MACs for `p·D`
//! similarity scores plus table reads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pecan_core::{LayerLut, PecanConv2d, PecanVariant, PqLayerSettings};
use pecan_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conv_vs_pecan(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_vs_pecan_forward");
    group.sample_size(20);

    for &(cin, cout, hw) in &[(16usize, 16usize, 16usize), (32, 32, 8)] {
        let mut rng = StdRng::seed_from_u64(1);
        let rows = cin * 9;
        let cols = hw * hw;
        let weight = pecan_tensor::uniform(&mut rng, &[cout, rows], -0.2, 0.2);
        let xcol = pecan_tensor::uniform(&mut rng, &[rows, cols], -1.0, 1.0);

        group.bench_with_input(
            BenchmarkId::new("baseline_gemm", format!("{cin}x{cout}@{hw}")),
            &(),
            |b, ()| {
                b.iter(|| black_box(weight.matmul(&xcol).expect("matmul")));
            },
        );

        for (name, variant, p) in [
            ("pecan_a_p8", PecanVariant::Angle, 8usize),
            ("pecan_d_p8", PecanVariant::Distance, 8),
            ("pecan_d_p64", PecanVariant::Distance, 64),
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let tau = if variant == PecanVariant::Angle { 1.0 } else { 0.5 };
            let layer = PecanConv2d::from_pretrained(
                &mut rng,
                variant,
                PqLayerSettings::new(p, 9, tau),
                weight.clone(),
                cin,
                3,
                1,
                1,
                true,
            )
            .expect("layer");
            let engine = LayerLut::from_conv(&layer).expect("engine");
            group.bench_with_input(
                BenchmarkId::new(name, format!("{cin}x{cout}@{hw}")),
                &(),
                |b, ()| {
                    b.iter(|| black_box(engine.forward_matrix(&xcol, None).expect("forward")));
                },
            );
        }
        let _ = Tensor::zeros(&[1]);
    }
    group.finish();
}

criterion_group!(benches, bench_conv_vs_pecan);
criterion_main!(benches);

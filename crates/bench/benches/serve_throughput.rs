//! Micro-batching scheduler throughput: the serving subsystem end to end
//! minus HTTP (the `loadgen` binary covers the socket path).
//!
//! One group, `serve_throughput`: 64 requests pushed through a
//! [`BatchScheduler`] by 8 concurrent submitter threads, at `max_batch ∈
//! {1, 8, 32}` with a single inference worker — so the entries isolate
//! exactly what request coalescing buys on the engine's batch kernels
//! (`max_batch = 1` *is* the unbatched baseline; everything else about the
//! pipeline is identical). A direct `predict_batch` entry bounds the
//! scheduler's own overhead from above. Reported times are per 64-request
//! wave; medians land in `target/bench/*.json` for the `bench-diff`
//! regression gate, and the CI e2e job cross-checks the same ≥2× batched
//! speedup over real sockets with `loadgen`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pecan_serve::{demo, BatchScheduler, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const SUBMITTERS: usize = 8;
const REQUESTS: usize = 64;

fn workload(engine: &pecan_serve::FrozenEngine) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..REQUESTS)
        .map(|_| pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0).into_vec())
        .collect()
}

/// Pushes the whole workload through the scheduler from `SUBMITTERS`
/// threads, blocking until every response arrives.
fn drive(scheduler: &Arc<BatchScheduler>, inputs: &[Vec<f32>]) {
    std::thread::scope(|s| {
        for chunk in inputs.chunks(REQUESTS.div_ceil(SUBMITTERS)) {
            s.spawn(move || {
                for input in chunk {
                    let p = scheduler.predict(input.clone()).expect("served");
                    black_box(p.output);
                }
            });
        }
    });
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);

    let engine = Arc::new(demo::mlp_engine(1));
    let inputs = workload(&engine);

    for &max_batch in &[1usize, 8, 32] {
        let scheduler = Arc::new(BatchScheduler::start(
            engine.clone(),
            SchedulerConfig {
                max_batch,
                max_wait: Duration::from_micros(200),
                queue_capacity: 1024,
                workers: 1,
            },
        ));
        group.bench_with_input(
            BenchmarkId::new("scheduler", format!("b{max_batch}_c{SUBMITTERS}_q{REQUESTS}")),
            &(),
            |b, ()| b.iter(|| drive(&scheduler, &inputs)),
        );
        scheduler.shutdown();
    }

    // Upper bound: the engine's batch kernel with zero scheduling.
    group.bench_with_input(
        BenchmarkId::new("direct", format!("predict_batch_q{REQUESTS}")),
        &(),
        |b, ()| b.iter(|| black_box(engine.predict_batch(&inputs).expect("batch"))),
    );
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);

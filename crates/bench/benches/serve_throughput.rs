//! Micro-batching scheduler throughput: the serving subsystem end to end
//! minus HTTP (the `loadgen` binary covers the socket path).
//!
//! One group, `serve_throughput`, two workloads:
//!
//! * **scheduler/…** — 64 MLP requests pushed through a [`BatchScheduler`]
//!   by 8 concurrent submitter threads, at `max_batch ∈ {1, 8, 32}` with a
//!   single inference worker — so the entries isolate exactly what request
//!   coalescing buys on the engine's batch kernels (`max_batch = 1` *is*
//!   the unbatched baseline; everything else about the pipeline is
//!   identical). A direct `predict_batch` entry bounds the scheduler's own
//!   overhead from above.
//! * **batch_carry/…** — the same sweep over the *convolutional* LeNet
//!   engine (16 requests, 4 submitters), plus a direct entry: conv models
//!   cross many stages (conv → pool → flatten → linear), so these entries
//!   guard the **cross-layer batch carrying** of the `InferBatch` pipeline
//!   — the batch staying one column matrix through every stage. A
//!   regression that re-introduces per-sample splitting between stages
//!   shows up here first, and the `max_batch ≥ 8` entries demonstrate the
//!   batched win over `b1`.
//!
//! Reported times are per request wave; medians land in
//! `target/bench/*.json` for the `bench-diff` regression gate, and the CI
//! e2e job cross-checks the ≥2× batched speedup over real sockets with
//! `loadgen`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pecan_serve::{demo, BatchScheduler, FrozenEngine, SchedulerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const SUBMITTERS: usize = 8;
const REQUESTS: usize = 64;
/// The conv pipeline is ~an order of magnitude heavier per request; a
/// smaller wave keeps the entry honest without dominating bench time.
const CARRY_SUBMITTERS: usize = 4;
const CARRY_REQUESTS: usize = 16;

fn workload(engine: &FrozenEngine, requests: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..requests)
        .map(|_| pecan_tensor::uniform(&mut rng, &[engine.input_len()], -1.0, 1.0).into_vec())
        .collect()
}

/// Pushes the whole workload through the scheduler from `submitters`
/// threads, blocking until every response arrives.
fn drive(scheduler: &Arc<BatchScheduler>, inputs: &[Vec<f32>], submitters: usize) {
    std::thread::scope(|s| {
        for chunk in inputs.chunks(inputs.len().div_ceil(submitters)) {
            s.spawn(move || {
                for input in chunk {
                    let p = scheduler.predict(input.clone()).expect("served");
                    black_box(p.output);
                }
            });
        }
    });
}

fn sweep(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    direct: (&str, &str),
    engine: &Arc<FrozenEngine>,
    submitters: usize,
    requests: usize,
    batches: &[usize],
) {
    let inputs = workload(engine, requests);
    for &max_batch in batches {
        let scheduler = Arc::new(BatchScheduler::start(
            engine.clone(),
            SchedulerConfig {
                max_batch,
                max_wait: Duration::from_micros(200),
                queue_capacity: 1024,
                workers: 1,
            },
        ));
        group.bench_with_input(
            BenchmarkId::new(label, format!("b{max_batch}_c{submitters}_q{requests}")),
            &(),
            |b, ()| b.iter(|| drive(&scheduler, &inputs, submitters)),
        );
        scheduler.shutdown();
    }
    // Upper bound: the engine's batch kernel with zero scheduling.
    group.bench_with_input(
        BenchmarkId::new(direct.0, direct.1),
        &(),
        |b, ()| b.iter(|| black_box(engine.predict_batch(&inputs).expect("batch"))),
    );
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);

    let mlp = Arc::new(demo::mlp_engine(1));
    // The direct entry keeps its PR-4 name so `bench-diff` tracks it
    // across the batch-first redesign.
    sweep(
        &mut group,
        "scheduler",
        ("direct", "predict_batch_q64"),
        &mlp,
        SUBMITTERS,
        REQUESTS,
        &[1, 8, 32],
    );

    // Cross-layer batch carrying on a conv pipeline.
    let lenet = Arc::new(demo::lenet_engine(1));
    sweep(
        &mut group,
        "batch_carry",
        ("batch_carry", "direct_q16"),
        &lenet,
        CARRY_SUBMITTERS,
        CARRY_REQUESTS,
        &[1, 8, 16],
    );
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);

//! Bench-regression differ: compares two directories of the criterion
//! shim's `target/bench/*.json` records and flags median regressions.
//!
//! This is the library half of the `bench-diff` binary (see
//! `crates/bench/README.md` for the CLI). Parsing is hand-rolled for the
//! shim's fixed record shape — the workspace is offline and carries no
//! serde, and the shim is the only producer of these files.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Median wall-clock per benchmark id, keyed by the bench's full name
/// (`group/function/param`), as loaded from one JSON directory.
pub type Medians = BTreeMap<String, u128>;

/// Extracts the string value of `"key": "…"` from a shim JSON record,
/// undoing the shim's `\\` / `\"` escaping.
fn string_field(json: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = json.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = json[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

/// Extracts the integer value of `"key": n` from a shim JSON record.
fn int_field(json: &str, key: &str) -> Option<u128> {
    let marker = format!("\"{key}\": ");
    let start = json.find(&marker)? + marker.len();
    let digits: String = json[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses one shim record into `(name, median_ns)`.
pub fn parse_record(json: &str) -> Option<(String, u128)> {
    Some((string_field(json, "name")?, int_field(json, "median_ns")?))
}

/// Loads every `*.json` record in `dir`.
///
/// Files that fail to parse are skipped with a warning on stderr — a
/// half-written record from an interrupted bench run should not wedge CI.
///
/// # Errors
///
/// Returns [`io::Error`] when `dir` cannot be read at all.
pub fn load_dir(dir: &Path) -> io::Result<Medians> {
    let mut medians = Medians::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension() != Some(std::ffi::OsStr::new("json")) {
            continue;
        }
        match fs::read_to_string(&path).ok().as_deref().and_then(parse_record) {
            Some((name, median)) => {
                medians.insert(name, median);
            }
            None => {
                pecan_obs::log_warn!("bench::diff", "skipping unparseable record", path = path.display());
            }
        }
    }
    Ok(medians)
}

/// Verdict for one benchmark present in either directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold either way.
    Ok,
    /// Median grew beyond the threshold — the gating condition.
    Regressed,
    /// Median shrank beyond the threshold.
    Improved,
    /// Only in the current run (new benchmark).
    New,
    /// Only in the baseline (removed or not smoke-run anymore).
    Missing,
}

/// One row of the comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Full benchmark id.
    pub name: String,
    /// Baseline median in nanoseconds, when present.
    pub baseline_ns: Option<u128>,
    /// Current median in nanoseconds, when present.
    pub current_ns: Option<u128>,
    /// Relative change in percent (`+` = slower), when both sides exist.
    pub delta_pct: Option<f64>,
    /// Classification at the configured threshold.
    pub verdict: Verdict,
}

/// Compares two median maps at a symmetric `threshold_pct`.
///
/// Rows come back sorted by name; `New` / `Missing` rows never gate (the
/// smoke set is allowed to grow and shrink), only `Regressed` does — see
/// [`regressions`].
pub fn diff(baseline: &Medians, current: &Medians, threshold_pct: f64) -> Vec<Row> {
    let mut names: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let b = baseline.get(name).copied();
            let c = current.get(name).copied();
            let (delta_pct, verdict) = match (b, c) {
                (Some(b), Some(c)) => {
                    let delta = if b == 0 {
                        if c == 0 {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        (c as f64 - b as f64) / b as f64 * 100.0
                    };
                    let verdict = if delta > threshold_pct {
                        Verdict::Regressed
                    } else if delta < -threshold_pct {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    };
                    (Some(delta), verdict)
                }
                (None, Some(_)) => (None, Verdict::New),
                (Some(_), None) => (None, Verdict::Missing),
                (None, None) => unreachable!("name came from one of the maps"),
            };
            Row { name: name.clone(), baseline_ns: b, current_ns: c, delta_pct, verdict }
        })
        .collect()
}

/// Names of the rows that gate (verdict [`Verdict::Regressed`]).
pub fn regressions(rows: &[Row]) -> Vec<&str> {
    rows.iter()
        .filter(|r| r.verdict == Verdict::Regressed)
        .map(|r| r.name.as_str())
        .collect()
}

fn fmt_ns(ns: Option<u128>) -> String {
    match ns {
        None => "—".into(),
        Some(ns) if ns < 1_000 => format!("{ns} ns"),
        Some(ns) if ns < 1_000_000 => format!("{:.2} µs", ns as f64 / 1e3),
        Some(ns) if ns < 1_000_000_000 => format!("{:.2} ms", ns as f64 / 1e6),
        Some(ns) => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// Renders the comparison as a markdown table (one row per benchmark).
pub fn render_table(rows: &[Row]) -> String {
    let mut s = String::from("| benchmark | baseline | current | Δ median | verdict |\n|---|---|---|---|---|\n");
    for row in rows {
        let delta = row
            .delta_pct
            .map(|d| format!("{d:+.1}%"))
            .unwrap_or_else(|| "—".into());
        let verdict = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::Regressed => "**REGRESSED**",
            Verdict::Improved => "improved",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} |",
            row.name,
            fmt_ns(row.baseline_ns),
            fmt_ns(row.current_ns),
            delta,
            verdict,
        );
    }
    s
}

/// Renders the comparison as a JSON array — the same rows as
/// [`render_table`], machine-readable for CI annotations and dashboards.
/// Nulls stand in for absent sides (`new` / `missing` rows) and the
/// verdict is the lowercase name of the [`Verdict`] variant.
pub fn render_json(rows: &[Row]) -> String {
    let mut s = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let fmt_opt = |ns: Option<u128>| ns.map_or("null".into(), |ns| ns.to_string());
        let delta = row.delta_pct.map_or("null".into(), |d| {
            if d.is_finite() {
                format!("{d:.3}")
            } else {
                // A 0 → n regression has no finite percentage; JSON has no
                // Infinity literal, so emit null and let the verdict carry it.
                "null".into()
            }
        });
        let verdict = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        };
        let _ = write!(
            s,
            "  {{\"name\": \"{}\", \"baseline_ns\": {}, \"current_ns\": {}, \"delta_pct\": {}, \"verdict\": \"{}\"}}",
            escape_json(&row.name),
            fmt_opt(row.baseline_ns),
            fmt_opt(row.current_ns),
            delta,
            verdict,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

/// Minimal JSON string escaping for bench names (quotes, backslashes,
/// control characters — names are shim-generated so this is belt and
/// braces, not a general-purpose encoder).
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(pairs: &[(&str, u128)]) -> Medians {
        pairs.iter().map(|&(n, m)| (n.to_string(), m)).collect()
    }

    #[test]
    fn parses_the_criterion_shim_record_shape() {
        let json = "{\n  \"name\": \"matmul/packed_t4/256 \\\"q\\\"\",\n  \"median_ns\": 123456,\n  \"min_ns\": 1,\n  \"max_ns\": 2,\n  \"samples\": 10,\n  \"iters_per_sample\": 3\n}\n";
        let (name, median) = parse_record(json).expect("parses");
        assert_eq!(name, "matmul/packed_t4/256 \"q\"");
        assert_eq!(median, 123_456);
        assert!(parse_record("{\"median_ns\": 5}").is_none());
        assert!(parse_record("not json at all").is_none());
    }

    #[test]
    fn classifies_at_the_threshold() {
        let base = medians(&[("a", 1_000), ("b", 1_000), ("c", 1_000), ("gone", 50)]);
        let cur = medians(&[("a", 1_150), ("b", 1_600), ("c", 400), ("fresh", 10)]);
        let rows = diff(&base, &cur, 20.0);
        let verdict = |name: &str| rows.iter().find(|r| r.name == name).unwrap().verdict;
        assert_eq!(verdict("a"), Verdict::Ok); // +15% within threshold
        assert_eq!(verdict("b"), Verdict::Regressed); // +60%
        assert_eq!(verdict("c"), Verdict::Improved); // −60%
        assert_eq!(verdict("fresh"), Verdict::New);
        assert_eq!(verdict("gone"), Verdict::Missing);
        assert_eq!(regressions(&rows), vec!["b"]);
    }

    #[test]
    fn zero_baseline_regresses_only_when_current_nonzero() {
        let rows = diff(&medians(&[("z", 0)]), &medians(&[("z", 5)]), 20.0);
        assert_eq!(rows[0].verdict, Verdict::Regressed);
        let rows = diff(&medians(&[("z", 0)]), &medians(&[("z", 0)]), 20.0);
        assert_eq!(rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn table_renders_every_row_with_units() {
        let base = medians(&[("k", 2_500_000)]);
        let cur = medians(&[("k", 4_000_000)]);
        let rows = diff(&base, &cur, 20.0);
        let table = render_table(&rows);
        assert!(table.contains("| k | 2.50 ms | 4.00 ms | +60.0% | **REGRESSED** |"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn json_rendering_carries_every_row_and_nulls_absent_sides() {
        let base = medians(&[("k \"q\"", 1_000), ("gone", 50)]);
        let cur = medians(&[("k \"q\"", 1_600), ("fresh", 10)]);
        let rows = diff(&base, &cur, 20.0);
        let json = render_json(&rows);
        assert!(json.contains(
            "{\"name\": \"fresh\", \"baseline_ns\": null, \"current_ns\": 10, \
             \"delta_pct\": null, \"verdict\": \"new\"}"
        ));
        assert!(json.contains(
            "{\"name\": \"gone\", \"baseline_ns\": 50, \"current_ns\": null, \
             \"delta_pct\": null, \"verdict\": \"missing\"}"
        ));
        assert!(json.contains(
            "{\"name\": \"k \\\"q\\\"\", \"baseline_ns\": 1000, \"current_ns\": 1600, \
             \"delta_pct\": 60.000, \"verdict\": \"regressed\"}"
        ));
        // Valid JSON array shape: brackets, one object per row, comma-separated.
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("{\"name\"").count(), rows.len());
        assert_eq!(json.matches("},\n").count(), rows.len() - 1);
    }

    #[test]
    fn json_rendering_nulls_infinite_deltas() {
        let rows = diff(&medians(&[("z", 0)]), &medians(&[("z", 5)]), 20.0);
        let json = render_json(&rows);
        assert!(json.contains("\"delta_pct\": null, \"verdict\": \"regressed\""));
    }

    #[test]
    fn load_dir_reads_shim_files_and_skips_garbage() {
        let dir = std::env::temp_dir().join("pecan-bench-diff-test-load");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("ok-1.json"), "{\n  \"name\": \"g/one\",\n  \"median_ns\": 42\n}").unwrap();
        fs::write(dir.join("bad.json"), "{{{").unwrap();
        fs::write(dir.join("ignored.txt"), "not a record").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded, medians(&[("g/one", 42)]));
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Shared scaffolding for the experiment harness: reduced-scale training
//! scenarios and table formatting.
//!
//! Op-count columns of the paper's tables are reproduced **exactly** from
//! the paper-scale architecture plans (`pecan_core::configs`); accuracy
//! columns are **measured** by training reduced-width models on synthetic
//! stand-in datasets (see `DESIGN.md` §2 for the substitution argument).
//! Helpers here keep those runs small enough for a laptop while exercising
//! the full PECAN code path (im2col → PQ assignment → LUT → backprop).

#![forbid(unsafe_code)]

pub mod diff;

use pecan_core::{train_pecan, PecanBuilder, PecanVariant, Strategy};
use pecan_datasets::{make_batches, synthetic_mnist, synthetic_textures, InMemoryDataset};
use pecan_nn::{models, Batch, LayerBuilder, Sequential, StandardBuilder};
use pecan_tensor::ShapeError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which reduced-scale architecture a scenario trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Modified LeNet-5 (28×28 single-channel input).
    Lenet,
    /// VGG-Small at `width/width_divisor` (input must be a multiple of 8).
    VggSmall { width_divisor: usize, input: usize },
    /// CIFAR ResNet with `blocks` per stage at reduced width.
    Resnet { blocks: usize, width_divisor: usize },
    /// Modified ConvMixer (reduced dim/depth).
    ConvMixer { dim: usize, depth: usize, patch: usize },
}

/// A reduced-scale dataset + split, sized for minutes-long harness runs.
pub struct Scenario {
    /// Training batches.
    pub train: Vec<Batch>,
    /// Held-out batches.
    pub test: Vec<Batch>,
    /// Class count.
    pub classes: usize,
}

fn to_batches(
    data: &InMemoryDataset,
    batch: usize,
    rng: &mut StdRng,
) -> Result<Vec<Batch>, ShapeError> {
    make_batches(data, batch, Some(rng))
        .into_iter()
        .map(|(i, l)| Batch::new(i, l))
        .collect()
}

/// Synthetic-MNIST scenario (LeNet experiments, Table 2).
///
/// # Errors
///
/// Returns [`ShapeError`] if batch construction fails (it cannot for valid
/// sizes).
pub fn mnist_scenario(
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> Result<Scenario, ShapeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = synthetic_mnist(&mut rng, n_train + n_test);
    let (train, test) = data.split(n_train);
    Ok(Scenario {
        train: to_batches(&train, 32, &mut rng)?,
        test: to_batches(&test, 32, &mut rng)?,
        classes: 10,
    })
}

/// Synthetic texture scenario standing in for CIFAR-10/100 (Tables 3/4) and
/// Tiny-ImageNet (Table A4) at a configurable spatial size.
///
/// # Errors
///
/// Returns [`ShapeError`] if batch construction fails.
pub fn texture_scenario(
    classes: usize,
    size: usize,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> Result<Scenario, ShapeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = synthetic_textures(&mut rng, n_train + n_test, classes, size);
    let (train, test) = data.split(n_train);
    Ok(Scenario {
        train: to_batches(&train, 25, &mut rng)?,
        test: to_batches(&test, 25, &mut rng)?,
        classes,
    })
}

/// Instantiates a reduced-scale architecture through any layer builder.
///
/// # Errors
///
/// Returns [`ShapeError`] on invalid configurations (e.g. VGG input not a
/// multiple of 8).
pub fn build_arch(
    arch: Arch,
    builder: &mut dyn LayerBuilder,
    classes: usize,
) -> Result<Sequential, ShapeError> {
    match arch {
        Arch::Lenet => models::lenet5_modified(builder),
        Arch::VggSmall { width_divisor, input } => models::vgg_small(
            builder,
            models::VggSmallConfig { num_classes: classes, width_divisor, input_size: input },
        ),
        Arch::Resnet { blocks, width_divisor } => {
            models::resnet(builder, blocks, classes, width_divisor)
        }
        Arch::ConvMixer { dim, depth, patch } => models::convmixer(
            builder,
            models::ConvMixerConfig {
                dim,
                depth,
                kernel: 5,
                patch_size: patch,
                num_classes: classes,
            },
        ),
    }
}

/// Per-run hyperparameters for [`measure_accuracy`].
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Epoch at which the rate decays ×0.1.
    pub decay: usize,
    /// Prototypes for PECAN layers in this reduced run.
    pub prototypes: usize,
    /// Softmax temperature override (`None` → 0.25 for A, 0.5 for D —
    /// sharper than the paper's CIFAR values to suit the smaller feature
    /// magnitudes of the reduced tasks).
    pub tau: Option<f32>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { epochs: 8, lr: 0.005, decay: 6, prototypes: 16, tau: None }
    }
}

/// Trains `arch` as baseline (`variant = None`) or PECAN and returns test
/// accuracy. PECAN layers use `d = k²` for convolutions and the default
/// divisor rule for FC layers, with `config.prototypes` per codebook.
///
/// # Errors
///
/// Returns [`ShapeError`] if the architecture rejects the scenario shapes.
pub fn measure_accuracy(
    arch: Arch,
    variant: Option<PecanVariant>,
    scenario: &Scenario,
    seed: u64,
    config: RunConfig,
) -> Result<f32, ShapeError> {
    let mut net = match variant {
        None => build_arch(arch, &mut StandardBuilder::from_seed(seed), scenario.classes)?,
        Some(v) => {
            let tau = config.tau.unwrap_or(match v {
                PecanVariant::Angle => 0.25,
                PecanVariant::Distance => 0.5,
            });
            let mut b = PecanBuilder::from_seed(seed, v)
                .with_default_tau(tau)
                .with_default_prototypes(config.prototypes);
            build_arch(arch, &mut b, scenario.classes)?
        }
    };
    let report = train_pecan(
        &mut net,
        Strategy::CoOptimization,
        &scenario.train,
        &scenario.test,
        config.epochs,
        config.lr,
        config.decay,
    )?;
    Ok(report.eval_accuracy)
}

/// The paper's MNIST methodology (§4 "Implementation Details"): pretrain a
/// baseline, freeze its weights, and learn **only the prototypes**
/// (uni-optimization). Returns `(baseline_accuracy, pecan_accuracy)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the architecture rejects the scenario shapes.
pub fn measure_uni_accuracy(
    arch: Arch,
    variant: PecanVariant,
    scenario: &Scenario,
    seed: u64,
    baseline_epochs: usize,
    config: RunConfig,
) -> Result<(f32, f32), ShapeError> {
    let mut recorder = pecan_core::RecordingBuilder::from_seed(seed);
    let mut baseline = build_arch(arch, &mut recorder, scenario.classes)?;
    let base_report = train_pecan(
        &mut baseline,
        Strategy::CoOptimization,
        &scenario.train,
        &scenario.test,
        baseline_epochs,
        config.lr,
        baseline_epochs.saturating_sub(2).max(1),
    )?;
    let tau = config.tau.unwrap_or(match variant {
        PecanVariant::Angle => 0.25,
        PecanVariant::Distance => 0.5,
    });
    let mut b = PecanBuilder::from_seed(seed ^ 0xF00D, variant)
        .with_default_tau(tau)
        .with_default_prototypes(config.prototypes)
        .with_pretrained_from(&recorder, true);
    let mut net = build_arch(arch, &mut b, scenario.classes)?;
    let report = train_pecan(
        &mut net,
        Strategy::UniOptimization,
        &scenario.train,
        &scenario.test,
        config.epochs,
        config.lr,
        config.decay,
    )?;
    Ok((base_report.eval_accuracy, report.eval_accuracy))
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str("| ");
    s.push_str(&headers.join(" | "));
    s.push_str(" |\n|");
    for _ in headers {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        s.push_str("| ");
        s.push_str(&row.join(" | "));
        s.push_str(" |\n");
    }
    s
}

/// Formats an op count with the paper's K/M/G units.
pub fn fmt_ops(n: u64) -> String {
    let f = n as f64;
    if f >= 1e9 {
        format!("{:.2}G", f / 1e9)
    } else if f >= 1e6 {
        format!("{:.2}M", f / 1e6)
    } else if f >= 1e3 {
        format!("{:.2}K", f / 1e3)
    } else {
        format!("{n}")
    }
}

/// Re-export used by the experiments binary for settings construction.
pub use pecan_core::PqLayerSettings as LayerSettings;
pub use pecan_core::PecanVariant as Variant;

/// [`LayerBuilder`] producing AdderNet convolutions (classifier stays a
/// standard linear layer, as in the AdderNet paper).
pub struct AdderBuilder {
    inner: StandardBuilder,
    rng: StdRng,
}

impl AdderBuilder {
    /// Creates a builder with a fixed seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { inner: StandardBuilder::from_seed(seed), rng: StdRng::seed_from_u64(seed ^ 0xadd) }
    }
}

impl LayerBuilder for AdderBuilder {
    fn conv2d(
        &mut self,
        _layer_index: usize,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Box<dyn pecan_nn::Layer> {
        Box::new(pecan_baselines::AdderConv2d::new(
            &mut self.rng,
            c_in,
            c_out,
            kernel,
            stride,
            padding,
        ))
    }

    fn linear(
        &mut self,
        layer_index: usize,
        in_features: usize,
        out_features: usize,
    ) -> Box<dyn pecan_nn::Layer> {
        self.inner.linear(layer_index, in_features, out_features)
    }
}

/// Trains `arch` with AdderNet convolutions and returns test accuracy.
///
/// # Errors
///
/// Returns [`ShapeError`] if the architecture rejects the scenario shapes.
pub fn measure_adder_accuracy(
    arch: Arch,
    scenario: &Scenario,
    seed: u64,
    config: RunConfig,
) -> Result<f32, ShapeError> {
    let mut net = build_arch(arch, &mut AdderBuilder::from_seed(seed), scenario.classes)?;
    let report = train_pecan(
        &mut net,
        Strategy::CoOptimization,
        &scenario.train,
        &scenario.test,
        config.epochs,
        config.lr,
        config.decay,
    )?;
    Ok(report.eval_accuracy)
}

#[allow(unused)]
fn _assert_send<T>() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn fmt_ops_units() {
        assert_eq!(fmt_ops(950), "950");
        assert_eq!(fmt_ops(48_672), "48.67K");
        assert_eq!(fmt_ops(1_998_064), "2.00M");
        assert_eq!(fmt_ops(3_360_000_000), "3.36G");
    }

    #[test]
    fn scenarios_produce_balanced_batches() {
        let s = mnist_scenario(64, 32, 0).unwrap();
        assert_eq!(s.classes, 10);
        let total: usize = s.train.iter().map(Batch::len).sum();
        assert_eq!(total, 64);
        let t = texture_scenario(4, 16, 50, 25, 1).unwrap();
        assert_eq!(t.classes, 4);
    }
}

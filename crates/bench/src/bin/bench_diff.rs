//! `bench-diff` — gate CI on benchmark medians.
//!
//! ```text
//! bench-diff <baseline-dir> <current-dir> [--threshold <pct>] [--json PATH]
//! ```
//!
//! Compares two directories of criterion-shim `*.json` records (the files
//! every `cargo bench` run writes under `target/bench/`) and exits non-zero
//! when any benchmark's median regressed beyond the threshold (default
//! 20%). A missing *baseline* directory is the first-run case and exits 0
//! so a branch with no prior artifact never fails; a missing *current*
//! directory is always an error. `--json PATH` additionally writes the
//! comparison as a JSON array (`-` for stdout) — the same rows as the
//! markdown table, machine-readable for CI annotations. Full CLI docs:
//! `crates/bench/README.md`.

use pecan_bench::diff;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str =
    "usage: bench-diff <baseline-dir> <current-dir> [--threshold <pct>] [--json PATH]";
const DEFAULT_THRESHOLD_PCT: f64 = 20.0;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<&str> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut json_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_path =
                    Some(it.next().ok_or_else(|| format!("--json needs a path\n{USAGE}"))?);
            }
            "--threshold" => {
                let v = it.next().ok_or_else(|| format!("--threshold needs a value\n{USAGE}"))?;
                threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("invalid threshold `{v}` (want a percentage ≥ 0)"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(false);
            }
            other if !other.starts_with('-') => dirs.push(other),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        return Err(USAGE.to_string());
    };

    if !Path::new(baseline_dir).is_dir() {
        println!(
            "bench-diff: baseline directory `{baseline_dir}` not found — \
             no previous bench artifact, skipping comparison."
        );
        return Ok(false);
    }
    let baseline = diff::load_dir(Path::new(baseline_dir))
        .map_err(|e| format!("cannot read baseline `{baseline_dir}`: {e}"))?;
    let current = diff::load_dir(Path::new(current_dir))
        .map_err(|e| format!("cannot read current `{current_dir}`: {e}"))?;
    if current.is_empty() {
        return Err(format!("current directory `{current_dir}` holds no bench records"));
    }

    let rows = diff::diff(&baseline, &current, threshold);
    println!("bench-diff: {} benchmark(s), threshold ±{threshold}%\n", rows.len());
    print!("{}", diff::render_table(&rows));
    if let Some(path) = json_path {
        let json = diff::render_json(&rows);
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("\nwrote {path}");
        }
    }
    let regressed = diff::regressions(&rows);
    if regressed.is_empty() {
        println!("\nno median regressed beyond {threshold}%.");
        Ok(false)
    } else {
        println!("\n{} median(s) regressed beyond {threshold}%: {}", regressed.len(), regressed.join(", "));
        Ok(true)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench-diff: {msg}");
            ExitCode::from(2)
        }
    }
}

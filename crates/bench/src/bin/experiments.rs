//! Regenerates every table and figure of the PECAN paper.
//!
//! ```text
//! cargo run --release -p pecan-bench --bin experiments -- all
//! cargo run --release -p pecan-bench --bin experiments -- table2 figure6
//! ```
//!
//! Op-count columns come from the paper-scale architecture plans and match
//! the paper exactly; accuracy columns are measured on reduced-scale models
//! over synthetic stand-in datasets (see `DESIGN.md` §2 and
//! `EXPERIMENTS.md` for paper-vs-measured). Output is markdown, echoed to
//! stdout and written to `results/<id>.md`.
//!
//! Tables are generated concurrently on the workspace's scoped thread pool
//! (`PECAN_NUM_THREADS` workers; default `available_parallelism`, capped) —
//! each table owns its seeds, so results are identical to a serial run, and
//! output is printed in request order once every table has finished.

use pecan_bench::{
    build_arch, fmt_ops, markdown_table, measure_accuracy, measure_adder_accuracy,
    measure_uni_accuracy, mnist_scenario, texture_scenario, Arch, RunConfig,
};
use pecan_cam::{CostModel, OpCounts};
use pecan_core::configs::{
    convmixer_plan, lenet_plan, resnet_plan, vgg_small_plan, ArchPlan, DimChoice,
};
use pecan_core::{
    complexity, quantization_snapshot, train_pecan, LayerLut, PecanBuilder, PecanConv2d,
    PecanVariant, PqLayerSettings, QuantizationSnapshot, RecordingBuilder, Strategy,
};
use pecan_nn::models;
use pecan_pq::sign_approx_series;
use pecan_tensor::{im2col, Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::time::Instant;

const KNOWN_IDS: [&str; 14] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "tableA2", "tableA3", "tableA4",
    "figure3", "figure4", "figure5", "figure6", "noise",
];

fn generate(id: &str) -> Option<String> {
    Some(match id {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(),
        "table6" => table6(),
        "tableA2" => table_a2(),
        "tableA3" => table_a3(),
        "tableA4" => table_a4(),
        "figure3" => figure3(),
        "figure4" => figure4(),
        "figure5" => figure5(),
        "figure6" => figure6(),
        "noise" => noise(),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        KNOWN_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    fs::create_dir_all("results").expect("create results dir");
    // Surface typo'd ids immediately instead of after minutes of training.
    for id in &ids {
        if !KNOWN_IDS.contains(id) {
            eprintln!("unknown experiment id `{id}` — skipping (known: {})", KNOWN_IDS.join(" "));
        }
    }
    let ids: Vec<&str> = ids.into_iter().filter(|id| KNOWN_IDS.contains(id)).collect();
    // One worker per table up to the shared PECAN_NUM_THREADS budget (the
    // GEMMs inside pool workers run serially, so the two layers never
    // multiply); each table is seed-deterministic, so parallelism changes
    // wall-clock only.
    let threads = pecan_tensor::configured_threads();
    eprintln!("experiments: {} job(s) on {threads} worker(s) (PECAN_NUM_THREADS to override)", ids.len());
    let docs = pecan_tensor::parallel_map(threads, ids, |id| {
        let start = Instant::now();
        let body = generate(id);
        let elapsed = start.elapsed().as_secs_f32();
        (id, body.map(|b| format!("{b}\n\n_(generated in {elapsed:.1}s)_\n")))
    });
    for (id, doc) in docs {
        let doc = doc.expect("ids were pre-validated against KNOWN_IDS");
        println!("{doc}");
        fs::write(format!("results/{id}.md"), &doc).expect("write result file");
    }
}

fn pct(a: f32) -> String {
    format!("{:.2}", a * 100.0)
}

fn ops_row(name: &str, ops: OpCounts, acc: Option<String>) -> Vec<String> {
    let mut row = vec![name.to_string(), fmt_ops(ops.adds), fmt_ops(ops.muls)];
    if let Some(a) = acc {
        row.push(a);
    }
    row
}

// ---------------------------------------------------------------- table 1

fn table1() -> String {
    let mut out = String::from("## Table 1 — inference complexity of PECAN-A and PECAN-D\n\n");
    out.push_str(&markdown_table(
        &["Method", "Layer", "#Add.", "#Mul."],
        &[
            vec!["Baseline".into(), "CONV".into(), "cin·HW·k²·cout".into(), "cin·HW·k²·cout".into()],
            vec!["".into(), "FC".into(), "cin·cout".into(), "cin·cout".into()],
            vec!["PECAN-A".into(), "CONV".into(), "p·D·HW·(d+cout)".into(), "p·D·HW·(d+cout)".into()],
            vec!["".into(), "FC".into(), "p·D·(d+cout)".into(), "p·D·(d+cout)".into()],
            vec!["PECAN-D".into(), "CONV".into(), "D·HW·(2pd+cout)".into(), "0".into()],
            vec!["".into(), "FC".into(), "D·(2pd+cout)".into(), "0".into()],
        ],
    ));
    out.push_str("\nNumeric check on LeNet CONV1 (cin=1, k=3, cout=8, 26×26, PECAN-A p=4/d=9, PECAN-D p=64/d=9):\n\n");
    let s = complexity::LayerShape::conv(1, 8, 3, 26, 26);
    out.push_str(&markdown_table(
        &["Method", "#Add.", "#Mul."],
        &[
            ops_row("Baseline", complexity::baseline_ops(&s), None),
            ops_row("PECAN-A", complexity::pecan_a_ops(&s, 4, 1, 9), None),
            ops_row("PECAN-D", complexity::pecan_d_ops(&s, 64, 1, 9), None),
        ],
    ));
    out.push_str("\nPaper: 48.67K / 45.97K / 784.16K-and-0 — matched exactly.\n");
    out
}

// ---------------------------------------------------------------- table 2

fn table2() -> String {
    let plan = lenet_plan();
    let scenario = mnist_scenario(800, 200, 100).expect("scenario");
    // Paper methodology for MNIST: uni-optimization — pretrain the baseline,
    // freeze its weights, train only the prototypes (150 epochs there; a
    // reduced budget here).
    let pecan_cfg = RunConfig { epochs: 16, lr: 0.01, decay: 12, prototypes: 32, tau: None };
    let (base, a) =
        measure_uni_accuracy(Arch::Lenet, PecanVariant::Angle, &scenario, 2, 6, pecan_cfg)
            .expect("pecan-a run");
    let (_, d) =
        measure_uni_accuracy(Arch::Lenet, PecanVariant::Distance, &scenario, 2, 6, pecan_cfg)
            .expect("pecan-d run");

    let mut out = String::from("## Table 2 — LeNet on MNIST\n\n");
    out.push_str(
        "Op counts: paper-scale plan (exact). Accuracy: measured on synthetic MNIST \
         (800 train / 200 test) with the paper's uni-optimization strategy — \
         frozen pretrained weights, prototypes trained for 16 epochs (p=32 \
         reduced from 64; paper values in parentheses).\n\n",
    );
    out.push_str(&markdown_table(
        &["Model", "#Add.", "#Mul.", "Acc.(%) measured (paper)"],
        &[
            ops_row("Baseline", plan.baseline_total(), Some(format!("{} (99.41)", pct(base)))),
            ops_row("PECAN-A", plan.pecan_a_total(), Some(format!("{} (99.25)", pct(a)))),
            ops_row("PECAN-D", plan.pecan_d_total(), Some(format!("{} (99.01)", pct(d)))),
        ],
    ));
    out
}

// ------------------------------------------------------------ tables 3 & 4

fn cifar_like_table(classes: usize, paper: [[&str; 3]; 3]) -> String {
    cifar_like_table_sized(classes, paper, 600, 200, 5)
}

fn cifar_like_table_sized(
    classes: usize,
    paper: [[&str; 3]; 3],
    n_train: usize,
    n_test: usize,
    epochs: usize,
) -> String {
    let scenario =
        texture_scenario(classes, 16, n_train, n_test, 7 + classes as u64).expect("scenario");
    let cfg = RunConfig { epochs, lr: 0.004, decay: epochs.saturating_sub(1).max(1), prototypes: 16, tau: None };
    let archs: [(&str, Arch, ArchPlan); 3] = [
        ("VGG-Small", Arch::VggSmall { width_divisor: 8, input: 16 }, vgg_small_plan(classes)),
        ("ResNet20", Arch::Resnet { blocks: 3, width_divisor: 4 }, resnet_plan(3, classes, None)),
        ("ResNet32", Arch::Resnet { blocks: 5, width_divisor: 4 }, resnet_plan(5, classes, None)),
    ];
    let mut rows = Vec::new();
    for (i, (name, arch, plan)) in archs.iter().enumerate() {
        let base =
            measure_accuracy(*arch, None, &scenario, 10 + i as u64, cfg).expect("baseline");
        let a = measure_accuracy(*arch, Some(PecanVariant::Angle), &scenario, 20 + i as u64, cfg)
            .expect("pecan-a");
        let d =
            measure_accuracy(*arch, Some(PecanVariant::Distance), &scenario, 30 + i as u64, cfg)
                .expect("pecan-d");
        rows.push(ops_row(
            &format!("{name} / Baseline"),
            plan.baseline_total(),
            Some(format!("{} ({})", pct(base), paper[i][0])),
        ));
        rows.push(ops_row(
            &format!("{name} / PECAN-A"),
            plan.pecan_a_total(),
            Some(format!("{} ({})", pct(a), paper[i][1])),
        ));
        rows.push(ops_row(
            &format!("{name} / PECAN-D"),
            plan.pecan_d_total(),
            Some(format!("{} ({})", pct(d), paper[i][2])),
        ));
    }
    markdown_table(&["Model / Method", "#Add.", "#Mul.", "Acc.(%) measured (paper)"], &rows)
}

fn table3() -> String {
    let mut out = String::from("## Table 3 — CIFAR-10\n\n");
    out.push_str(
        "Op counts: paper-scale plans (match the paper's 0.61G/0.54G/0.37G and \
         40.55M/38.12M/211.71M etc. exactly). Accuracy: reduced-width models \
         (÷8 VGG, ÷4 ResNet) on 16×16 synthetic textures, 10 classes.\n\n",
    );
    out.push_str(&cifar_like_table(
        10,
        [["91.21", "91.82", "90.19"], ["92.55", "90.32", "87.88"], ["92.85", "90.53", "88.46"]],
    ));
    out
}

fn table4() -> String {
    let mut out = String::from("## Table 4 — CIFAR-100\n\n");
    out.push_str(
        "As Table 3 with a 100-class synthetic texture task (harder, so all \
         accuracies drop — matching the paper's CIFAR-100 trend). Runs use a \
         smaller budget than Table 3 (3 epochs, 400 train).\n\n",
    );
    out.push_str(&cifar_like_table_sized(
        100,
        [["67.84", "69.21", "60.43"], ["69.55", "63.15", "58.01"], ["70.57", "64.13", "58.26"]],
        400,
        150,
        3,
    ));
    out
}

// ---------------------------------------------------------------- table 5

fn table5() -> String {
    let plan = vgg_small_plan(10);
    let model = CostModel::via_nano();
    let cnn = plan.baseline_total();
    let pecan_d = plan.pecan_d_total();
    let adder = OpCounts::new(2 * cnn.muls, 0);

    // Reduced-scale accuracy measurements, including our AdderNet.
    let scenario = texture_scenario(10, 16, 400, 120, 55).expect("scenario");
    let cfg = RunConfig { epochs: 3, lr: 0.004, decay: 2, prototypes: 16, tau: None };
    let arch = Arch::VggSmall { width_divisor: 8, input: 16 };
    let acc_cnn = measure_accuracy(arch, None, &scenario, 51, cfg).expect("cnn");
    let acc_d = measure_accuracy(arch, Some(PecanVariant::Distance), &scenario, 52, cfg)
        .expect("pecan-d");
    let acc_adder = measure_adder_accuracy(arch, &scenario, 53, cfg).expect("addernet");

    let mut out = String::from("## Table 5 — comparison with AdderNet (VGG-Small)\n\n");
    out.push_str(
        "Cost model: Intel VIA Nano 2000 (mul = 4 cycles / 4× power, add = 2 cycles / 1×). \
         The paper could not train VGG-scale AdderNet (N.A.); our reduced-scale AdderNet \
         accuracy is reported alongside.\n\n",
    );
    out.push_str(&markdown_table(
        &["Method", "#Mul.", "#Add.", "Acc.(%) measured (paper)", "Norm. power (paper)", "Latency (paper)"],
        &[
            vec![
                "CNN".into(),
                fmt_ops(cnn.muls),
                fmt_ops(cnn.adds),
                format!("{} (93.80)", pct(acc_cnn)),
                format!("{:.2} (8.24)", model.normalized_power(&cnn, &pecan_d)),
                format!("{:.2}G (3.66G)", model.cycles(&cnn) as f64 / 1e9),
            ],
            vec![
                "AdderNet".into(),
                fmt_ops(adder.muls),
                fmt_ops(adder.adds),
                format!("{} (N.A.)", pct(acc_adder)),
                format!("{:.2} (3.30)", model.normalized_power(&adder, &pecan_d)),
                format!("{:.2}G (2.44G)", model.cycles(&adder) as f64 / 1e9),
            ],
            vec![
                "PECAN-D".into(),
                fmt_ops(pecan_d.muls),
                fmt_ops(pecan_d.adds),
                format!("{} (90.19)", pct(acc_d)),
                format!("{:.2} (1)", model.normalized_power(&pecan_d, &pecan_d)),
                format!("{:.2}G (0.72G)", model.cycles(&pecan_d) as f64 / 1e9),
            ],
        ],
    ));
    out
}

// ---------------------------------------------------------------- table 6

fn table6() -> String {
    let scenario = texture_scenario(10, 16, 400, 150, 66).expect("scenario");
    let arch = Arch::VggSmall { width_divisor: 8, input: 16 };

    // 1. Train the baseline while recording its weights.
    let mut recorder = RecordingBuilder::from_seed(61);
    let mut baseline = build_arch(arch, &mut recorder, scenario.classes).expect("build");
    let base_report = train_pecan(
        &mut baseline,
        Strategy::CoOptimization,
        &scenario.train,
        &scenario.test,
        4,
        0.004,
        3,
    )
    .expect("baseline training");

    // 2. PECAN from scratch (co-optimization) and from the pretrained
    //    weights with everything but prototypes frozen (uni-optimization).
    let measure = |variant: PecanVariant, uni: bool, seed: u64| -> f32 {
        let tau = if variant == PecanVariant::Angle { 0.25 } else { 0.5 };
        let mut b = PecanBuilder::from_seed(seed, variant)
            .with_default_tau(tau)
            .with_default_prototypes(16);
        if uni {
            b = b.with_pretrained_from(&recorder, true);
        }
        let mut net = build_arch(arch, &mut b, scenario.classes).expect("build");
        train_pecan(
            &mut net,
            if uni { Strategy::UniOptimization } else { Strategy::CoOptimization },
            &scenario.train,
            &scenario.test,
            4,
            0.004,
            3,
        )
        .expect("training")
        .eval_accuracy
    };
    let a_scratch = measure(PecanVariant::Angle, false, 62);
    let d_scratch = measure(PecanVariant::Distance, false, 63);
    let a_frozen = measure(PecanVariant::Angle, true, 64);
    let d_frozen = measure(PecanVariant::Distance, true, 65);

    let mut out = String::from("## Table 6 — training strategies (VGG-Small)\n\n");
    out.push_str(&markdown_table(
        &["Model", "From scratch", "Freeze weights", "Acc.(%) measured (paper)"],
        &[
            vec!["Baseline".into(), "yes".into(), "no".into(), format!("{} (91.21)", pct(base_report.eval_accuracy))],
            vec!["PECAN-A".into(), "yes".into(), "no".into(), format!("{} (91.82)", pct(a_scratch))],
            vec!["PECAN-D".into(), "yes".into(), "no".into(), format!("{} (90.19)", pct(d_scratch))],
            vec!["PECAN-A".into(), "no".into(), "yes".into(), format!("{} (91.76)", pct(a_frozen))],
            vec!["PECAN-D".into(), "no".into(), "yes".into(), format!("{} (87.43)", pct(d_frozen))],
        ],
    ));
    out.push_str(
        "\nPaper's finding: uni-optimization (frozen weights) trails co-optimization, \
         especially for PECAN-D, because pretrained filters are not matched to the \
         prototype templates.\n",
    );
    out
}

// --------------------------------------------------------------- table A2

fn table_a2() -> String {
    let plan = lenet_plan();
    let mut rows = Vec::new();
    for layer in &plan.layers {
        let s = &layer.shape;
        let base = complexity::baseline_ops(s);
        rows.push(vec![
            layer.name.clone(),
            fmt_ops(base.adds),
            fmt_ops(base.muls),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        if let Some(a) = layer.angle {
            let groups = a.groups_for(s.rows());
            let ops = complexity::pecan_a_ops(s, a.prototypes, groups, a.dim);
            rows.push(vec![
                format!("{} (PECAN-A)", layer.name),
                fmt_ops(ops.adds),
                fmt_ops(ops.muls),
                a.prototypes.to_string(),
                groups.to_string(),
                a.dim.to_string(),
            ]);
        }
        if let Some(d) = layer.distance {
            let groups = d.groups_for(s.rows());
            let ops = complexity::pecan_d_ops(s, d.prototypes, groups, d.dim);
            rows.push(vec![
                format!("{} (PECAN-D)", layer.name),
                fmt_ops(ops.adds),
                fmt_ops(ops.muls),
                d.prototypes.to_string(),
                groups.to_string(),
                d.dim.to_string(),
            ]);
        }
    }
    let mut out = String::from("## Table A2 — per-layer PECAN settings of LeNet on MNIST\n\n");
    out.push_str(&markdown_table(&["Layer", "#Add.", "#Mul.", "p", "D", "d"], &rows));
    out.push_str("\nAll rows match the paper's Table A2 exactly.\n");
    out
}

// --------------------------------------------------------------- table A3

fn table_a3() -> String {
    let mut out = String::from(
        "## Table A3 — prototype numbers and dimensions per layer (CIFAR-10 models)\n\n",
    );
    for plan in [vgg_small_plan(10), resnet_plan(3, 10, None), resnet_plan(5, 10, None)] {
        out.push_str(&format!("### {}\n\n", plan.name));
        let rows: Vec<Vec<String>> = plan
            .layers
            .iter()
            .map(|l| {
                vec![
                    l.name.clone(),
                    format!("{}×{}", l.shape.h_out, l.shape.w_out),
                    l.angle
                        .map(|s| format!("{}/{}", s.prototypes, s.dim))
                        .unwrap_or_else(|| "-".into()),
                    l.distance
                        .map(|s| format!("{}/{}", s.prototypes, s.dim))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &["Layer", "Output map", "p/d (PECAN-A)", "p/d (PECAN-D)"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

// --------------------------------------------------------------- table A4

fn table_a4() -> String {
    let plan = convmixer_plan();
    let scenario = texture_scenario(20, 32, 500, 150, 44).expect("scenario");
    let cfg = RunConfig { epochs: 4, lr: 0.004, decay: 3, prototypes: 16, tau: None };
    let arch = Arch::ConvMixer { dim: 32, depth: 4, patch: 4 };
    let base = measure_accuracy(arch, None, &scenario, 71, cfg).expect("baseline");
    let a = measure_accuracy(arch, Some(PecanVariant::Angle), &scenario, 72, cfg).expect("a");
    let d = measure_accuracy(arch, Some(PecanVariant::Distance), &scenario, 73, cfg).expect("d");

    let mut out = String::from("## Table A4 — ConvMixer on Tiny-ImageNet\n\n");
    out.push_str(
        "Op counts: paper-scale ConvMixer-256/8 (k=5, 64×64 input, patch 4, first conv \
         and classifier uncompressed). Accuracy: reduced ConvMixer-32/4 on 32×32 \
         synthetic textures, 20 classes.\n\n",
    );
    out.push_str(&markdown_table(
        &["Method", "#Add.", "#Mul.", "Acc.(%) measured (paper)"],
        &[
            ops_row("Baseline", plan.baseline_total(), Some(format!("{} (56.76)", pct(base)))),
            ops_row("PECAN-A", plan.pecan_a_total(), Some(format!("{} (59.42)", pct(a)))),
            ops_row("PECAN-D", plan.pecan_d_total(), Some(format!("{} (50.48)", pct(d)))),
        ],
    ));
    out
}

// --------------------------------------------------------------- figure 3

fn figure3() -> String {
    let xs: Vec<f32> = (-100..=100).map(|i| i as f32 / 50.0).collect();
    let fracs = [0.02f32, 0.25, 0.5, 0.75, 1.0];
    let series = sign_approx_series(&fracs, &xs);
    let mut out = String::from(
        "## Figure 3 — epoch-aware approximation tanh(a·x), a = exp(4·e/E)\n\nTSV series \
         (x then one column per e/E):\n\n```\nx\te/E=0.02\te/E=0.25\te/E=0.50\te/E=0.75\te/E=1.00\n",
    );
    for (i, &x) in xs.iter().enumerate().step_by(10) {
        out.push_str(&format!(
            "{:.2}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\n",
            x, series[0][i], series[1][i], series[2][i], series[3][i], series[4][i]
        ));
    }
    out.push_str("```\n\nThe curve sharpens towards sign(x) as training progresses (paper Fig. 3).\n");
    out
}

// --------------------------------------------------------------- figure 4

fn figure4() -> String {
    let scenario = texture_scenario(10, 16, 350, 120, 40).expect("scenario");
    let mut rows = Vec::new();
    for (label, choice) in [("d = k", DimChoice::Kernel), ("d = k²", DimChoice::KernelSq), ("d = cin", DimChoice::Cin)]
    {
        let mut accs = Vec::new();
        for variant in [PecanVariant::Angle, PecanVariant::Distance] {
            let tau = if variant == PecanVariant::Angle { 0.25 } else { 0.5 };
            let mut b = PecanBuilder::from_seed(80, variant)
                .with_default_tau(tau)
                .with_default_prototypes(16)
                .with_conv_dim_rule(move |c_in, k| match choice {
                    DimChoice::Kernel => k,
                    DimChoice::KernelSq => k * k,
                    DimChoice::Cin => c_in,
                });
            let mut net =
                build_arch(Arch::Resnet { blocks: 2, width_divisor: 4 }, &mut b, 10)
                    .expect("build");
            let acc = train_pecan(
                &mut net,
                Strategy::CoOptimization,
                &scenario.train,
                &scenario.test,
                3,
                0.004,
                2,
            )
            .expect("training")
            .eval_accuracy;
            accs.push(acc);
        }
        rows.push(vec![label.to_string(), pct(accs[0]), pct(accs[1])]);
    }
    let mut out = String::from("## Figure 4 — prototype dimension ablation (ResNet-20 style)\n\n");
    out.push_str(&markdown_table(
        &["Prototype dimension", "PECAN-A acc.(%)", "PECAN-D acc.(%)"],
        &rows,
    ));
    out.push_str(
        "\nPaper's trend: PECAN-A is robust across dimensions; PECAN-D degrades as the \
         sub-vector dimension grows (coarser quantization).\n",
    );
    out
}

// --------------------------------------------------------------- figure 5

fn figure5() -> String {
    // Train a small 2-conv PECAN-D net briefly so the prototypes adapt.
    let scenario = mnist_scenario(300, 60, 90).expect("scenario");
    let mut b = PecanBuilder::from_seed(91, PecanVariant::Distance)
        .with_default_tau(0.5)
        .with_default_prototypes(8);
    let mut net = models::lenet5_modified(&mut b).expect("build");
    train_pecan(&mut net, Strategy::CoOptimization, &scenario.train, &scenario.test, 3, 0.004, 2)
        .expect("training");

    let mut out = String::from(
        "## Figure 5 — flattened features X, quantized X̃ and codebook C (PECAN-D)\n\n",
    );
    let image = {
        let (imgs, _) = (&scenario.test[0].images, &scenario.test[0].labels);
        Tensor::from_vec(imgs.data()[..28 * 28].to_vec(), &[1, 1, 28, 28]).expect("image")
    };
    // Walk the trained net, snapshotting each PECAN conv on the activations
    // it actually receives.
    let mut act = pecan_autograd::Var::constant(image);
    let mut conv_index = 0;
    for i in 0..net.len() {
        if let Some(conv) = net.layers()[i].as_any().downcast_ref::<PecanConv2d>() {
            let (c_in, _c_out, k, stride, padding) = conv.conv_config();
            let dims = act.value().dims().to_vec(); // [1, C, H, W]
            let sample = Tensor::from_vec(
                act.value().data().to_vec(),
                &[c_in, dims[2], dims[3]],
            )
            .expect("single-sample activation");
            let geom = Conv2dGeometry::new(c_in, dims[2], dims[3], k, stride, padding)
                .expect("geometry");
            let cols = im2col(&sample, &geom).expect("im2col");
            let snap = quantization_snapshot(conv, &cols, 0).expect("snapshot");
            out.push_str(&format!(
                "### conv{} (group 0, d = {}, p = {}, mean |X − X̃| = {:.3})\n\n",
                conv_index + 1,
                conv.pq_config().dim(),
                conv.pq_config().prototypes(),
                snap.reconstruction_error()
            ));
            out.push_str("features X(j):\n```\n");
            out.push_str(&QuantizationSnapshot::heatmap(&truncate_cols(&snap.features, 64)));
            out.push_str("```\nquantized X̃(j):\n```\n");
            out.push_str(&QuantizationSnapshot::heatmap(&truncate_cols(&snap.quantized, 64)));
            out.push_str("```\ncodebook C(j):\n```\n");
            out.push_str(&QuantizationSnapshot::heatmap(&snap.codebook));
            out.push_str("```\n\n");
            conv_index += 1;
        }
        act = net.layers_mut()[i].forward(&act, false).expect("forward");
    }
    out.push_str("Quantized maps preserve the dominant feature patterns (paper Fig. 5).\n");
    out
}

fn truncate_cols(t: &Tensor, max_cols: usize) -> Tensor {
    let (rows, cols) = (t.dims()[0], t.dims()[1]);
    let keep = cols.min(max_cols);
    let mut out = Tensor::zeros(&[rows, keep]);
    for r in 0..rows {
        for c in 0..keep {
            out.set2(r, c, t.get2(r, c));
        }
    }
    out
}

// --------------------------------------------------------------- figure 6

fn figure6() -> String {
    // Reduced ResNet-20 with PECAN-D convs; train briefly, then count
    // prototype usage of group 0 across the 18 intermediate conv layers.
    let scenario = texture_scenario(10, 16, 400, 100, 95).expect("scenario");
    let mut b = PecanBuilder::from_seed(96, PecanVariant::Distance)
        .with_default_tau(0.5)
        .with_default_prototypes(16);
    let mut net =
        build_arch(Arch::Resnet { blocks: 3, width_divisor: 4 }, &mut b, 10).expect("build");
    train_pecan(&mut net, Strategy::CoOptimization, &scenario.train, &scenario.test, 3, 0.004, 2)
        .expect("training");

    let mut out = String::from(
        "## Figure 6 — prototype call frequencies, intermediate conv layers (PECAN-D)\n\n\
         One row per conv layer (block convs in forward order), one cell per prototype \
         of the first codebook group; `·` = never used.\n\n```\n",
    );
    let mut grid = Vec::new();
    let collect = |conv: &PecanConv2d, input: &Tensor| {
        let engine = LayerLut::from_conv(conv).expect("engine");
        let (c_in, _c, k, stride, padding) = conv.conv_config();
        let dims = input.dims().to_vec();
        let geom =
            Conv2dGeometry::new(c_in, dims[1], dims[2], k, stride, padding).expect("geometry");
        let cols = im2col(input, &geom).expect("im2col");
        let mut stats = engine.new_stats();
        engine.forward_matrix(&cols, Some(&mut stats)).expect("forward");
        let row: String = stats
            .counts(0)
            .iter()
            .map(|&c| match c {
                0 => '·',
                1..=15 => '▁',
                16..=63 => '▄',
                _ => '█',
            })
            .collect();
        (stats.used(0), row)
    };
    // Probe every block conv with the *real activations* it receives on a
    // test image — trained feature distributions are what make prototype
    // usage sparse (Fig. 6), noise probes would touch every prototype.
    let first = &scenario.test[0].images;
    let (c0, h0, w0) = (first.dims()[1], first.dims()[2], first.dims()[3]);
    let one = Tensor::from_vec(
        first.data()[..c0 * h0 * w0].to_vec(),
        &[1, c0, h0, w0],
    )
    .expect("single test image");
    let mut act = pecan_autograd::Var::constant(one);
    let mut used_total = 0usize;
    let mut cells_total = 0usize;
    for i in 0..net.len() {
        if let Some(block) = net.layers()[i].as_any().downcast_ref::<models::BasicBlock>() {
            let (c1, c2) = block.convs();
            if let Some(conv) = c1.as_any().downcast_ref::<PecanConv2d>() {
                let dims = act.value().dims().to_vec();
                let sample = Tensor::from_vec(
                    act.value().data().to_vec(),
                    &[dims[1], dims[2], dims[3]],
                )
                .expect("activation sample");
                let (used, row) = collect(conv, &sample);
                used_total += used;
                cells_total += conv.pq_config().prototypes();
                grid.push((used, row));
            }
            // The second conv of the block sees post-conv1 activations; the
            // group-0 usage of conv2 is probed on conv1's output statistics
            // via the block forward below, so record it from a strided view
            // of the same activation (channel count matches conv2's input).
            if let Some(conv) = c2.as_any().downcast_ref::<PecanConv2d>() {
                let (c_in, _c, _k, _s, _p) = conv.conv_config();
                let dims = act.value().dims().to_vec();
                let side = dims[2].min(dims[3]);
                let mut probe = Tensor::zeros(&[c_in, side, side]);
                // tile available channels to fill conv2's input width
                for ch in 0..c_in {
                    let src_ch = ch % dims[1];
                    for y in 0..side {
                        for x in 0..side {
                            let v = act.value().at(&[0, src_ch, y, x]);
                            probe.set(&[ch, y, x], v);
                        }
                    }
                }
                let (used, row) = collect(conv, &probe);
                used_total += used;
                cells_total += conv.pq_config().prototypes();
                grid.push((used, row));
            }
        }
        act = net.layers_mut()[i].forward(&act, false).expect("forward");
    }
    for (i, (used, row)) in grid.iter().enumerate() {
        out.push_str(&format!("layer {:>2}  [{}]  {used}/16 used\n", i + 1, row));
    }
    out.push_str("```\n\n");
    out.push_str(&format!(
        "Overall utilization {:.1}% — sparse usage means unused prototypes and their \
         LUT entries can be pruned (§5; see `examples/prototype_pruning.rs`).\n",
        100.0 * used_total as f32 / cells_total.max(1) as f32
    ));
    out
}

// ------------------------------------------------------- noise (extension)

fn noise() -> String {
    // Train a PECAN-D layer stack, then sweep Gaussian device noise on the
    // prototypes of its first conv layer and measure argmax churn.
    let mut rng = StdRng::seed_from_u64(101);
    let layer = PecanConv2d::new(
        &mut rng,
        PecanVariant::Distance,
        PqLayerSettings::new(16, 9, 0.5),
        2,
        8,
        3,
        1,
        1,
    )
    .expect("layer");
    let xcol = pecan_tensor::uniform(&mut rng, &[18, 400], -1.0, 1.0);
    let engine = LayerLut::from_conv(&layer).expect("engine");
    let clean = engine.forward_matrix(&xcol, None).expect("clean");

    let mut rows = Vec::new();
    for sigma in [0.0f32, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0] {
        let mut noisy_engine = LayerLut::from_conv(&layer).expect("engine");
        let mut noise_rng = StdRng::seed_from_u64(102);
        noisy_engine.perturb_prototypes(sigma, &mut noise_rng);
        let noisy = noisy_engine.forward_matrix(&xcol, None).expect("noisy");
        let cols = clean.dims()[1];
        let mut churn = 0;
        for i in 0..cols {
            for o in 0..clean.dims()[0] {
                if (clean.get2(o, i) - noisy.get2(o, i)).abs() > 1e-6 {
                    churn += 1;
                    break;
                }
            }
        }
        rows.push(vec![
            format!("{sigma:.2}"),
            format!("{:.1}", 100.0 * churn as f32 / cols as f32),
            format!("{:.4}", clean.max_abs_diff(&noisy)),
        ]);
    }
    let mut out = String::from(
        "## Extension — RRAM device-noise robustness of PECAN-D CAM inference\n\n\
         Gaussian noise of std σ on stored prototypes; churn = % of columns whose \
         output changed.\n\n",
    );
    out.push_str(&markdown_table(&["σ", "output churn (%)", "max |Δ|"], &rows));
    out.push_str("\nSmall device variation leaves most winner-take-all searches intact.\n");
    out
}

use pecan_cam::OpCounts;

/// Convolution shape for baseline op counting (FC = `k = h = w = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Square kernel.
    pub kernel: usize,
    /// Output height.
    pub h_out: usize,
    /// Output width.
    pub w_out: usize,
}

impl ConvShape {
    /// Shorthand constructor.
    pub fn new(c_in: usize, c_out: usize, kernel: usize, h_out: usize, w_out: usize) -> Self {
        Self { c_in, c_out, kernel, h_out, w_out }
    }

    fn macs(&self) -> u64 {
        (self.c_in * self.kernel * self.kernel * self.c_out * self.h_out * self.w_out) as u64
    }
}

/// AdderNet op counts: every multiply-accumulate of the CNN becomes a
/// subtract + absolute-accumulate, i.e. **2×** the additions and zero
/// multiplications (the 1.22G-adds VGG-Small row of Table 5).
pub fn addernet_ops(shape: &ConvShape) -> OpCounts {
    OpCounts::new(2 * shape.macs(), 0)
}

/// XNOR/binary convolution op counts: the `cin·k²·cout·HW` products become
/// 1-bit XNOR-popcount operations (reported as "binary ops" in `adds` —
/// they are not float multiplications), plus a per-output scaling multiply.
pub fn binary_conv_ops(shape: &ConvShape) -> OpCounts {
    OpCounts::new(shape.macs(), (shape.c_out * shape.h_out * shape.w_out) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addernet_doubles_additions_and_drops_muls() {
        let s = ConvShape::new(16, 32, 3, 8, 8);
        let ops = addernet_ops(&s);
        assert_eq!(ops.adds, 2 * 16 * 9 * 32 * 64);
        assert_eq!(ops.muls, 0);
        assert!(ops.is_multiplier_free());
    }

    #[test]
    fn binary_conv_keeps_one_scale_multiply_per_output() {
        let s = ConvShape::new(16, 32, 3, 8, 8);
        let ops = binary_conv_ops(&s);
        assert_eq!(ops.muls, 32 * 64);
        assert!(!ops.is_multiplier_free());
    }

    #[test]
    fn vgg_small_adder_total_matches_table_5() {
        // Sum over the six VGG-Small convs + FC ≈ 1.22G additions
        let layers = [
            ConvShape::new(3, 128, 3, 32, 32),
            ConvShape::new(128, 128, 3, 32, 32),
            ConvShape::new(128, 256, 3, 16, 16),
            ConvShape::new(256, 256, 3, 16, 16),
            ConvShape::new(256, 512, 3, 8, 8),
            ConvShape::new(512, 512, 3, 8, 8),
            ConvShape::new(8192, 10, 1, 1, 1),
        ];
        let total: u64 = layers.iter().map(|s| addernet_ops(s).adds).sum();
        let giga = total as f64 / 1e9;
        assert!((giga - 1.22).abs() < 0.01, "AdderNet adds {giga}G");
    }
}

use pecan_autograd::{BackwardOp, Var};
use pecan_nn::Layer;
use pecan_tensor::{Conv2dGeometry, ShapeError, Tensor};
use rand::Rng;
use std::any::Any;

/// Sign binarization with per-row scaling and the clipped straight-through
/// estimator: forward `sign(x)·α`, backward passes gradients only where
/// `|x| ≤ 1` (XNOR-Net / BinaryConnect style).
struct BinarizeOp {
    input: Tensor,
    scales: Vec<f32>, // per row (or a single global scale)
    per_row: bool,
}

impl BackwardOp for BinarizeOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let mut g = grad_out.clone();
        for (gv, &xv) in g.data_mut().iter_mut().zip(self.input.data()) {
            if xv.abs() > 1.0 {
                *gv = 0.0;
            }
        }
        let _ = (&self.scales, self.per_row);
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "binarize"
    }
}

fn binarize_rows(x: &Var) -> Result<Var, ShapeError> {
    let t = x.to_tensor();
    t.shape().expect_rank(2)?;
    let (rows, cols) = (t.dims()[0], t.dims()[1]);
    let mut value = Tensor::zeros(&[rows, cols]);
    let mut scales = Vec::with_capacity(rows);
    for r in 0..rows {
        let alpha = t.row(r).iter().map(|v| v.abs()).sum::<f32>() / cols.max(1) as f32;
        scales.push(alpha);
        for c in 0..cols {
            let s = if t.get2(r, c) >= 0.0 { 1.0 } else { -1.0 };
            value.set2(r, c, s * alpha);
        }
    }
    Ok(Var::from_op(
        value,
        vec![x.clone()],
        Box::new(BinarizeOp { input: t, scales, per_row: true }),
    ))
}

fn binarize_sign(x: &Var) -> Result<Var, ShapeError> {
    let t = x.to_tensor();
    let value = t.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
    Ok(Var::from_op(
        value,
        vec![x.clone()],
        Box::new(BinarizeOp { input: t, scales: vec![1.0], per_row: false }),
    ))
}

/// XNOR-Net-style binary convolution: weights binarized per filter with an
/// `α = mean(|w|)` scale, activations binarized to `±1`, both trained with
/// the clipped straight-through estimator.
pub struct BinaryConv2d {
    weight: Var, // [cout, cin·k²] full-precision master copy
    c_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    binarize_input: bool,
}

impl BinaryConv2d {
    /// Creates a binary convolution. `binarize_input = false` gives the
    /// BinaryConnect variant (binary weights, real activations).
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        rng: &mut R,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        binarize_input: bool,
    ) -> Self {
        let fan_in = c_in * kernel * kernel;
        let weight = Var::parameter(pecan_tensor::he_normal(rng, &[c_out, fan_in], fan_in));
        Self { weight, c_in, c_out, kernel, stride, padding, binarize_input }
    }

    /// The full-precision master weights.
    pub fn weight(&self) -> &Var {
        &self.weight
    }
}

impl Layer for BinaryConv2d {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        let dims = input.value().dims().to_vec();
        if dims.len() != 4 || dims[1] != self.c_in {
            return Err(ShapeError::new(format!(
                "BinaryConv2d({}, {}) got input {:?}",
                self.c_in, self.c_out, dims
            )));
        }
        let geom = Conv2dGeometry::new(
            self.c_in,
            dims[2],
            dims[3],
            self.kernel,
            self.stride,
            self.padding,
        )?;
        let xcol = input.im2col_batch(&geom)?;
        let xcol = if self.binarize_input { binarize_sign(&xcol)? } else { xcol };
        let wb = binarize_rows(&self.weight)?;
        let y2d = wb.matmul(&xcol)?;
        y2d.cols_to_nchw(dims[0], geom.h_out(), geom.w_out())
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone()]
    }

    fn name(&self) -> &'static str {
        "BinaryConv2d"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binarized_weights_take_two_values_per_row() {
        let w = Var::parameter(Tensor::from_vec(vec![0.5, -1.5, 2.0, -1.0], &[1, 4]).unwrap());
        let wb = binarize_rows(&w).unwrap();
        let alpha = (0.5 + 1.5 + 2.0 + 1.0) / 4.0;
        assert_eq!(wb.value().data(), &[alpha, -alpha, alpha, -alpha]);
    }

    #[test]
    fn ste_clips_gradient_outside_unit_interval() {
        let w = Var::parameter(Tensor::from_vec(vec![0.5, -3.0], &[1, 2]).unwrap());
        let wb = binarize_sign(&w).unwrap();
        wb.sum_all().backward();
        let g = w.grad().unwrap();
        assert_eq!(g.data(), &[1.0, 0.0]); // |−3| > 1 → clipped
    }

    #[test]
    fn binary_conv_forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = BinaryConv2d::new(&mut rng, 2, 3, 3, 1, 1, true);
        let x = Var::constant(pecan_tensor::uniform(&mut rng, &[1, 2, 4, 4], -1.0, 1.0));
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.value().dims(), &[1, 3, 4, 4]);
        assert_eq!(layer.parameters().len(), 1);
    }

    #[test]
    fn binary_conv_trains_through_ste() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = BinaryConv2d::new(&mut rng, 1, 2, 3, 1, 0, false);
        let x = Var::constant(pecan_tensor::uniform(&mut rng, &[1, 1, 4, 4], -1.0, 1.0));
        let y = layer.forward(&x, true).unwrap();
        y.mul(&y).unwrap().sum_all().backward();
        let g = layer.weight().grad().unwrap();
        assert!(g.data().iter().any(|&v| v.abs() > 0.0));
    }
}

//! Comparison baselines for the PECAN evaluation.
//!
//! * [`AdderConv2d`] — AdderNet's L1-distance "convolution" (Chen et al.,
//!   CVPR 2020): filtering as template matching by negative L1 distance,
//!   with the paper's full-precision weight gradient and HardTanh input
//!   gradient. Multiplier-free in the filter itself, but — as PECAN's §4.3
//!   notes — it needs twice the additions of a CNN (`2·cin·k²·cout·HW`)
//!   and cannot fold its required batch normalisation away.
//! * [`BinaryConv2d`] — an XNOR-Net-style convolution with sign-binarized
//!   weights/activations and per-filter scaling, trained with the clipped
//!   straight-through estimator. Represents the BNN family Tables 3/4
//!   reference (XNOR-Net, IR-Net, ...).
//! * [`addernet_ops`] / [`binary_conv_ops`] — op-count models feeding the
//!   Table 5 comparison.
//!
//! # Example
//!
//! ```
//! use pecan_baselines::{addernet_ops, ConvShape};
//!
//! // VGG-Small has 0.61G baseline MACs → AdderNet needs 1.22G additions.
//! let shape = ConvShape::new(512, 512, 3, 8, 8);
//! let ops = addernet_ops(&shape);
//! assert_eq!(ops.muls, 0);
//! assert_eq!(ops.adds, 2 * 512 * 9 * 512 * 64);
//! ```

#![forbid(unsafe_code)]

mod adder;
mod binary;
mod ops;

pub use adder::AdderConv2d;
pub use binary::BinaryConv2d;
pub use ops::{addernet_ops, binary_conv_ops, ConvShape};

use pecan_autograd::{BackwardOp, Var};
use pecan_nn::Layer;
use pecan_tensor::{Conv2dGeometry, ShapeError, Tensor};
use rand::Rng;
use std::any::Any;

/// AdderNet similarity scores: `Y[f, i] = −Σ_k |X[k, i] − F[f, k]|`.
///
/// Backward rules follow the AdderNet paper: the weight gradient uses the
/// *full-precision* difference `X − F` (not its sign) and the input
/// gradient uses the HardTanh-clipped difference `clip(F − X, −1, 1)`.
struct AdderScoresOp {
    xcol: Tensor,   // [rows, cols]
    weight: Tensor, // [cout, rows]
}

impl BackwardOp for AdderScoresOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let (rows, cols) = (self.xcol.dims()[0], self.xcol.dims()[1]);
        let cout = self.weight.dims()[0];
        let mut dx = Tensor::zeros(&[rows, cols]);
        let mut dw = Tensor::zeros(&[cout, rows]);
        for f in 0..cout {
            for i in 0..cols {
                let g = grad_out.get2(f, i);
                if g == 0.0 {
                    continue;
                }
                for k in 0..rows {
                    let diff = self.xcol.get2(k, i) - self.weight.get2(f, k);
                    // d(−|x−w|)/dw = sgn(x−w) → AdderNet replaces with (x−w)
                    dw.set2(f, k, dw.get2(f, k) + g * diff);
                    // d(−|x−w|)/dx = −sgn(x−w) → clipped to HardTanh(w−x)
                    let clipped = (-diff).clamp(-1.0, 1.0);
                    dx.set2(k, i, dx.get2(k, i) + g * clipped);
                }
            }
        }
        vec![Some(dw), Some(dx)]
    }
    fn name(&self) -> &'static str {
        "adder_scores"
    }
}

fn adder_scores(weight: &Var, xcol: &Var) -> Result<Var, ShapeError> {
    let w = weight.to_tensor();
    let x = xcol.to_tensor();
    w.shape().expect_rank(2)?;
    x.shape().expect_rank(2)?;
    if w.dims()[1] != x.dims()[0] {
        return Err(ShapeError::new(format!(
            "adder conv: weight {:?} vs features {:?}",
            w.dims(),
            x.dims()
        )));
    }
    let (cout, rows) = (w.dims()[0], w.dims()[1]);
    let cols = x.dims()[1];
    let mut value = Tensor::zeros(&[cout, cols]);
    for f in 0..cout {
        let wrow = w.row(f);
        for i in 0..cols {
            let mut dist = 0.0;
            for (k, &wv) in wrow.iter().enumerate().take(rows) {
                dist += (x.get2(k, i) - wv).abs();
            }
            value.set2(f, i, -dist);
        }
    }
    Ok(Var::from_op(
        value,
        vec![weight.clone(), xcol.clone()],
        Box::new(AdderScoresOp { xcol: x, weight: w }),
    ))
}

/// AdderNet convolution layer: im2col, then L1 template matching instead of
/// inner products. Downstream batch normalisation (kept separate, as in
/// AdderNet) restores signed, scaled pre-activations.
pub struct AdderConv2d {
    weight: Var, // [cout, cin·k²]
    c_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl AdderConv2d {
    /// Creates an AdderNet convolution with He-initialised templates.
    pub fn new<R: Rng>(
        rng: &mut R,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let fan_in = c_in * kernel * kernel;
        let weight = Var::parameter(pecan_tensor::he_normal(rng, &[c_out, fan_in], fan_in));
        Self { weight, c_in, c_out, kernel, stride, padding }
    }

    /// The template matrix `[cout, cin·k²]`.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// `(c_in, c_out, kernel, stride, padding)`.
    pub fn config(&self) -> (usize, usize, usize, usize, usize) {
        (self.c_in, self.c_out, self.kernel, self.stride, self.padding)
    }
}

impl Layer for AdderConv2d {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        let dims = input.value().dims().to_vec();
        if dims.len() != 4 || dims[1] != self.c_in {
            return Err(ShapeError::new(format!(
                "AdderConv2d({}, {}) got input {:?}",
                self.c_in, self.c_out, dims
            )));
        }
        let geom = Conv2dGeometry::new(
            self.c_in,
            dims[2],
            dims[3],
            self.kernel,
            self.stride,
            self.padding,
        )?;
        let xcol = input.im2col_batch(&geom)?;
        let scores = adder_scores(&self.weight, &xcol)?;
        scores.cols_to_nchw(dims[0], geom.h_out(), geom.w_out())
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone()]
    }

    fn name(&self) -> &'static str {
        "AdderConv2d"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_template_scores_zero() {
        // a filter equal to the patch scores 0 (the best possible)
        let w = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap());
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]).unwrap());
        let s = adder_scores(&w, &x).unwrap();
        assert_eq!(s.value().data(), &[0.0]);
    }

    #[test]
    fn scores_are_negative_l1_distances() {
        let w = Var::parameter(Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).unwrap());
        let x = Var::constant(Tensor::from_vec(vec![3.0, -4.0], &[2, 1]).unwrap());
        let s = adder_scores(&w, &x).unwrap();
        assert_eq!(s.value().data(), &[-7.0]);
    }

    #[test]
    fn weight_gradient_is_full_precision_difference() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap());
        let x = Var::constant(Tensor::from_vec(vec![1.5, 0.5], &[2, 1]).unwrap());
        let s = adder_scores(&w, &x).unwrap();
        s.sum_all().backward();
        // dW = 1 · (x − w) = [0.5, 2.5]
        let g = w.grad().unwrap();
        assert!((g.data()[0] - 0.5).abs() < 1e-6);
        assert!((g.data()[1] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn input_gradient_is_hardtanh_clipped() {
        let w = Var::constant(Tensor::from_vec(vec![5.0, 0.2], &[1, 2]).unwrap());
        let x = Var::parameter(Tensor::from_vec(vec![0.0, 0.0], &[2, 1]).unwrap());
        let s = adder_scores(&w, &x).unwrap();
        s.sum_all().backward();
        let g = x.grad().unwrap();
        // w−x = 5 → clipped to 1; w−x = 0.2 stays 0.2
        assert!((g.data()[0] - 1.0).abs() < 1e-6);
        assert!((g.data()[1] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn layer_forward_shape_and_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = AdderConv2d::new(&mut rng, 2, 4, 3, 1, 1);
        let x = Var::constant(Tensor::zeros(&[2, 2, 5, 5]));
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.value().dims(), &[2, 4, 5, 5]);
        assert_eq!(layer.parameters().len(), 1);
        assert!(layer
            .forward(&Var::constant(Tensor::zeros(&[1, 3, 5, 5])), true)
            .is_err());
    }

    #[test]
    fn adder_layer_output_is_nonpositive() {
        // scores are negative distances, so every output ≤ 0
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = AdderConv2d::new(&mut rng, 1, 2, 3, 1, 0);
        let x = Var::constant(pecan_tensor::uniform(&mut rng, &[1, 1, 5, 5], -1.0, 1.0));
        let y = layer.forward(&x, true).unwrap();
        assert!(y.value().data().iter().all(|&v| v <= 0.0));
    }
}

//! Property tests pinning the packed/threaded GEMM's core contract: for
//! every shape (ragged, empty, transposed) and every thread count, the
//! output is **bit-for-bit identical** to the retained scalar oracle.
//!
//! This is the property that makes the packed kernel a drop-in for
//! training: swapping kernels or changing `PECAN_NUM_THREADS` can never
//! move a loss curve, an accuracy threshold, or a serialized LUT by one
//! ULP. Exactness holds because both paths accumulate each output element
//! in strictly increasing depth order (see `gemm::kernel` docs).

use pecan_tensor::gemm::{gemm, gemm_with_threads, scalar};
use pecan_tensor::Tensor;
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Random ragged shape; includes empty dims (`0`) and sizes straddling the
/// MR/NR tile widths (4/8).
fn shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..24, 0usize..24, 0usize..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_is_bit_identical_to_scalar_oracle(
        (m, k, n) in shape(),
        trans_a in proptest::bool::ANY,
        trans_b in proptest::bool::ANY,
        threads in 1usize..5,
        seed in 0u64..1_000,
    ) {
        // Derive operand data deterministically from the shapes + seed so
        // the slice lengths always match the (trans-dependent) layouts.
        let fill = |len: usize, salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed ^ salt;
                    ((h % 4096) as f32 - 2048.0) / 256.0
                })
                .collect()
        };
        let a = fill(m * k, 0xA);
        let b = fill(k * n, 0xB);
        let mut fast = vec![f32::NAN; m * n];
        let mut slow = vec![f32::NAN; m * n];
        gemm_with_threads(&a, trans_a, &b, trans_b, &mut fast, m, k, n, threads);
        scalar::gemm(&a, trans_a, &b, trans_b, &mut slow, m, k, n);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn thread_count_does_not_change_output_bits(
        (m, k, n) in (1usize..40, 1usize..40, 1usize..40),
        data in proptest::num::u64::ANY,
    ) {
        let fill = |len: usize, salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ data ^ salt;
                    ((h % 2048) as f32 - 1024.0) / 128.0
                })
                .collect()
        };
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut reference = vec![f32::NAN; m * n];
        gemm_with_threads(&a, false, &b, false, &mut reference, m, k, n, 1);
        for threads in [2usize, 3, 8] {
            let mut c = vec![f32::NAN; m * n];
            gemm_with_threads(&a, false, &b, false, &mut c, m, k, n, threads);
            prop_assert_eq!(bits(&c), bits(&reference));
        }
    }

    #[test]
    fn tensor_matmul_family_matches_oracle(
        av in proptest::collection::vec(-6.0f32..6.0, 9 * 7),
        bv in proptest::collection::vec(-6.0f32..6.0, 7 * 11),
    ) {
        // The public Tensor entry points route through gemm::gemm; pin all
        // three variants against the oracle at tile-ragged sizes.
        let a = Tensor::from_vec(av.clone(), &[9, 7]).unwrap();
        let b = Tensor::from_vec(bv.clone(), &[7, 11]).unwrap();
        let mut want = vec![f32::NAN; 9 * 11];
        scalar::gemm(&av, false, &bv, false, &mut want, 9, 7, 11);
        prop_assert_eq!(bits(a.matmul(&b).unwrap().data()), bits(&want));

        let a_t = a.transpose2().unwrap(); // [7, 9]
        prop_assert_eq!(bits(a_t.matmul_tn(&b).unwrap().data()), bits(&want));

        let b_t = b.transpose2().unwrap(); // [11, 7]
        prop_assert_eq!(bits(a.matmul_nt(&b_t).unwrap().data()), bits(&want));
    }
}

/// Deterministic (non-prop) coverage of shapes that cross every blocking
/// boundary at once: multiple MC row blocks, multiple KC depth blocks and a
/// ragged tail in each dimension, threaded.
#[test]
fn large_multi_block_shape_is_bit_exact_and_thread_invariant() {
    let (m, k, n) = (193, 517, 131); // MC = 64, KC = 256, NR = 8 all straddled
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 113) as f32 - 56.0) * 0.043).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 59 % 127) as f32 - 63.0) * 0.037).collect();
    let mut want = vec![f32::NAN; m * n];
    scalar::gemm(&a, false, &b, false, &mut want, m, k, n);
    for threads in [1usize, 2, 4, 5] {
        let mut got = vec![f32::NAN; m * n];
        gemm_with_threads(&a, false, &b, false, &mut got, m, k, n, threads);
        assert_eq!(bits(&got), bits(&want), "threads={threads}");
    }
    // The auto entry (env-configured threads) must agree too.
    let mut auto = vec![f32::NAN; m * n];
    gemm(&a, false, &b, false, &mut auto, m, k, n);
    assert_eq!(bits(&auto), bits(&want), "auto-dispatch entry");
}

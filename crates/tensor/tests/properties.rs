//! Property-based tests for the tensor substrate: algebraic laws that the
//! rest of the workspace silently relies on.

use pecan_tensor::{col2im, im2col, Conv2dGeometry, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).expect("sized by construction"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(4, 5),
        b in tensor_strategy(5, 3),
        c in tensor_strategy(5, 3),
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(3, 6),
        b in tensor_strategy(6, 4),
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = a.matmul(&b).unwrap().transpose2().unwrap();
        let rhs = b
            .transpose2()
            .unwrap()
            .matmul(&a.transpose2().unwrap())
            .unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn tn_and_nt_agree_with_plain_matmul(
        a in tensor_strategy(5, 4),
        b in tensor_strategy(5, 6),
    ) {
        let tn = a.matmul_tn(&b).unwrap();
        let plain = a.transpose2().unwrap().matmul(&b).unwrap();
        prop_assert!(tn.max_abs_diff(&plain) < 1e-3);

        let nt = plain.matmul_nt(&b).unwrap(); // [4,6]·[5,6]ᵀ = [4,5]
        let plain2 = plain.matmul(&b.transpose2().unwrap()).unwrap();
        prop_assert!(nt.max_abs_diff(&plain2) < 1e-3);
    }

    #[test]
    fn softmax_columns_sum_to_one(t in tensor_strategy(7, 5), tau in 0.1f32..4.0) {
        let s = t.softmax_columns(tau).unwrap();
        for j in 0..5 {
            let z: f32 = (0..7).map(|i| s.get2(i, j)).sum();
            prop_assert!((z - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn l1_distance_is_a_metric(
        a in tensor_strategy(3, 3),
        b in tensor_strategy(3, 3),
        c in tensor_strategy(3, 3),
    ) {
        let ab = a.l1_distance(&b).unwrap();
        let ba = b.l1_distance(&a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-3); // symmetry
        prop_assert!(a.l1_distance(&a).unwrap() < 1e-6); // identity
        let ac = a.l1_distance(&c).unwrap();
        let cb = c.l1_distance(&b).unwrap();
        prop_assert!(ab <= ac + cb + 1e-3); // triangle inequality
    }

    #[test]
    fn im2col_col2im_adjoint(
        xs in proptest::collection::vec(-5.0f32..5.0, 2 * 5 * 5),
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        let geom = Conv2dGeometry::new(2, 5, 5, 3, stride, padding).unwrap();
        let x = Tensor::from_vec(xs, &[2, 5, 5]).unwrap();
        let cols = im2col(&x, &geom).unwrap();
        // ⟨A x, A x⟩ = ⟨x, Aᵀ A x⟩ with Aᵀ = col2im
        let back = col2im(&cols, &geom).unwrap();
        let lhs: f32 = cols.data().iter().map(|v| v * v).sum();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()));
    }

    #[test]
    fn argmax_per_column_matches_scan(t in tensor_strategy(6, 4)) {
        let am = t.argmax_per_column().unwrap();
        for j in 0..4 {
            let col: Vec<f32> = (0..6).map(|i| t.get2(i, j)).collect();
            let best = col
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0;
            prop_assert_eq!(col[am[j]], col[best]);
        }
    }
}

use crate::{ShapeError, Tensor};

/// Geometry of a 2-D convolution: channel count, kernel, stride, padding and
/// the input/output spatial extents.
///
/// PECAN operates entirely on the im2col view of convolution (Fig. 1(b) of
/// the paper): each filter window is stretched into a column of the feature
/// matrix `X ∈ R^{cin·k² × Hout·Wout}`, whose sub-columns are then quantized
/// onto prototypes.
///
/// # Example
///
/// ```
/// use pecan_tensor::Conv2dGeometry;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let g = Conv2dGeometry::new(3, 32, 32, 3, 1, 1)?;
/// assert_eq!((g.h_out(), g.w_out()), (32, 32));
/// assert_eq!(g.patch_len(), 27); // cin·k² = 3·9
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    c_in: usize,
    h_in: usize,
    w_in: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    h_out: usize,
    w_out: usize,
}

impl Conv2dGeometry {
    /// Builds a convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the kernel does not fit into the padded
    /// input, or any extent is zero.
    pub fn new(
        c_in: usize,
        h_in: usize,
        w_in: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, ShapeError> {
        if c_in == 0 || h_in == 0 || w_in == 0 || kernel == 0 || stride == 0 {
            return Err(ShapeError::new("conv geometry extents must be non-zero"));
        }
        let h_pad = h_in + 2 * padding;
        let w_pad = w_in + 2 * padding;
        if kernel > h_pad || kernel > w_pad {
            return Err(ShapeError::new(format!(
                "kernel {kernel} larger than padded input {h_pad}×{w_pad}"
            )));
        }
        let h_out = (h_pad - kernel) / stride + 1;
        let w_out = (w_pad - kernel) / stride + 1;
        Ok(Self { c_in, h_in, w_in, kernel, stride, padding, h_out, w_out })
    }

    /// Input channel count `cin`.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Input height.
    pub fn h_in(&self) -> usize {
        self.h_in
    }

    /// Input width.
    pub fn w_in(&self) -> usize {
        self.w_in
    }

    /// Square kernel size `k`.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on every border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output height `Hout`.
    pub fn h_out(&self) -> usize {
        self.h_out
    }

    /// Output width `Wout`.
    pub fn w_out(&self) -> usize {
        self.w_out
    }

    /// Rows of the im2col matrix: `cin·k²`.
    pub fn patch_len(&self) -> usize {
        self.c_in * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix for a single image: `Hout·Wout`.
    pub fn n_patches(&self) -> usize {
        self.h_out * self.w_out
    }
}

/// Unfolds one `[cin, Hin, Win]` image into the `[cin·k², Hout·Wout]` column
/// matrix `X` of Fig. 1(b).
///
/// Row ordering is `(c, ky, kx)` slow-to-fast, so the `d = k²` sub-vectors of
/// a column are per-channel patches — exactly the "prototype the size of a
/// vectorized kernel" layout the paper assigns codebooks to.
///
/// # Errors
///
/// Returns [`ShapeError`] when `image` is not `[cin, Hin, Win]` for the given
/// geometry.
///
/// # Example
///
/// ```
/// use pecan_tensor::{im2col, Conv2dGeometry, Tensor};
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let g = Conv2dGeometry::new(1, 3, 3, 2, 1, 0)?;
/// let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3])?;
/// let cols = im2col(&img, &g)?;
/// assert_eq!(cols.dims(), &[4, 4]);
/// // first column = top-left 2×2 window
/// assert_eq!(
///     (0..4).map(|r| cols.get2(r, 0)).collect::<Vec<_>>(),
///     vec![1.0, 2.0, 4.0, 5.0]
/// );
/// # Ok(())
/// # }
/// ```
pub fn im2col(image: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, ShapeError> {
    let expect = [geom.c_in, geom.h_in, geom.w_in];
    if image.dims() != expect {
        return Err(ShapeError::new(format!(
            "im2col expects image {:?}, got {:?}",
            expect,
            image.dims()
        )));
    }
    let k = geom.kernel;
    let cols = geom.n_patches();
    let mut out = Tensor::zeros(&[geom.patch_len(), cols]);
    let src = image.data();
    let (h_in, w_in) = (geom.h_in as isize, geom.w_in as isize);
    let dst = out.data_mut();
    for c in 0..geom.c_in {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let drow = &mut dst[row * cols..(row + 1) * cols];
                let mut col = 0;
                for oy in 0..geom.h_out {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    for ox in 0..geom.w_out {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        drow[col] = if iy >= 0 && iy < h_in && ix >= 0 && ix < w_in {
                            src[(c * geom.h_in + iy as usize) * geom.w_in + ix as usize]
                        } else {
                            0.0
                        };
                        col += 1;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Folds a `[cin·k², Hout·Wout]` column-matrix gradient back into a
/// `[cin, Hin, Win]` image gradient (scatter-add inverse of [`im2col`]).
///
/// # Errors
///
/// Returns [`ShapeError`] when `cols` does not match the geometry.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, ShapeError> {
    let expect = [geom.patch_len(), geom.n_patches()];
    if cols.dims() != expect {
        return Err(ShapeError::new(format!(
            "col2im expects columns {:?}, got {:?}",
            expect,
            cols.dims()
        )));
    }
    let k = geom.kernel;
    let n_cols = geom.n_patches();
    let mut out = Tensor::zeros(&[geom.c_in, geom.h_in, geom.w_in]);
    let dst = out.data_mut();
    let src = cols.data();
    let (h_in, w_in) = (geom.h_in as isize, geom.w_in as isize);
    for c in 0..geom.c_in {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let srow = &src[row * n_cols..(row + 1) * n_cols];
                let mut col = 0;
                for oy in 0..geom.h_out {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    for ox in 0..geom.w_out {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if iy >= 0 && iy < h_in && ix >= 0 && ix < w_in {
                            dst[(c * geom.h_in + iy as usize) * geom.w_in + ix as usize] +=
                                srow[col];
                        }
                        col += 1;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_computes_output_extent() {
        let g = Conv2dGeometry::new(8, 13, 13, 3, 1, 0).unwrap();
        assert_eq!((g.h_out(), g.w_out()), (11, 11));
        let g = Conv2dGeometry::new(16, 32, 32, 3, 2, 1).unwrap();
        assert_eq!((g.h_out(), g.w_out()), (16, 16));
    }

    #[test]
    fn geometry_rejects_oversized_kernel() {
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 1, 0).is_err());
        assert!(Conv2dGeometry::new(0, 2, 2, 1, 1, 0).is_err());
    }

    #[test]
    fn im2col_padded_edges_are_zero() {
        let g = Conv2dGeometry::new(1, 2, 2, 3, 1, 1).unwrap();
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // top-left output: kernel centered so its first row/col hit padding
        assert_eq!(cols.get2(0, 0), 0.0);
        assert_eq!(cols.get2(4, 0), 1.0); // center tap = pixel (0,0)
    }

    #[test]
    fn conv_via_im2col_matches_direct_convolution() {
        // direct 2-channel, 2-filter, 3×3 conv vs im2col+matmul
        let g = Conv2dGeometry::new(2, 5, 5, 3, 1, 0).unwrap();
        let img = Tensor::from_vec(
            (0..50).map(|i| (i as f32 * 0.17).sin()).collect(),
            &[2, 5, 5],
        )
        .unwrap();
        let filt = Tensor::from_vec(
            (0..36).map(|i| (i as f32 * 0.29).cos()).collect(),
            &[2, 18],
        )
        .unwrap();
        let cols = im2col(&img, &g).unwrap();
        let out = filt.matmul(&cols).unwrap(); // [2, 9]

        for f in 0..2 {
            for oy in 0..3 {
                for ox in 0..3 {
                    let mut acc = 0.0;
                    for c in 0..2 {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let w = filt.get2(f, (c * 3 + ky) * 3 + kx);
                                let v = img.at(&[c, oy + ky, ox + kx]);
                                acc += w * v;
                            }
                        }
                    }
                    let got = out.get2(f, oy * 3 + ox);
                    assert!((got - acc).abs() < 1e-4, "mismatch at {f},{oy},{ox}");
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        // needed for correct conv backprop.
        let g = Conv2dGeometry::new(2, 6, 6, 3, 2, 1).unwrap();
        let x = Tensor::from_vec(
            (0..72).map(|i| ((i * 37 % 19) as f32) - 9.0).collect(),
            &[2, 6, 6],
        )
        .unwrap();
        let y = Tensor::from_vec(
            (0..g.patch_len() * g.n_patches())
                .map(|i| ((i * 53 % 23) as f32) - 11.0)
                .collect(),
            &[g.patch_len(), g.n_patches()],
        )
        .unwrap();
        let ax = im2col(&x, &g).unwrap();
        let aty = col2im(&y, &g).unwrap();
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn im2col_rejects_wrong_image_shape() {
        let g = Conv2dGeometry::new(1, 4, 4, 3, 1, 0).unwrap();
        assert!(im2col(&Tensor::zeros(&[2, 4, 4]), &g).is_err());
        assert!(col2im(&Tensor::zeros(&[3, 3]), &g).is_err());
    }
}

use crate::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Samples a tensor with entries drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = pecan_tensor::uniform(&mut rng, &[4, 4], -1.0, 1.0);
/// assert!(t.data().iter().all(|v| (-1.0..1.0).contains(v)));
/// ```
pub fn uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform bounds must satisfy lo < hi");
    let dist = Uniform::new(lo, hi);
    let shape = crate::Shape::new(dims);
    let data = (0..shape.len()).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, dims).expect("length matches shape by construction")
}

/// He (Kaiming) normal initialisation: zero-mean Gaussian with standard
/// deviation `sqrt(2 / fan_in)` — the standard choice for layers followed by
/// ReLU, used by every convolution in the model zoo.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn he_normal<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "he_normal fan_in must be non-zero");
    let std = (2.0 / fan_in as f32).sqrt();
    let shape = crate::Shape::new(dims);
    let data = (0..shape.len()).map(|_| gaussian(rng) * std).collect();
    Tensor::from_vec(data, dims).expect("length matches shape by construction")
}

/// Xavier/Glorot uniform initialisation over
/// `[-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))]`, used for the
/// fully-connected classifier heads.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "xavier fans must not both be zero");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, dims, -bound, bound)
}

/// Standard-normal sample via Box–Muller (keeps us off extra deps for
/// `rand_distr`).
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
        assert!(t.mean().abs() < 0.05);
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let fan_in = 128;
        let t = he_normal(&mut rng, &[50_000], fan_in);
        let mean = t.mean();
        let var = t.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>()
            / t.len() as f32;
        let expect = 2.0 / fan_in as f32;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var - expect).abs() / expect < 0.1, "var {var} vs {expect}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, &[4096], 64, 64);
        let bound = (6.0 / 128.0_f32).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(9), &[16], 0.0, 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(9), &[16], 0.0, 1.0);
        assert_eq!(a, b);
    }
}

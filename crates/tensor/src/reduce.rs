use crate::{ShapeError, Tensor};

impl Tensor {
    /// Sum of all elements.
    ///
    /// # Example
    ///
    /// ```
    /// use pecan_tensor::Tensor;
    /// assert_eq!(Tensor::ones(&[2, 3]).sum(), 6.0);
    /// ```
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Largest element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element of a rank-1 tensor (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        let mut best_v = self.data()[0];
        for (i, &v) in self.data().iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Per-column argmax of a rank-2 tensor: for each column `j`, the row
    /// index with the largest value. This is the hard prototype assignment
    /// `k(j)ᵢ = argmaxₘ −‖Xᵢ − Cₘ‖₁` shape used by PECAN-D (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank 2 or has zero rows.
    pub fn argmax_per_column(&self) -> Result<Vec<usize>, ShapeError> {
        self.shape().expect_rank(2)?;
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if rows == 0 {
            return Err(ShapeError::new("argmax over zero rows"));
        }
        let mut out = vec![0usize; cols];
        for j in 0..cols {
            let mut best = 0;
            let mut best_v = self.get2(0, j);
            for i in 1..rows {
                let v = self.get2(i, j);
                if v > best_v {
                    best = i;
                    best_v = v;
                }
            }
            out[j] = best;
        }
        Ok(out)
    }

    /// Column-wise in-place softmax of a rank-2 tensor with temperature
    /// `tau`: each column becomes `softmax(col / tau)`.
    ///
    /// Used for the PECAN-A attention scores (Eq. 2) and the PECAN-D
    /// relaxed assignment (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank 2 or `tau <= 0`.
    pub fn softmax_columns(&self, tau: f32) -> Result<Tensor, ShapeError> {
        self.shape().expect_rank(2)?;
        if tau <= 0.0 || tau.is_nan() {
            return Err(ShapeError::new(format!("softmax temperature must be > 0, got {tau}")));
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = self.clone();
        for j in 0..cols {
            let mut mx = f32::NEG_INFINITY;
            for i in 0..rows {
                mx = mx.max(self.get2(i, j) / tau);
            }
            let mut z = 0.0;
            for i in 0..rows {
                let e = ((self.get2(i, j) / tau) - mx).exp();
                out.set2(i, j, e);
                z += e;
            }
            for i in 0..rows {
                let v = out.get2(i, j) / z;
                out.set2(i, j, v);
            }
        }
        Ok(out)
    }

    /// Sum along rows of a rank-2 tensor, producing `[rows]` (one value per
    /// row).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Result<Tensor, ShapeError> {
        self.shape().expect_rank(2)?;
        let (rows, _cols) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[rows]);
        for r in 0..rows {
            out.data_mut()[r] = self.row(r).iter().sum();
        }
        Ok(out)
    }

    /// Sum along columns of a rank-2 tensor, producing `[cols]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank 2.
    pub fn sum_columns(&self) -> Result<Tensor, ShapeError> {
        self.shape().expect_rank(2)?;
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[cols]);
        for r in 0..rows {
            for (o, &v) in out.data_mut().iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        let _ = rows;
        Ok(out)
    }

    /// Sum of `|a - b|` over all elements — the L1 template-matching metric
    /// of PECAN-D and AdderNet.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn l1_distance(&self, other: &Tensor) -> Result<f32, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "l1 distance on mismatched shapes {:?} vs {:?}",
                self.dims(),
                other.dims()
            )));
        }
        Ok(self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| (a - b).abs())
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn argmax_per_column_picks_rows() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 9.0, 2.0, 4.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_per_column().unwrap(), vec![1, 0, 0]);
    }

    #[test]
    fn softmax_columns_are_distributions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 10.0], &[3, 2]).unwrap();
        let s = t.softmax_columns(1.0).unwrap();
        for j in 0..2 {
            let z: f32 = (0..3).map(|i| s.get2(i, j)).sum();
            assert!((z - 1.0).abs() < 1e-5);
            for i in 0..3 {
                assert!(s.get2(i, j) > 0.0);
            }
        }
        // low temperature sharpens towards the argmax
        let sharp = t.softmax_columns(0.05).unwrap();
        assert!(sharp.get2(2, 1) > 0.999);
    }

    #[test]
    fn softmax_rejects_bad_temperature() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.softmax_columns(0.0).is_err());
        assert!(t.softmax_columns(-1.0).is_err());
        assert!(t.softmax_columns(f32::NAN).is_err());
    }

    #[test]
    fn row_and_column_sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_rows().unwrap().data(), &[6.0, 15.0]);
        assert_eq!(t.sum_columns().unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn l1_distance_matches_manual() {
        let a = Tensor::from_slice(&[1.0, -1.0, 2.0]);
        let b = Tensor::from_slice(&[0.0, 1.0, 2.0]);
        assert_eq!(a.l1_distance(&b).unwrap(), 3.0);
        assert!(a.l1_distance(&Tensor::zeros(&[2])).is_err());
    }
}

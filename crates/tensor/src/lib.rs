//! Dense `f32` tensor substrate for the PECAN reproduction.
//!
//! This crate provides the minimal-but-complete numeric foundation that the
//! rest of the workspace builds on: a row-major n-dimensional [`Tensor`],
//! cache-friendly [matrix multiplication](Tensor::matmul), the
//! [`im2col`]/[`col2im`] transforms that turn convolution into matrix
//! products (Fig. 1(b) of the paper), elementwise and reduction kernels, and
//! random initialisers.
//!
//! Everything is deliberately `f32` and CPU-only: the PECAN paper's point is
//! that inference reduces to similarity search plus table lookup, so the
//! substrate needs to be *correct and inspectable* more than it needs to be
//! fast. Training is the exception — its dense products run on the packed,
//! cache-blocked, multi-threaded [`gemm`] subsystem (lane-panel packing, a
//! register-tile microkernel, a `std::thread::scope` pool controlled by
//! `PECAN_NUM_THREADS`), which stays bit-identical to the retained scalar
//! oracle for every shape and thread count.
//!
//! # Example
//!
//! ```
//! use pecan_tensor::Tensor;
//!
//! # fn main() -> Result<(), pecan_tensor::ShapeError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

mod error;
pub mod gemm;
mod im2col;
mod init;
mod matmul;
mod reduce;
mod shape;
mod tensor;

pub use error::ShapeError;
pub use gemm::{configured_threads, parallel_map};
pub use im2col::{col2im, im2col, Conv2dGeometry};
pub use init::{he_normal, uniform, xavier_uniform};
pub use shape::Shape;
pub use tensor::{F32Source, Tensor};

use crate::{gemm, ShapeError, Tensor};

impl Tensor {
    /// Matrix product `self · rhs` of two rank-2 tensors.
    ///
    /// Runs on the packed, cache-blocked, multi-threaded [`gemm`] subsystem
    /// (worker count from `PECAN_NUM_THREADS`) — this is the kernel the
    /// baseline CNN path, the im2col convolution path and the PECAN
    /// lookup-table construction (`Y(j) = W(j)·C(j)`, Algorithm 1 line 3)
    /// run on. Outputs are bit-identical to the retained scalar oracle
    /// ([`gemm::scalar`]) regardless of thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if either operand is not rank 2 or the inner
    /// dimensions disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use pecan_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), pecan_tensor::ShapeError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// let c = a.matmul(&b)?;
    /// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, ShapeError> {
        self.shape().expect_rank(2)?;
        rhs.shape().expect_rank(2)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(ShapeError::new(format!(
                "matmul inner dimension mismatch: [{m}, {k}] · [{k2}, {n}]"
            )));
        }
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm(self.data(), false, rhs.data(), false, out.data_mut(), m, k, n);
        Ok(out)
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    ///
    /// `self` is `[k, m]`, `rhs` is `[k, n]`, result is `[m, n]`. This is the
    /// access pattern of the PECAN-A attention scores `C(j)ᵀ·X(j)` (Eq. 2)
    /// and of the weight-gradient `Xᵀ` products in backprop.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank or inner-dimension mismatch.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor, ShapeError> {
        self.shape().expect_rank(2)?;
        rhs.shape().expect_rank(2)?;
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(ShapeError::new(format!(
                "matmul_tn inner dimension mismatch: [{k}, {m}]ᵀ · [{k2}, {n}]"
            )));
        }
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm(self.data(), true, rhs.data(), false, out.data_mut(), m, k, n);
        Ok(out)
    }

    /// `self · rhsᵀ` without materialising the transpose.
    ///
    /// `self` is `[m, k]`, `rhs` is `[n, k]`, result is `[m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank or inner-dimension mismatch.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor, ShapeError> {
        self.shape().expect_rank(2)?;
        rhs.shape().expect_rank(2)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        if k != k2 {
            return Err(ShapeError::new(format!(
                "matmul_nt inner dimension mismatch: [{m}, {k}] · [{n}, {k2}]ᵀ"
            )));
        }
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm(self.data(), false, rhs.data(), true, out.data_mut(), m, k, n);
        Ok(out)
    }

    /// Matrix–vector product of a rank-2 tensor with a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor, ShapeError> {
        self.shape().expect_rank(2)?;
        v.shape().expect_rank(1)?;
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if v.len() != k {
            return Err(ShapeError::new(format!(
                "matvec dimension mismatch: [{m}, {k}] · [{}]",
                v.len()
            )));
        }
        let mut out = Tensor::zeros(&[m]);
        for i in 0..m {
            let row = &self.data()[i * k..(i + 1) * k];
            out.data_mut()[i] = row
                .iter()
                .zip(v.data().iter())
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a.get2(i, l) * b.get2(l, j);
                }
                out.set2(i, j, acc);
            }
        }
        out
    }

    fn ramp(dims: &[usize]) -> Tensor {
        let len: usize = dims.iter().product();
        Tensor::from_vec((0..len).map(|i| (i as f32) * 0.31 - 3.0).collect(), dims).unwrap()
    }

    #[test]
    fn matmul_matches_naive() {
        let a = ramp(&[7, 5]);
        let b = ramp(&[5, 9]);
        let fast = a.matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = ramp(&[4, 4]);
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = ramp(&[6, 4]);
        let b = ramp(&[6, 5]);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose2().unwrap().matmul(&b).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = ramp(&[6, 4]);
        let b = ramp(&[5, 4]);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2().unwrap()).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = ramp(&[3, 4]);
        let v = ramp(&[4]);
        let got = a.matvec(&v).unwrap();
        let expect = a.matmul(&v.reshape(&[4, 1]).unwrap()).unwrap();
        assert!(got.reshape(&[3, 1]).unwrap().max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_tn(&b).is_err());
        assert!(a.matmul_nt(&b).is_err());
        assert!(a.matvec(&Tensor::zeros(&[7])).is_err());
    }
}

use crate::{Shape, ShapeError};
use std::fmt;

/// A dense, row-major, `f32` n-dimensional array.
///
/// `Tensor` is the value type flowing through every PECAN component: images,
/// im2col feature matrices `X`, codebooks `C`, filter matrices `F`, and the
/// precomputed lookup tables `Y(j) = W(j)·C(j)`.
///
/// # Example
///
/// ```
/// use pecan_tensor::Tensor;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get2(1, 2), 6.0);
/// assert_eq!(t.transpose2()?.get2(2, 1), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match the product of
    /// `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::new(format!(
                "buffer of {} elements cannot view as shape {:?} ({} elements)",
                data.len(),
                dims,
                shape.len()
            )));
        }
        Ok(Self { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self { shape, data: vec![value; len] }
    }

    /// Creates a one-filled tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Self { shape: Shape::new(&[values.len()]), data: values.to_vec() }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Axis extents, e.g. `[n, c, h, w]`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Matrix element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or the index is out of
    /// bounds.
    #[inline]
    pub fn get2(&self, row: usize, col: usize) -> f32 {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        self.data[row * cols + col]
    }

    /// Sets matrix element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or the index is out of
    /// bounds.
    #[inline]
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        self.data[row * cols + col] = value;
    }

    /// Borrow of row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable borrow of row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Returns the same buffer viewed under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, ShapeError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Consumes the tensor, returning the same buffer under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    pub fn into_reshape(self, dims: &[usize]) -> Result<Tensor, ShapeError> {
        Tensor::from_vec(self.data, dims)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank 2.
    pub fn transpose2(&self) -> Result<Tensor, ShapeError> {
        self.shape.expect_rank(2)?;
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Elementwise binary operation against a same-shaped tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        mut f: impl FnMut(f32, f32) -> f32,
    ) -> Result<Tensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "elementwise op on mismatched shapes {:?} vs {:?}",
                self.dims(),
                other.dims()
            )));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise map producing a new tensor.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// `self += alpha * other`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "axpy on mismatched shapes {:?} vs {:?}",
                self.dims(),
                other.dims()
            )));
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Largest absolute difference to another tensor; `f32::INFINITY` when
    /// shapes differ. Convenient for approximate-equality assertions.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        if self.shape != other.shape {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{:?} [", self.dims())?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", … {} more", self.data.len() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.get2(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let tt = t.transpose2().unwrap().transpose2().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn mismatched_elementwise_is_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        assert_eq!(a.max_abs_diff(&b), f32::INFINITY);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn row_views() {
        let mut t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
        t.row_mut(0)[2] = 9.0;
        assert_eq!(t.get2(0, 2), 9.0);
    }

    #[test]
    fn debug_preview_is_nonempty() {
        let t = Tensor::zeros(&[4]);
        let s = format!("{t:?}");
        assert!(s.contains("Tensor[4]"));
    }
}

use crate::{Shape, ShapeError};
use std::fmt;
use std::sync::Arc;

/// A read-only provider of a flat `f32` buffer that [`Tensor`]s can view
/// without copying.
///
/// Implementors own some backing storage — a memory-mapped snapshot file,
/// a shared decode buffer — and hand out one stable `&[f32]` view of it.
/// [`Tensor::from_shared`] then carves row-major windows out of that view:
/// the tensor holds an `Arc` to the source, so the backing storage lives
/// exactly as long as any tensor viewing it.
///
/// The returned slice must be stable for the lifetime of the source (same
/// address, same length on every call) — tensors index into it on every
/// element access.
pub trait F32Source: Send + Sync + fmt::Debug + 'static {
    /// The full backing buffer.
    fn f32s(&self) -> &[f32];
}

impl F32Source for Vec<f32> {
    fn f32s(&self) -> &[f32] {
        self
    }
}

/// Where a tensor's elements live: its own heap buffer, or a window into
/// a shared [`F32Source`] (copy-on-write — any mutation materializes an
/// owned buffer first).
#[derive(Clone)]
enum Storage {
    Owned(Vec<f32>),
    Shared {
        owner: Arc<dyn F32Source>,
        start: usize,
        len: usize,
    },
}

/// A dense, row-major, `f32` n-dimensional array.
///
/// `Tensor` is the value type flowing through every PECAN component: images,
/// im2col feature matrices `X`, codebooks `C`, filter matrices `F`, and the
/// precomputed lookup tables `Y(j) = W(j)·C(j)`.
///
/// Storage is either owned (a private `Vec<f32>`) or a **shared view** into
/// an [`F32Source`] created with [`Tensor::from_shared`] — e.g. a window of
/// a memory-mapped model snapshot. Shared tensors are copy-on-write: every
/// read path borrows the source directly, and any mutating method
/// materializes a private copy first, so the two storage modes are
/// indistinguishable through the public API.
///
/// # Example
///
/// ```
/// use pecan_tensor::Tensor;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get2(1, 2), 6.0);
/// assert_eq!(t.transpose2()?.get2(2, 1), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Tensor {
    shape: Shape,
    storage: Storage,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match the product of
    /// `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::new(format!(
                "buffer of {} elements cannot view as shape {:?} ({} elements)",
                data.len(),
                dims,
                shape.len()
            )));
        }
        Ok(Self { shape, storage: Storage::Owned(data) })
    }

    /// Creates a tensor viewing `owner.f32s()[start .. start + product(dims)]`
    /// without copying. The tensor keeps the `Arc`, so the source outlives
    /// every view of it. Mutating methods copy-on-write into an owned
    /// buffer; read paths index the shared slice directly.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the window falls outside the source
    /// buffer.
    pub fn from_shared(
        owner: Arc<dyn F32Source>,
        start: usize,
        dims: &[usize],
    ) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        let len = shape.len();
        let available = owner.f32s().len();
        if start.checked_add(len).map_or(true, |end| end > available) {
            return Err(ShapeError::new(format!(
                "shared window [{start}, {start}+{len}) outside source of {available} elements"
            )));
        }
        Ok(Self { shape, storage: Storage::Shared { owner, start, len } })
    }

    /// Whether the tensor currently views a shared [`F32Source`] rather
    /// than owning its buffer (it flips to owned on first mutation).
    pub fn is_shared(&self) -> bool {
        matches!(self.storage, Storage::Shared { .. })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self { shape, storage: Storage::Owned(vec![0.0; len]) }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self { shape, storage: Storage::Owned(vec![value; len]) }
    }

    /// Creates a one-filled tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.buf_mut()[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Self {
            shape: Shape::new(&[values.len()]),
            storage: Storage::Owned(values.to_vec()),
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Axis extents, e.g. `[n, c, h, w]`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.shape.len() == 0
    }

    /// Read-only view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        match &self.storage {
            Storage::Owned(v) => v,
            Storage::Shared { owner, start, len } => &owner.f32s()[*start..start + len],
        }
    }

    /// Mutable access to the owned buffer, materializing a private copy of
    /// shared storage first (copy-on-write).
    fn buf_mut(&mut self) -> &mut Vec<f32> {
        if let Storage::Shared { owner, start, len } = &self.storage {
            let copied = owner.f32s()[*start..start + len].to_vec();
            self.storage = Storage::Owned(copied);
        }
        match &mut self.storage {
            Storage::Owned(v) => v,
            Storage::Shared { .. } => unreachable!("materialized above"),
        }
    }

    /// Mutable view of the flat row-major buffer. On a shared tensor this
    /// first materializes a private copy (copy-on-write).
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.buf_mut()
    }

    /// Consumes the tensor and returns its buffer (copying a shared view).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(self.buf_mut())
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data()[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.buf_mut()[off] = value;
    }

    /// Matrix element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or the index is out of
    /// bounds.
    #[inline]
    pub fn get2(&self, row: usize, col: usize) -> f32 {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        self.data()[row * cols + col]
    }

    /// Sets matrix element `(row, col)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or the index is out of
    /// bounds.
    #[inline]
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        self.buf_mut()[row * cols + col] = value;
    }

    /// Borrow of row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        &self.data()[r * cols..(r + 1) * cols]
    }

    /// Mutable borrow of row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the tensor is not rank 2 or `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert_eq!(self.shape.rank(), 2);
        let cols = self.shape.dims()[1];
        &mut self.buf_mut()[r * cols..(r + 1) * cols]
    }

    /// Returns the same buffer viewed under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, ShapeError> {
        Tensor::from_vec(self.data().to_vec(), dims)
    }

    /// Consumes the tensor, returning the same buffer under a new shape.
    /// A shared view stays shared — only the shape changes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    pub fn into_reshape(self, dims: &[usize]) -> Result<Tensor, ShapeError> {
        let shape = Shape::new(dims);
        if self.len() != shape.len() {
            return Err(ShapeError::new(format!(
                "buffer of {} elements cannot view as shape {:?} ({} elements)",
                self.len(),
                dims,
                shape.len()
            )));
        }
        Ok(Tensor { shape, storage: self.storage })
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank 2.
    pub fn transpose2(&self) -> Result<Tensor, ShapeError> {
        self.shape.expect_rank(2)?;
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let src = self.data();
        let mut data = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = src[i * c + j];
            }
        }
        Tensor::from_vec(data, &[c, r])
    }

    /// Elementwise binary operation against a same-shaped tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        mut f: impl FnMut(f32, f32) -> f32,
    ) -> Result<Tensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "elementwise op on mismatched shapes {:?} vs {:?}",
                self.dims(),
                other.dims()
            )));
        }
        let data = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor { shape: self.shape.clone(), storage: Storage::Owned(data) })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise map producing a new tensor.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            storage: Storage::Owned(self.data().iter().copied().map(f).collect()),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in self.buf_mut() {
            *v = f(*v);
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// `self += alpha * other`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(format!(
                "axpy on mismatched shapes {:?} vs {:?}",
                self.dims(),
                other.dims()
            )));
        }
        for (a, &b) in self.buf_mut().iter_mut().zip(other.data().iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Largest absolute difference to another tensor; `f32::INFINITY` when
    /// shapes differ. Convenient for approximate-equality assertions.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        if self.shape != other.shape {
            return f32::INFINITY;
        }
        self.data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl PartialEq for Tensor {
    /// Shape and element equality — where the elements live (owned vs
    /// shared) is not observable.
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data() == other.data()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        let data = self.data();
        write!(f, "Tensor{:?} [", self.dims())?;
        for (i, v) in data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if data.len() > PREVIEW {
            write!(f, ", … {} more", data.len() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.get2(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let tt = t.transpose2().unwrap().transpose2().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn mismatched_elementwise_is_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        assert_eq!(a.max_abs_diff(&b), f32::INFINITY);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn row_views() {
        let mut t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
        t.row_mut(0)[2] = 9.0;
        assert_eq!(t.get2(0, 2), 9.0);
    }

    #[test]
    fn debug_preview_is_nonempty() {
        let t = Tensor::zeros(&[4]);
        let s = format!("{t:?}");
        assert!(s.contains("Tensor[4]"));
    }

    #[test]
    fn shared_views_window_without_copying() {
        let source: Arc<dyn F32Source> =
            Arc::new((0..12).map(|v| v as f32).collect::<Vec<f32>>());
        let t = Tensor::from_shared(Arc::clone(&source), 2, &[2, 3]).unwrap();
        assert!(t.is_shared());
        assert_eq!(t.data(), &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(t.get2(1, 2), 7.0);
        assert_eq!(t.row(0), &[2.0, 3.0, 4.0]);
        // Same bytes, same address: the view really is zero-copy.
        assert_eq!(t.data().as_ptr(), source.f32s()[2..].as_ptr());
        // Equality looks through the storage mode.
        assert_eq!(t, Tensor::from_vec(t.data().to_vec(), &[2, 3]).unwrap());
        // Out-of-bounds windows are rejected.
        assert!(Tensor::from_shared(Arc::clone(&source), 8, &[2, 3]).is_err());
        assert!(Tensor::from_shared(source, usize::MAX, &[2]).is_err());
    }

    #[test]
    fn shared_views_copy_on_write() {
        let source: Arc<dyn F32Source> = Arc::new(vec![1.0f32, 2.0, 3.0, 4.0]);
        let mut t = Tensor::from_shared(Arc::clone(&source), 0, &[2, 2]).unwrap();
        let reshaped = t.clone().into_reshape(&[4]).unwrap();
        assert!(reshaped.is_shared(), "reshape keeps the view");
        t.set2(0, 1, 9.0);
        assert!(!t.is_shared(), "mutation materializes an owned copy");
        assert_eq!(t.data(), &[1.0, 9.0, 3.0, 4.0]);
        // The source is untouched.
        assert_eq!(source.f32s(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(reshaped.data(), &[1.0, 2.0, 3.0, 4.0]);
    }
}

use crate::ShapeError;

/// A tensor shape: the extent of each axis, row-major (last axis fastest).
///
/// # Example
///
/// ```
/// use pecan_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Self { dims: dims.to_vec() }
    }

    /// The extents of every axis.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; `1` for rank 0).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds (debug-checked).
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            debug_assert!(index[axis] < self.dims[axis], "index out of bounds");
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }

    /// Checks this shape has exactly `rank` axes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the rank differs.
    pub fn expect_rank(&self, rank: usize) -> Result<(), ShapeError> {
        if self.rank() == rank {
            Ok(())
        } else {
            Err(ShapeError::new(format!(
                "expected rank {rank}, got rank {} (shape {:?})",
                self.rank(),
                self.dims
            )))
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[3, 4, 5]).len(), 60);
        assert_eq!(Shape::new(&[]).len(), 1);
        assert_eq!(Shape::new(&[0, 7]).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    fn expect_rank_reports_mismatch() {
        let s = Shape::new(&[2, 3]);
        assert!(s.expect_rank(2).is_ok());
        let err = s.expect_rank(3).unwrap_err();
        assert!(err.message().contains("expected rank 3"));
    }
}

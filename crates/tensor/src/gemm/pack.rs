//! Panel packing: re-lays operand blocks so the microkernel streams both
//! inputs with unit stride.
//!
//! Quick-ADC's lesson for PQ scan kernels applies verbatim to GEMM: lay the
//! data out so the inner loop reads contiguous lane groups, and
//! vectorization follows. A blocks become depth-major `MR`-lane panels,
//! B blocks become depth-major `NR`-lane panels; ragged edges are
//! zero-padded to full lanes so the microkernel never branches on tile
//! shape. Padded lanes contribute exact `±0.0` products that are never
//! written back, so padding is invisible in the output bits.
//!
//! Both packers take a `trans` flag describing how the *source slice* is
//! laid out, which is how `matmul_tn` / `matmul_nt` run on the same kernel
//! without materialising a transpose.

use super::kernel::{MR, NR};

/// Reads logical `A[i, l]` of the `m × k` left operand.
///
/// `trans == false`: `a` is `[m, k]` row-major. `trans == true`: `a` is the
/// `[k, m]` row-major slice whose transpose is the logical operand (the
/// `matmul_tn` layout).
#[inline]
fn a_elem(a: &[f32], trans: bool, m: usize, k: usize, i: usize, l: usize) -> f32 {
    debug_assert!(i < m && l < k);
    if trans {
        a[l * m + i]
    } else {
        a[i * k + l]
    }
}

/// Reads logical `B[l, j]` of the `k × n` right operand.
///
/// `trans == false`: `b` is `[k, n]` row-major. `trans == true`: `b` is the
/// `[n, k]` row-major slice whose transpose is the logical operand (the
/// `matmul_nt` layout).
#[inline]
fn b_elem(b: &[f32], trans: bool, k: usize, n: usize, l: usize, j: usize) -> f32 {
    debug_assert!(l < k && j < n);
    if trans {
        b[j * k + l]
    } else {
        b[l * n + j]
    }
}

/// Packs the A block `rows [i0, i0+mc) × depth [l0, l0+kc)` into MR panels.
///
/// Layout: panel `ir` (rows `i0 + ir·MR ..`) occupies
/// `dst[ir·kc·MR .. (ir+1)·kc·MR]`, stored depth-major — element `(i, l)`
/// of the panel sits at `l·MR + i`. Rows past `i0 + mc` are zero lanes.
/// `dst` must hold `ceil(mc/MR)·kc·MR` values.
pub(crate) fn pack_a_block(
    dst: &mut [f32],
    a: &[f32],
    trans: bool,
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    l0: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    debug_assert!(dst.len() >= panels * kc * MR);
    for ir in 0..panels {
        let base = ir * kc * MR;
        for l in 0..kc {
            for lane in 0..MR {
                let i = ir * MR + lane;
                dst[base + l * MR + lane] = if i < mc {
                    a_elem(a, trans, m, k, i0 + i, l0 + l)
                } else {
                    0.0
                };
            }
        }
    }
}

/// All of B packed once per GEMM call: every depth block × every NR panel.
///
/// Shared read-only across worker threads, so the (possibly strided)
/// traversal of the source happens exactly once regardless of how many row
/// chunks consume it.
pub(crate) struct PackedB {
    data: Vec<f32>,
    /// `(l0, kc, offset)` per depth block, in increasing-`l0` order.
    blocks: Vec<(usize, usize, usize)>,
    n_panels: usize,
}

impl PackedB {
    /// Packs the full `k × n` right operand using depth blocks of `kc_max`.
    pub(crate) fn pack(b: &[f32], trans: bool, k: usize, n: usize, kc_max: usize) -> Self {
        let n_panels = n.div_ceil(NR);
        let mut blocks = Vec::new();
        let mut offset = 0;
        let mut l0 = 0;
        while l0 < k {
            let kc = kc_max.min(k - l0);
            blocks.push((l0, kc, offset));
            offset += n_panels * kc * NR;
            l0 += kc;
        }
        let mut data = vec![0.0f32; offset];
        for &(l0, kc, off) in &blocks {
            for jr in 0..n_panels {
                let base = off + jr * kc * NR;
                for l in 0..kc {
                    for lane in 0..NR {
                        let j = jr * NR + lane;
                        if j < n {
                            data[base + l * NR + lane] = b_elem(b, trans, k, n, l0 + l, j);
                        }
                    }
                }
            }
        }
        Self { data, blocks, n_panels }
    }

    /// Depth blocks as `(l0, kc, offset)` triples in increasing depth order.
    pub(crate) fn blocks(&self) -> &[(usize, usize, usize)] {
        &self.blocks
    }

    /// The `kc × NR` panel for columns `jr·NR ..` of the block at `offset`.
    pub(crate) fn panel(&self, offset: usize, kc: usize, jr: usize) -> &[f32] {
        debug_assert!(jr < self.n_panels);
        &self.data[offset + jr * kc * NR..offset + (jr + 1) * kc * NR]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_handles_transpose_and_ragged_tail() {
        // logical A is 3×2: [[1,2],[3,4],[5,6]]
        let a_nn = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [3,2] row-major
        let a_tn = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0]; // [2,3] row-major
        let (m, k) = (3usize, 2usize);
        let panels = m.div_ceil(MR);
        let mut nn = vec![f32::NAN; panels * k * MR];
        let mut tn = vec![f32::NAN; panels * k * MR];
        pack_a_block(&mut nn, &a_nn, false, m, k, 0, m, 0, k);
        pack_a_block(&mut tn, &a_tn, true, m, k, 0, m, 0, k);
        assert_eq!(nn, tn);
        // depth-major lanes: l=0 → rows' first column + zero pad
        assert_eq!(&nn[..MR], &[1.0, 3.0, 5.0, 0.0]);
        assert_eq!(&nn[MR..2 * MR], &[2.0, 4.0, 6.0, 0.0]);
    }

    #[test]
    fn packed_b_blocks_cover_depth_and_pad_columns() {
        let (k, n) = (5, 3);
        let b: Vec<f32> = (0..k * n).map(|v| v as f32 + 1.0).collect();
        let packed = PackedB::pack(&b, false, k, n, 2);
        let blocks: Vec<(usize, usize)> =
            packed.blocks().iter().map(|&(l0, kc, _)| (l0, kc)).collect();
        assert_eq!(blocks, vec![(0, 2), (2, 2), (4, 1)]);
        // second depth block, panel 0: rows l=2,3 of B, columns 0..3 + pad
        let (_, kc, off) = packed.blocks()[1];
        let panel = packed.panel(off, kc, 0);
        assert_eq!(&panel[..3], &[7.0, 8.0, 9.0]);
        assert!(panel[3..NR].iter().all(|&v| v == 0.0));
        assert_eq!(&panel[NR..NR + 3], &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn packed_b_transposed_matches_plain() {
        let (k, n) = (4, 6);
        // logical B[l, j] = l*10 + j
        let b_nn: Vec<f32> = (0..k * n).map(|v| ((v / n) * 10 + v % n) as f32).collect();
        let b_nt: Vec<f32> = (0..n * k).map(|v| ((v % k) * 10 + v / k) as f32).collect();
        let plain = PackedB::pack(&b_nn, false, k, n, 3);
        let trans = PackedB::pack(&b_nt, true, k, n, 3);
        assert_eq!(plain.data, trans.data);
        assert_eq!(plain.blocks, trans.blocks);
    }
}

//! Std-only scoped thread pool: worker-count configuration and a generic
//! worklist runner.
//!
//! There is deliberately no registry dependency and no persistent pool —
//! workers are `std::thread::scope` threads spawned per parallel region.
//! The GEMM driver splits over disjoint row panels of `C` (see
//! [`super::gemm_with_threads`]); [`parallel_map`] is the coarser-grained
//! companion used by the `experiments` binary to run whole tables
//! concurrently on the same `PECAN_NUM_THREADS` budget.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hard ceiling on any configured worker count — beyond this the row panels
/// of the workloads in this repo are too thin to keep lanes busy.
const MAX_THREADS: usize = 64;
/// Cap on the *default* (env unset): `available_parallelism` on big servers
/// would oversubscribe the small GEMMs the training loop issues.
const DEFAULT_CAP: usize = 8;

/// Pure decision function behind [`configured_threads`], separated so the
/// env-var policy is unit-testable without process-global state.
fn threads_from_env(value: Option<&str>, available: usize) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(MAX_THREADS),
        // Unparseable or unset: sane default, capped.
        _ => available.clamp(1, DEFAULT_CAP),
    }
}

/// Worker count for every parallel region in the workspace.
///
/// Reads `PECAN_NUM_THREADS` once per process (first call wins); when the
/// variable is unset or invalid, defaults to
/// [`std::thread::available_parallelism`] capped at 8. Always ≥ 1.
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        threads_from_env(std::env::var("PECAN_NUM_THREADS").ok().as_deref(), available)
    })
}

thread_local! {
    /// Set inside [`parallel_map`] workers so nested auto-dispatched GEMMs
    /// stay single-threaded instead of multiplying the worker count.
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `true` on a [`parallel_map`] worker thread.
///
/// [`super::gemm`]'s auto-dispatch consults this to keep the total worker
/// count at the `PECAN_NUM_THREADS` budget: when the coarse per-item pool
/// is already saturating it, inner GEMMs run serially (same bits either
/// way).
pub(crate) fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(std::cell::Cell::get)
}

/// Runs `f` over `items` on up to `threads` scoped workers, returning the
/// outputs in input order.
///
/// Work is claimed from a shared atomic cursor, so long and short items mix
/// freely; with `threads == 1` (or a single item) everything runs on the
/// calling thread. Outputs are independent of the worker count — only the
/// wall-clock changes. Inside the workers, auto-dispatched GEMMs run
/// single-threaded so the two pool layers share one thread budget.
pub fn parallel_map<T, O, F>(threads: usize, items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, MAX_THREADS).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                let _span = pecan_obs::span("parallel_map.worker");
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("each slot is claimed exactly once");
                    let out = f(item);
                    *results[idx]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker wrote every claimed slot")
        })
        .collect()
}

/// Splits `total` row-blocks (of `block` rows each, last one ragged) into at
/// most `threads` contiguous `(row0, rows)` chunks aligned to `block`.
///
/// Alignment keeps every chunk an integer number of packing blocks, so the
/// per-element accumulation order — and therefore the output bits — cannot
/// depend on the partition.
pub(crate) fn row_chunks(m: usize, block: usize, threads: usize) -> Vec<(usize, usize)> {
    let n_blocks = m.div_ceil(block);
    let workers = threads.clamp(1, MAX_THREADS).min(n_blocks.max(1));
    let per_worker = n_blocks.div_ceil(workers);
    let mut chunks = Vec::with_capacity(workers);
    let mut b0 = 0;
    while b0 < n_blocks {
        let rows_start = b0 * block;
        let rows_end = ((b0 + per_worker) * block).min(m);
        chunks.push((rows_start, rows_end - rows_start));
        b0 += per_worker;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_policy_parses_caps_and_defaults() {
        assert_eq!(threads_from_env(Some("4"), 16), 4);
        assert_eq!(threads_from_env(Some(" 2 "), 16), 2);
        assert_eq!(threads_from_env(Some("0"), 16), 8); // invalid → default
        assert_eq!(threads_from_env(Some("banana"), 3), 3);
        assert_eq!(threads_from_env(Some("1000"), 16), MAX_THREADS);
        assert_eq!(threads_from_env(None, 16), 8); // default capped
        assert_eq!(threads_from_env(None, 2), 2);
        assert_eq!(threads_from_env(None, 0), 1); // degenerate host info
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_everything() {
        for threads in [1, 2, 5, 9] {
            let got = parallel_map(threads, (0..23).collect(), |v: u64| v * v);
            let want: Vec<u64> = (0..23).map(|v| v * v).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        let empty: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |v| v);
        assert!(empty.is_empty());
    }

    #[test]
    fn workers_report_parallel_region_and_caller_does_not() {
        assert!(!in_parallel_region(), "caller thread is not a pool worker");
        let flags = parallel_map(3, (0..6).collect::<Vec<u32>>(), |_| in_parallel_region());
        assert!(flags.iter().all(|&f| f), "every worker sees the region flag");
        // threads == 1 runs inline on the caller: no region is entered.
        let inline = parallel_map(1, vec![0u32], |_| in_parallel_region());
        assert_eq!(inline, vec![false]);
        assert!(!in_parallel_region(), "flag never leaks back to the caller");
    }

    #[test]
    fn row_chunks_tile_the_matrix_exactly() {
        for (m, block, threads) in
            [(1, 64, 4), (64, 64, 4), (257, 64, 4), (1000, 64, 3), (5, 4, 8), (0, 64, 2)]
        {
            let chunks = row_chunks(m, block, threads);
            let mut next = 0;
            for &(row0, rows) in &chunks {
                assert_eq!(row0, next, "contiguous ({m}, {block}, {threads})");
                assert!(rows > 0);
                assert_eq!(row0 % block, 0, "aligned ({m}, {block}, {threads})");
                next = row0 + rows;
            }
            assert_eq!(next, m, "covers all rows ({m}, {block}, {threads})");
            assert!(chunks.len() <= threads.max(1));
        }
    }
}

//! The seed workspace's scalar GEMM kernels, retained verbatim as the
//! correctness oracle for the packed subsystem.
//!
//! These are the blocked-ikj (and l-outer / dot-product) loops that
//! `Tensor::matmul{,_tn,_nt}` ran on before `gemm` existed. They stay in
//! the tree for two reasons: parity tests assert the packed/threaded path
//! reproduces them **bit-for-bit** (both accumulate each output element in
//! strictly increasing depth order), and the `matmul` bench reports the
//! packed kernel's speedup against them.

/// `C[m×n] = A[m×k] · B[k×n]` (overwriting), i-k-j loop order.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut c[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[l * n..(l + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow.iter()) {
                *ov += av * bv;
            }
        }
    }
}

/// `C[m×n] = Aᵀ · B` with `a` laid out `[k, m]` row-major, `b` `[k, n]`.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    c.fill(0.0);
    // out[i, j] = Σ_l a[l, i] * b[l, j]; stream over l rows.
    for l in 0..k {
        let arow = &a[l * m..(l + 1) * m];
        let brow = &b[l * n..(l + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut c[i * n..(i + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow.iter()) {
                *ov += av * bv;
            }
        }
    }
}

/// `C[m×n] = A · Bᵀ` with `a` laid out `[m, k]` row-major, `b` `[n, k]`.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut c[i * n..(i + 1) * n];
        for (j, ov) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *ov = acc;
        }
    }
}

/// Oracle entry with the same signature as [`super::gemm_with_threads`]:
/// dispatches on the transpose flags.
pub fn gemm(
    a: &[f32],
    trans_a: bool,
    b: &[f32],
    trans_b: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match (trans_a, trans_b) {
        (false, false) => gemm_nn(a, b, c, m, k, n),
        (true, false) => gemm_tn(a, b, c, m, k, n),
        (false, true) => gemm_nt(a, b, c, m, k, n),
        (true, true) => {
            // Aᵀ·Bᵀ has no dedicated scalar kernel in the seed; compose via
            // the same increasing-depth accumulation the others use.
            c.fill(0.0);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += a[l * m + i] * b[j * k + l];
                    }
                    c[i * n + j] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_on_a_common_product() {
        // logical A 2×3, B 3×2
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [2,3]
        let at = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // [3,2]
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // [3,2]
        let bt = [7.0, 9.0, 11.0, 8.0, 10.0, 12.0]; // [2,3]
        let want = [58.0, 64.0, 139.0, 154.0];
        for (ta, tb, la, lb) in [
            (false, false, &a, &b),
            (true, false, &at, &b),
            (false, true, &a, &bt),
            (true, true, &at, &bt),
        ] {
            let mut c = [f32::NAN; 4];
            gemm(la, ta, lb, tb, &mut c, 2, 3, 2);
            assert_eq!(c, want, "ta={ta} tb={tb}");
        }
    }
}

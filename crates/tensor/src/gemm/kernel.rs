//! The register-tile microkernel at the bottom of the packed GEMM.
//!
//! One call updates an `MR × NR` tile of `C` with the product of an `MR`-row
//! packed A panel and an `NR`-column packed B panel over a depth-`kc` block.
//! The accumulator lives in a plain `[[f32; NR]; MR]` array so the whole tile
//! stays in registers; the loop body is branch-free and every slice has a
//! compile-time-known width, which is exactly the shape LLVM's
//! autovectorizer turns into lane-parallel SIMD adds/mults on any target
//! (SSE2 baseline included) without `unsafe` or intrinsics.
//!
//! Numerical contract: for each `(i, j)` the products are accumulated in
//! strictly increasing depth order, one at a time. Because the driver seeds
//! the accumulator with the current value of `C` before every depth block,
//! the *whole* GEMM performs, per output element, the same sequence of
//! `+ a·b` operations as the retained scalar kernel — outputs are
//! bit-identical to [`super::scalar`] for finite inputs, for any blocking
//! and any thread count.

/// Rows of the register tile (lanes of packed A panels).
pub(crate) const MR: usize = 4;
/// Columns of the register tile (lanes of packed B panels).
///
/// Chosen per target at compile time: 8 keeps the 4×NR accumulator inside
/// the sixteen 128-bit registers of baseline x86-64; 16 fills the wider
/// files when the build enables AVX (e.g.
/// `RUSTFLAGS="-C target-cpu=native"`). The choice moves wall-clock only —
/// output bits are tile-size-invariant (see the determinism note above).
#[cfg(target_feature = "avx")]
pub(crate) const NR: usize = 16;
/// Columns of the register tile; see the `target_feature = "avx"` twin.
#[cfg(not(target_feature = "avx"))]
pub(crate) const NR: usize = 8;

/// Accumulates `a_panel[kc × MR] · b_panel[kc × NR]` into `acc`.
///
/// `a_panel` stores depth-major MR-lane groups (`a_panel[l·MR + i]` is
/// element `(i, l)` of the A block); `b_panel` stores depth-major NR-lane
/// groups. Both must be exactly `kc` groups long — the packers zero-pad
/// ragged edges so this holds for every tile.
#[inline]
pub(crate) fn microkernel(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert_eq!(a_panel.len() % MR, 0);
    debug_assert_eq!(a_panel.len() / MR, b_panel.len() / NR);
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_matches_naive_outer_product_sum() {
        let kc = 5;
        let a: Vec<f32> = (0..kc * MR).map(|v| v as f32 * 0.5 - 3.0).collect();
        let b: Vec<f32> = (0..kc * NR).map(|v| v as f32 * 0.25 - 2.0).collect();
        let mut acc = [[1.0f32; NR]; MR]; // non-zero seed: kernel must add, not overwrite
        microkernel(&a, &b, &mut acc);
        for i in 0..MR {
            for j in 0..NR {
                let mut want = 1.0f32;
                for l in 0..kc {
                    want += a[l * MR + i] * b[l * NR + j];
                }
                assert_eq!(acc[i][j].to_bits(), want.to_bits(), "tile ({i}, {j})");
            }
        }
    }

    #[test]
    fn empty_depth_leaves_accumulator_untouched() {
        let mut acc = [[2.5f32; NR]; MR];
        microkernel(&[], &[], &mut acc);
        assert!(acc.iter().flatten().all(|&v| v == 2.5));
    }
}

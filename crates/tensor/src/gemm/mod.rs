//! Packed, cache-blocked, multi-threaded GEMM — the training-side hot
//! kernel of the workspace.
//!
//! PECAN training (both the PECAN-A/PECAN-D co-optimization loops and the
//! baseline CNNs they are compared against) is dominated by dense matrix
//! products: encoder matmuls, the im2col convolution path, and the
//! `dY·Bᵀ` / `Aᵀ·dY` products of backprop. This module replaces the seed's
//! scalar blocked-ikj kernel with the standard high-performance GEMM
//! structure, in 100% safe `std`-only Rust:
//!
//! * **packing** (`pack.rs`): operand blocks are re-laid into depth-major
//!   lane panels (`MR = 4` rows of A, `NR = 8` — or 16 on AVX builds —
//!   columns of B) so the inner loop streams both inputs with unit stride —
//!   the same layout-for-the-lanes discipline Quick-ADC applies to PQ scan
//!   codes;
//! * **microkernel** (`kernel.rs`): an `MR × NR` f32 accumulator tile held in
//!   registers across a whole depth block, written as fixed-width safe loops
//!   that LLVM autovectorizes on any target;
//! * **cache blocking**: `NC → KC → MC` loop nest around the tile, with B
//!   packed once per call and A packed per row-block per depth-block;
//! * **threading** (`threads.rs`): a `std::thread::scope` pool splits the row
//!   panels of `C` into disjoint contiguous chunks — worker count comes from
//!   `PECAN_NUM_THREADS` (default: `available_parallelism`, capped at 8).
//!
//! # Determinism
//!
//! Every output element is accumulated in strictly increasing depth order —
//! the accumulator tile is seeded from `C` before each depth block, so block
//! boundaries never re-associate the sum. As a consequence the packed path
//! is **bit-identical** to the retained [`scalar`] oracle for finite inputs,
//! for every shape, transpose combination, blocking choice *and thread
//! count* (row chunks are disjoint and `f32` addition here is per-element
//! sequential). `crates/tensor/tests/gemm_parity.rs` pins this property.
//!
//! # Example
//!
//! ```
//! use pecan_tensor::gemm;
//!
//! let a = vec![1.0f32; 3 * 4]; // [3, 4]
//! let b = vec![2.0f32; 4 * 5]; // [4, 5]
//! let mut c = vec![0.0f32; 3 * 5];
//! gemm::gemm(&a, false, &b, false, &mut c, 3, 4, 5);
//! assert!(c.iter().all(|&v| v == 8.0));
//!
//! // Same product, explicit worker count (used by the parity tests):
//! let mut c2 = vec![0.0f32; 3 * 5];
//! gemm::gemm_with_threads(&a, false, &b, false, &mut c2, 3, 4, 5, 2);
//! assert_eq!(c, c2);
//! ```

mod kernel;
mod pack;
pub mod scalar;
mod threads;

pub use threads::{configured_threads, parallel_map};

use kernel::{microkernel, MR, NR};
use pack::{pack_a_block, PackedB};

/// Rows of A packed (and re-used) per row-block; multiple of `MR`.
const MC: usize = 64;
/// Depth of one packed block; bounds the panel footprint in cache.
const KC: usize = 256;
/// Columns of B visited per outer block; multiple of `NR`.
const NC: usize = 1024;

/// Below this `m·n·k` volume the packing set-up costs more than it saves;
/// the (bit-identical) scalar oracle runs instead.
const SCALAR_CUTOFF: usize = 4096;
/// Minimum `m·n·k` volume before spawning worker threads is worthwhile.
const PAR_MIN_VOLUME: usize = 1 << 20;

/// `C[m×n] = op(A) · op(B)` with automatic kernel and thread selection.
///
/// `trans_a == false` means `a` is the `[m, k]` row-major left operand;
/// `trans_a == true` means `a` is `[k, m]` row-major and its transpose is
/// used (the `matmul_tn` layout) — likewise `trans_b` for the `[n, k]`
/// `matmul_nt` layout. `C` is overwritten.
///
/// Tiny products run on the scalar oracle, mid-sized ones on the packed
/// kernel single-threaded, large ones across the configured worker count —
/// the output bits are identical in all three regimes.
///
/// # Panics
///
/// Panics if slice lengths don't match `m·k` / `k·n` / `m·n`.
pub fn gemm(
    a: &[f32],
    trans_a: bool,
    b: &[f32],
    trans_b: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let volume = m.saturating_mul(n).saturating_mul(k);
    if volume < SCALAR_CUTOFF {
        check_dims(a, b, c, m, k, n);
        scalar::gemm(a, trans_a, b, trans_b, c, m, k, n);
        return;
    }
    // Inside a parallel_map region the coarse pool already owns the thread
    // budget — nesting GEMM workers would oversubscribe it.
    let threads = if volume < PAR_MIN_VOLUME || threads::in_parallel_region() {
        1
    } else {
        configured_threads()
    };
    gemm_with_threads(a, trans_a, b, trans_b, c, m, k, n, threads);
}

/// [`gemm`] with an explicit worker count, always on the packed kernel.
///
/// The thread count changes wall-clock only, never output bits; the parity
/// and determinism tests call this directly to pin that property.
///
/// # Panics
///
/// Panics if slice lengths don't match `m·k` / `k·n` / `m·n`.
pub fn gemm_with_threads(
    a: &[f32],
    trans_a: bool,
    b: &[f32],
    trans_b: bool,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let _span = pecan_obs::span("gemm");
    check_dims(a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    c.fill(0.0);
    if k == 0 {
        return;
    }
    let packed_b = {
        let _span = pecan_obs::span("gemm.pack");
        PackedB::pack(b, trans_b, k, n, KC)
    };
    let chunks = threads::row_chunks(m, MC, threads);
    if chunks.len() <= 1 {
        let _span = pecan_obs::span("gemm.worker");
        gemm_rows(a, trans_a, &packed_b, c, 0, m, m, k, n);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = c;
        for &(row0, rows) in &chunks {
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let packed_b = &packed_b;
            s.spawn(move || {
                let _span = pecan_obs::span("gemm.worker");
                gemm_rows(a, trans_a, packed_b, chunk, row0, rows, m, k, n);
            });
        }
    });
}

/// One worker's share: rows `[row0, row0 + rows)` of `C`, full width.
///
/// `c_chunk` is that row range only (local row 0 = global `row0`). Loop
/// nest: `NC` column blocks → packed depth blocks → `MC` row blocks →
/// B panels → A panels → microkernel.
fn gemm_rows(
    a: &[f32],
    trans_a: bool,
    packed_b: &PackedB,
    c_chunk: &mut [f32],
    row0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut apack = vec![0.0f32; MC * KC];
    let mut jc0 = 0;
    while jc0 < n {
        let nc = NC.min(n - jc0);
        for &(l0, kc, b_off) in packed_b.blocks() {
            let mut ic = 0;
            while ic < rows {
                let mc = MC.min(rows - ic);
                pack_a_block(&mut apack, a, trans_a, m, k, row0 + ic, mc, l0, kc);
                let jr_end = (jc0 + nc).div_ceil(NR);
                for jr in jc0 / NR..jr_end {
                    let b_panel = packed_b.panel(b_off, kc, jr);
                    let j0 = jr * NR;
                    let nr = NR.min(n - j0);
                    for ir in 0..mc.div_ceil(MR) {
                        let i0 = ic + ir * MR;
                        let mr = MR.min(mc - ir * MR);
                        let a_panel = &apack[ir * kc * MR..(ir + 1) * kc * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        for (i, row) in acc.iter_mut().enumerate().take(mr) {
                            let src = &c_chunk[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr];
                            row[..nr].copy_from_slice(src);
                        }
                        microkernel(a_panel, b_panel, &mut acc);
                        for (i, row) in acc.iter().enumerate().take(mr) {
                            let dst = &mut c_chunk[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr];
                            dst.copy_from_slice(&row[..nr]);
                        }
                    }
                }
                ic += mc;
            }
        }
        jc0 += nc;
    }
}

fn check_dims(a: &[f32], b: &[f32], c: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A slice is not m·k = {m}·{k}");
    assert_eq!(b.len(), k * n, "gemm: B slice is not k·n = {k}·{n}");
    assert_eq!(c.len(), m * n, "gemm: C slice is not m·n = {m}·{n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize, seed: f32) -> Vec<f32> {
        (0..len).map(|i| ((i * 31 % 23) as f32 - 11.0) * seed).collect()
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn packed_matches_scalar_across_blocking_boundaries() {
        // Shapes straddling MR/NR/MC/KC edges, incl. multi-depth-block k.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 7, 5),
            (4, 8, 8),
            (5, 9, 17),
            (65, 300, 33),
            (130, 70, 40),
        ] {
            let a = ramp(m * k, 0.37);
            let b = ramp(k * n, 0.53);
            let mut fast = vec![f32::NAN; m * n];
            let mut slow = vec![f32::NAN; m * n];
            gemm_with_threads(&a, false, &b, false, &mut fast, m, k, n, 1);
            scalar::gemm(&a, false, &b, false, &mut slow, m, k, n);
            assert_bits_eq(&fast, &slow, &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn thread_count_never_changes_output_bits() {
        let (m, k, n) = (150, 90, 60);
        let a = ramp(m * k, 0.21);
        let b = ramp(k * n, 0.43);
        let mut reference = vec![0.0f32; m * n];
        gemm_with_threads(&a, false, &b, false, &mut reference, m, k, n, 1);
        for threads in [2, 3, 4, 7] {
            let mut c = vec![f32::NAN; m * n];
            gemm_with_threads(&a, false, &b, false, &mut c, m, k, n, threads);
            assert_bits_eq(&c, &reference, &format!("threads={threads}"));
        }
    }

    #[test]
    fn transposed_operands_match_oracle() {
        let (m, k, n) = (37, 65, 29);
        let a_t = ramp(k * m, 0.31); // [k, m] layout
        let b_t = ramp(n * k, 0.19); // [n, k] layout
        let b_n = ramp(k * n, 0.23);
        let a_n = ramp(m * k, 0.29);
        for (ta, tb, a, b) in
            [(true, false, &a_t, &b_n), (false, true, &a_n, &b_t), (true, true, &a_t, &b_t)]
        {
            let mut fast = vec![f32::NAN; m * n];
            let mut slow = vec![f32::NAN; m * n];
            gemm_with_threads(a, ta, b, tb, &mut fast, m, k, n, 3);
            scalar::gemm(a, ta, b, tb, &mut slow, m, k, n);
            assert_bits_eq(&fast, &slow, &format!("ta={ta} tb={tb}"));
        }
    }

    #[test]
    fn empty_dimensions_produce_zero_or_empty_output() {
        let mut c = vec![f32::NAN; 6];
        gemm_with_threads(&[], false, &[], false, &mut c, 2, 0, 3, 4);
        assert!(c.iter().all(|&v| v == 0.0), "k = 0 must zero C");
        let mut empty: Vec<f32> = vec![];
        gemm_with_threads(&[], false, &ramp(6, 1.0), false, &mut empty, 0, 2, 3, 2);
        gemm_with_threads(&ramp(6, 1.0), false, &[], false, &mut empty, 3, 2, 0, 2);
    }

    #[test]
    #[should_panic(expected = "gemm: A slice is not")]
    fn mismatched_lengths_panic() {
        let mut c = vec![0.0; 4];
        gemm(&[0.0; 3], false, &[0.0; 4], false, &mut c, 2, 2, 2);
    }

    #[test]
    fn auto_entry_agrees_with_explicit_paths() {
        // Spans the SCALAR_CUTOFF boundary both ways.
        for (m, k, n) in [(2, 3, 4), (40, 40, 40)] {
            let a = ramp(m * k, 0.11);
            let b = ramp(k * n, 0.13);
            let mut auto = vec![f32::NAN; m * n];
            let mut explicit = vec![f32::NAN; m * n];
            gemm(&a, false, &b, false, &mut auto, m, k, n);
            gemm_with_threads(&a, false, &b, false, &mut explicit, m, k, n, 2);
            assert_bits_eq(&auto, &explicit, &format!("{m}x{k}x{n}"));
        }
    }
}

use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are incompatible with the requested
/// operation (mismatched dimensions, wrong rank, zero-sized axes, ...).
///
/// # Example
///
/// ```
/// use pecan_tensor::Tensor;
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[4, 5]);
/// assert!(a.matmul(&b).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a new shape error with a human-readable description.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The human-readable description of the mismatch.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl Error for ShapeError {}

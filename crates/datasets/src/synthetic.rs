use crate::InMemoryDataset;
use pecan_tensor::Tensor;
use rand::Rng;

/// Procedural MNIST stand-in: 28×28 single-channel seven-segment digits
/// with random translation, intensity jitter and pixel noise. Classes are
/// balanced round-robin.
///
/// The task is learnable to >99% by LeNet-scale models (like MNIST) while
/// being generated in microseconds, which is what the experiment harness
/// needs on a machine without the real dataset.
pub fn synthetic_mnist<R: Rng>(rng: &mut R, n: usize) -> InMemoryDataset {
    const SIZE: usize = 28;
    let mut data = vec![0.0f32; n * SIZE * SIZE];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % 10;
        labels.push(digit);
        let dx = rng.gen_range(-3i32..=3);
        let dy = rng.gen_range(-3i32..=3);
        let intensity = rng.gen_range(0.75..1.0);
        let img = &mut data[i * SIZE * SIZE..(i + 1) * SIZE * SIZE];
        draw_digit(img, SIZE, digit, dx, dy, intensity);
        for v in img.iter_mut() {
            *v += rng.gen_range(-0.08..0.08);
            *v = v.clamp(0.0, 1.0) - 0.5; // roughly centre the data
        }
    }
    let images = Tensor::from_vec(data, &[n, 1, SIZE, SIZE]).expect("sized by construction");
    InMemoryDataset::new(images, labels, 10)
}

/// Which of the 7 segments (A..=G) each digit lights up.
const SEGMENTS: [[bool; 7]; 10] = [
    // A      B      C      D      E      F      G
    [true, true, true, true, true, true, false],   // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],  // 2
    [true, true, true, true, false, false, true],  // 3
    [false, true, true, false, false, true, true], // 4
    [true, false, true, true, false, true, true],  // 5
    [true, false, true, true, true, true, true],   // 6
    [true, true, true, false, false, false, false], // 7
    [true, true, true, true, true, true, true],    // 8
    [true, true, true, true, false, true, true],   // 9
];

fn draw_digit(img: &mut [f32], size: usize, digit: usize, dx: i32, dy: i32, intensity: f32) {
    // Segment geometry in a 12×18 glyph box anchored at (8, 5).
    let (x0, y0, w, h) = (8i32 + dx, 5i32 + dy, 12i32, 18i32);
    let mid = y0 + h / 2;
    let mut hline = |y: i32, from: i32, to: i32| {
        for t in 0..2i32 {
            for x in from..=to {
                set_px(img, size, x, y + t, intensity);
            }
        }
    };
    let mut stored: Vec<(i32, i32, i32)> = Vec::new(); // vertical lines (x, y_from, y_to)
    let seg = SEGMENTS[digit];
    if seg[0] {
        hline(y0, x0, x0 + w);
    }
    if seg[3] {
        hline(y0 + h, x0, x0 + w);
    }
    if seg[6] {
        hline(mid, x0, x0 + w);
    }
    if seg[1] {
        stored.push((x0 + w, y0, mid));
    }
    if seg[2] {
        stored.push((x0 + w, mid, y0 + h));
    }
    if seg[4] {
        stored.push((x0, mid, y0 + h));
    }
    if seg[5] {
        stored.push((x0, y0, mid));
    }
    for (x, from, to) in stored {
        for t in 0..2i32 {
            for y in from..=to {
                set_px(img, size, x + t, y, intensity);
            }
        }
    }
}

fn set_px(img: &mut [f32], size: usize, x: i32, y: i32, v: f32) {
    if x >= 0 && y >= 0 && (x as usize) < size && (y as usize) < size {
        img[y as usize * size + x as usize] = v;
    }
}

/// Procedural multi-class texture images: each class is a distinct
/// combination of grating orientation, spatial frequency and RGB tint, with
/// per-sample random phase and additive noise. This is the CIFAR-10/100
/// stand-in (`size = 32`) and, at `size = 64`, the Tiny-ImageNet stand-in.
///
/// # Panics
///
/// Panics if `classes == 0` or `size == 0`.
pub fn synthetic_textures<R: Rng>(
    rng: &mut R,
    n: usize,
    classes: usize,
    size: usize,
) -> InMemoryDataset {
    assert!(classes > 0 && size > 0, "classes and size must be non-zero");
    let mut data = vec![0.0f32; n * 3 * size * size];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        labels.push(class);
        // Deterministic per-class signature.
        let h = class.wrapping_mul(2654435761) % 997;
        let theta = std::f32::consts::PI * (h % 180) as f32 / 180.0;
        let freq = 1.5 + (h % 7) as f32;
        let tint = [
            0.4 + 0.6 * ((h % 11) as f32 / 10.0),
            0.4 + 0.6 * ((h % 13) as f32 / 12.0),
            0.4 + 0.6 * ((h % 17) as f32 / 16.0),
        ];
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let (s, c) = (theta.sin(), theta.cos());
        let img = &mut data[i * 3 * size * size..(i + 1) * 3 * size * size];
        for ch in 0..3 {
            for y in 0..size {
                for x in 0..size {
                    let u = (x as f32 * c + y as f32 * s) / size as f32;
                    let wave = (std::f32::consts::TAU * freq * u + phase).sin();
                    let v = 0.45 * tint[ch] * wave + rng.gen_range(-0.06..0.06);
                    img[(ch * size + y) * size + x] = v;
                }
            }
        }
    }
    let images =
        Tensor::from_vec(data, &[n, 3, size, size]).expect("sized by construction");
    InMemoryDataset::new(images, labels, classes)
}

/// CIFAR-shaped synthetic dataset (32×32 RGB). `classes` is 10 or 100 for
/// the paper's experiments but any positive count works.
pub fn synthetic_cifar<R: Rng>(rng: &mut R, n: usize, classes: usize) -> InMemoryDataset {
    synthetic_textures(rng, n, classes, 32)
}

/// Tiny-ImageNet-shaped synthetic dataset (64×64 RGB, paper: 200 classes).
pub fn synthetic_tiny_imagenet<R: Rng>(
    rng: &mut R,
    n: usize,
    classes: usize,
) -> InMemoryDataset {
    synthetic_textures(rng, n, classes, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mnist_shapes_and_balance() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = synthetic_mnist(&mut rng, 50);
        assert_eq!(d.len(), 50);
        assert_eq!(d.classes(), 10);
        assert_eq!(d.image_dims(), (1, 28, 28));
        // balanced round-robin
        for c in 0..10 {
            assert_eq!(d.labels().iter().filter(|&&l| l == c).count(), 5);
        }
        // values are centred
        assert!(d.images().data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
    }

    #[test]
    fn different_digits_have_different_mean_images() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = synthetic_mnist(&mut rng, 100);
        let mean_of = |digit: usize| -> Vec<f32> {
            let mut acc = vec![0.0f32; 28 * 28];
            let mut count = 0;
            for i in 0..d.len() {
                if d.labels()[i] == digit {
                    for (a, &v) in acc.iter_mut().zip(d.image(i).data()) {
                        *a += v;
                    }
                    count += 1;
                }
            }
            acc.iter().map(|v| v / count as f32).collect()
        };
        let m1 = mean_of(1);
        let m8 = mean_of(8);
        let diff: f32 = m1.iter().zip(&m8).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 5.0, "digit templates barely differ: {diff}");
    }

    #[test]
    fn textures_have_distinct_class_signatures() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = synthetic_cifar(&mut rng, 40, 10);
        assert_eq!(d.image_dims(), (3, 32, 32));
        // correlation between two images of the same class should exceed
        // correlation across classes on average (same orientation/freq)
        let img = |i: usize| d.image(i).into_vec();
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let n = a.len() as f32;
            let (ma, mb) = (
                a.iter().sum::<f32>() / n,
                b.iter().sum::<f32>() / n,
            );
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for (&x, &y) in a.iter().zip(b) {
                num += (x - ma) * (y - mb);
                da += (x - ma) * (x - ma);
                db += (y - mb) * (y - mb);
            }
            num / (da.sqrt() * db.sqrt() + 1e-9)
        };
        // samples 0 and 10 share class 0; 0 and 1 differ
        let same = corr(&img(0), &img(10)).abs();
        let diff = corr(&img(0), &img(1)).abs();
        assert!(
            same > diff,
            "same-class correlation {same} not above cross-class {diff}"
        );
    }

    #[test]
    fn tiny_imagenet_is_64px() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = synthetic_tiny_imagenet(&mut rng, 8, 4);
        assert_eq!(d.image_dims(), (3, 64, 64));
        assert_eq!(d.classes(), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_classes_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = synthetic_textures(&mut rng, 4, 0, 8);
    }
}

use crate::dataset::ParseDataError;
use crate::InMemoryDataset;
use pecan_tensor::Tensor;

const PIXELS: usize = 3 * 32 * 32;

fn decode_records(
    bytes: &[u8],
    label_bytes: usize,
    label_offset: usize,
    classes: usize,
) -> Result<InMemoryDataset, ParseDataError> {
    let record = label_bytes + PIXELS;
    if bytes.is_empty() || bytes.len() % record != 0 {
        return Err(ParseDataError::new(format!(
            "CIFAR payload of {} bytes is not a multiple of the {record}-byte record",
            bytes.len()
        )));
    }
    let n = bytes.len() / record;
    let mut data = Vec::with_capacity(n * PIXELS);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let rec = &bytes[r * record..(r + 1) * record];
        let label = rec[label_offset] as usize;
        if label >= classes {
            return Err(ParseDataError::new(format!(
                "label {label} out of range for {classes} classes"
            )));
        }
        labels.push(label);
        // CIFAR stores channel-planar RGB already matching [C, H, W].
        data.extend(rec[label_bytes..].iter().map(|&b| b as f32 / 255.0 - 0.5));
    }
    let images = Tensor::from_vec(data, &[n, 3, 32, 32])
        .map_err(|e| ParseDataError::new(e.message().to_string()))?;
    Ok(InMemoryDataset::new(images, labels, classes))
}

/// Parses a CIFAR-10 binary batch (`data_batch_*.bin`): records of 1 label
/// byte + 3072 channel-planar pixels, normalised to `[-0.5, 0.5]`.
///
/// # Errors
///
/// Returns [`ParseDataError`] when the buffer is not a whole number of
/// records or a label exceeds 9.
pub fn parse_cifar10(bytes: &[u8]) -> Result<InMemoryDataset, ParseDataError> {
    decode_records(bytes, 1, 0, 10)
}

/// Parses a CIFAR-100 binary file (`train.bin`): records of 1 coarse + 1
/// fine label byte + 3072 pixels; the **fine** label (100 classes) is used,
/// matching the paper's CIFAR-100 experiments.
///
/// # Errors
///
/// Returns [`ParseDataError`] when the buffer is not a whole number of
/// records or a fine label exceeds 99.
pub fn parse_cifar100(bytes: &[u8]) -> Result<InMemoryDataset, ParseDataError> {
    decode_records(bytes, 2, 1, 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record10(label: u8) -> Vec<u8> {
        let mut r = vec![label];
        r.extend((0..PIXELS).map(|i| (i % 251) as u8));
        r
    }

    #[test]
    fn parses_cifar10_records() {
        let mut bytes = record10(3);
        bytes.extend(record10(9));
        let d = parse_cifar10(&bytes).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), &[3, 9]);
        assert_eq!(d.image_dims(), (3, 32, 32));
        // normalisation to [-0.5, 0.5]
        assert!(d.images().data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
    }

    #[test]
    fn parses_cifar100_fine_labels() {
        let mut bytes = vec![5u8, 77]; // coarse 5, fine 77
        bytes.extend(vec![0u8; PIXELS]);
        let d = parse_cifar100(&bytes).unwrap();
        assert_eq!(d.labels(), &[77]);
        assert_eq!(d.classes(), 100);
    }

    #[test]
    fn rejects_bad_payloads() {
        assert!(parse_cifar10(&[]).is_err());
        assert!(parse_cifar10(&[0u8; 100]).is_err());
        let mut bytes = record10(10); // label 10 is out of range
        bytes[0] = 10;
        assert!(parse_cifar10(&bytes).is_err());
    }
}

use crate::InMemoryDataset;
use pecan_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Chops a dataset into `[N, C, H, W]` mini-batches with optional
/// shuffling; a trailing partial batch is kept.
///
/// Returns `(images, labels)` pairs ready for `pecan_nn::Batch::new`.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn make_batches<R: Rng>(
    dataset: &InMemoryDataset,
    batch_size: usize,
    shuffle: Option<&mut R>,
) -> Vec<(Tensor, Vec<usize>)> {
    assert!(batch_size > 0, "batch size must be non-zero");
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    if let Some(rng) = shuffle {
        order.shuffle(rng);
    }
    let (c, h, w) = dataset.image_dims();
    let img_len = c * h * w;
    let mut out = Vec::new();
    for chunk in order.chunks(batch_size) {
        let mut images = Tensor::zeros(&[chunk.len(), c, h, w]);
        let mut labels = Vec::with_capacity(chunk.len());
        for (slot, &i) in chunk.iter().enumerate() {
            images.data_mut()[slot * img_len..(slot + 1) * img_len]
                .copy_from_slice(&dataset.images().data()[i * img_len..(i + 1) * img_len]);
            labels.push(dataset.labels()[i]);
        }
        out.push((images, labels));
    }
    out
}

/// Horizontally flips each image in a `[N, C, H, W]` batch with
/// probability 1/2 — the standard CIFAR augmentation.
///
/// # Panics
///
/// Panics if `images` is not rank 4.
pub fn random_flip<R: Rng>(images: &Tensor, rng: &mut R) -> Tensor {
    let dims = images.dims();
    assert_eq!(dims.len(), 4, "random_flip expects [N, C, H, W]");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let mut out = images.clone();
    for i in 0..n {
        if rng.gen_bool(0.5) {
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w / 2 {
                        let a = ((i * c + ch) * h + y) * w + x;
                        let b = ((i * c + ch) * h + y) * w + (w - 1 - x);
                        out.data_mut().swap(a, b);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic_mnist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_cover_all_examples_once() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = synthetic_mnist(&mut rng, 25);
        let batches = make_batches(&d, 8, Some(&mut rng));
        assert_eq!(batches.len(), 4); // 8+8+8+1
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 25);
        let mut label_counts = [0usize; 10];
        for (_, labels) in &batches {
            for &l in labels {
                label_counts[l] += 1;
            }
        }
        assert_eq!(label_counts.iter().sum::<usize>(), 25);
    }

    #[test]
    fn unshuffled_batches_preserve_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = synthetic_mnist(&mut rng, 12);
        let batches = make_batches::<StdRng>(&d, 5, None);
        assert_eq!(batches[0].1, d.labels()[..5]);
        assert_eq!(batches[2].1.len(), 2);
    }

    #[test]
    fn flip_is_an_involution_on_deterministic_coin() {
        let images = Tensor::from_vec(
            (0..2 * 4).map(|v| v as f32).collect(),
            &[1, 1, 2, 4],
        )
        .unwrap();
        // flip twice with the same seed → every image flipped the same way
        // twice → identity
        let once = random_flip(&images, &mut StdRng::seed_from_u64(7));
        let twice = random_flip(&once, &mut StdRng::seed_from_u64(7));
        assert_eq!(twice, images);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_batch_size_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = synthetic_mnist(&mut rng, 4);
        let _ = make_batches::<StdRng>(&d, 0, None);
    }
}

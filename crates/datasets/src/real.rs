//! Opt-in real-dataset fixtures: load the actual MNIST IDX files when the
//! operator has them on disk, skip cleanly when not.
//!
//! The experiment suite runs on synthetic stand-ins by default so CI and
//! laptops need no downloads. For accuracy-reproduction runs against the
//! real data, point [`PECAN_DATA_DIR`] at a directory holding the four
//! **decompressed** MNIST IDX files and use [`load_mnist`]; tests built on
//! it call [`mnist_dir`] first and return early (with a note on stderr)
//! when the fixture is absent — present data is exercised, absent data is
//! never an error.

use crate::dataset::ParseDataError;
use crate::idx::{parse_idx_images, parse_idx_labels};
use pecan_tensor::Tensor;
use std::path::{Path, PathBuf};

/// Environment variable naming the real-dataset directory.
pub const PECAN_DATA_DIR: &str = "PECAN_DATA_DIR";

/// The four decompressed MNIST IDX file names [`load_mnist`] expects
/// (train/test images and labels, the canonical distribution names).
pub const MNIST_FILES: [&str; 4] = [
    "train-images-idx3-ubyte",
    "train-labels-idx1-ubyte",
    "t10k-images-idx3-ubyte",
    "t10k-labels-idx1-ubyte",
];

/// The full MNIST dataset parsed from the real IDX files.
#[derive(Debug)]
pub struct Mnist {
    /// Training images, `[n, 1, 28, 28]`, pixels in `[0, 1]`.
    pub train_images: Tensor,
    /// Training labels, one digit per image.
    pub train_labels: Vec<usize>,
    /// Test images, `[n, 1, 28, 28]`.
    pub test_images: Tensor,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

/// The directory `PECAN_DATA_DIR` points at, when it is set **and** holds
/// every MNIST file — the "download-or-skip" gate for real-data tests.
pub fn mnist_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os(PECAN_DATA_DIR)?);
    MNIST_FILES
        .iter()
        .all(|f| dir.join(f).is_file())
        .then_some(dir)
}

/// Loads and validates the four MNIST IDX files from `dir`.
///
/// # Errors
///
/// Returns [`ParseDataError`] when a file is missing/unreadable, fails
/// IDX parsing, or the train/test splits disagree with each other
/// (image/label count mismatch, labels outside 0–9).
pub fn load_mnist(dir: impl AsRef<Path>) -> Result<Mnist, ParseDataError> {
    let dir = dir.as_ref();
    let read = |name: &str| -> Result<Vec<u8>, ParseDataError> {
        std::fs::read(dir.join(name)).map_err(|e| {
            ParseDataError::new(format!("{}: {e}", dir.join(name).display()))
        })
    };
    let train_images = parse_idx_images(&read(MNIST_FILES[0])?)?;
    let train_labels = parse_idx_labels(&read(MNIST_FILES[1])?)?;
    let test_images = parse_idx_images(&read(MNIST_FILES[2])?)?;
    let test_labels = parse_idx_labels(&read(MNIST_FILES[3])?)?;
    for (what, images, labels) in [
        ("train", &train_images, &train_labels),
        ("test", &test_images, &test_labels),
    ] {
        if images.dims()[0] != labels.len() {
            return Err(ParseDataError::new(format!(
                "{what}: {} images but {} labels",
                images.dims()[0],
                labels.len()
            )));
        }
        if images.dims()[2..] != [28, 28] {
            return Err(ParseDataError::new(format!(
                "{what}: images are {:?}, expected 28×28",
                &images.dims()[2..]
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l > 9) {
            return Err(ParseDataError::new(format!(
                "{what}: label {bad} outside 0–9"
            )));
        }
    }
    Ok(Mnist { train_images, train_labels, test_images, test_labels })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx_images(n: usize) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend(0x0803u32.to_be_bytes());
        b.extend((n as u32).to_be_bytes());
        b.extend(28u32.to_be_bytes());
        b.extend(28u32.to_be_bytes());
        b.extend((0..n * 28 * 28).map(|i| (i % 251) as u8));
        b
    }

    fn idx_labels(labels: &[u8]) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend(0x0801u32.to_be_bytes());
        b.extend((labels.len() as u32).to_be_bytes());
        b.extend(labels);
        b
    }

    /// `load_mnist` against a synthetic on-disk fixture with the real
    /// layout — validates the loader without shipping 50 MB of data.
    #[test]
    fn loads_idx_files_with_mnist_layout() {
        let dir = std::env::temp_dir().join(format!("pecan-mnist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MNIST_FILES[0]), idx_images(3)).unwrap();
        std::fs::write(dir.join(MNIST_FILES[1]), idx_labels(&[0, 7, 9])).unwrap();
        std::fs::write(dir.join(MNIST_FILES[2]), idx_images(2)).unwrap();
        std::fs::write(dir.join(MNIST_FILES[3]), idx_labels(&[3, 1])).unwrap();
        let m = load_mnist(&dir).unwrap();
        assert_eq!(m.train_images.dims(), &[3, 1, 28, 28]);
        assert_eq!(m.train_labels, vec![0, 7, 9]);
        assert_eq!(m.test_images.dims(), &[2, 1, 28, 28]);
        assert_eq!(m.test_labels, vec![3, 1]);

        // count mismatch between images and labels is typed
        std::fs::write(dir.join(MNIST_FILES[1]), idx_labels(&[0, 7])).unwrap();
        assert!(load_mnist(&dir).is_err());
        // out-of-range label is typed
        std::fs::write(dir.join(MNIST_FILES[1]), idx_labels(&[0, 7, 12])).unwrap();
        assert!(load_mnist(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
        // missing files are typed I/O errors, not panics
        assert!(load_mnist(&dir).is_err());
    }
}

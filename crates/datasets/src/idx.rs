use crate::dataset::ParseDataError;
use pecan_tensor::Tensor;

const IMAGES_MAGIC: u32 = 0x0000_0803;
const LABELS_MAGIC: u32 = 0x0000_0801;

fn read_u32(bytes: &[u8], offset: usize) -> Result<u32, ParseDataError> {
    let chunk: [u8; 4] = bytes
        .get(offset..offset + 4)
        .ok_or_else(|| ParseDataError::new("truncated IDX header"))?
        .try_into()
        .expect("4-byte slice");
    Ok(u32::from_be_bytes(chunk))
}

/// Parses an MNIST `train-images-idx3-ubyte`-style buffer into a
/// `[N, 1, rows, cols]` tensor with pixels normalised to `[0, 1]`.
///
/// # Errors
///
/// Returns [`ParseDataError`] on a wrong magic number or truncated payload.
///
/// # Example
///
/// ```
/// // a 1-image, 2×2 IDX buffer built by hand
/// let mut bytes = vec![];
/// bytes.extend(0x0803u32.to_be_bytes()); // magic
/// bytes.extend(1u32.to_be_bytes());      // count
/// bytes.extend(2u32.to_be_bytes());      // rows
/// bytes.extend(2u32.to_be_bytes());      // cols
/// bytes.extend([0u8, 128, 255, 64]);
/// let t = pecan_datasets::parse_idx_images(&bytes).expect("valid IDX");
/// assert_eq!(t.dims(), &[1, 1, 2, 2]);
/// assert!((t.data()[2] - 1.0).abs() < 1e-6);
/// ```
pub fn parse_idx_images(bytes: &[u8]) -> Result<Tensor, ParseDataError> {
    let magic = read_u32(bytes, 0)?;
    if magic != IMAGES_MAGIC {
        return Err(ParseDataError::new(format!(
            "bad IDX image magic {magic:#010x}, expected {IMAGES_MAGIC:#010x}"
        )));
    }
    let n = read_u32(bytes, 4)? as usize;
    let rows = read_u32(bytes, 8)? as usize;
    let cols = read_u32(bytes, 12)? as usize;
    let expected = 16 + n * rows * cols;
    if bytes.len() != expected {
        return Err(ParseDataError::new(format!(
            "IDX image payload is {} bytes, expected {expected}",
            bytes.len()
        )));
    }
    let data: Vec<f32> = bytes[16..].iter().map(|&b| b as f32 / 255.0).collect();
    Tensor::from_vec(data, &[n, 1, rows, cols])
        .map_err(|e| ParseDataError::new(e.message().to_string()))
}

/// Parses an MNIST `labels-idx1-ubyte`-style buffer.
///
/// # Errors
///
/// Returns [`ParseDataError`] on a wrong magic number or truncated payload.
pub fn parse_idx_labels(bytes: &[u8]) -> Result<Vec<usize>, ParseDataError> {
    let magic = read_u32(bytes, 0)?;
    if magic != LABELS_MAGIC {
        return Err(ParseDataError::new(format!(
            "bad IDX label magic {magic:#010x}, expected {LABELS_MAGIC:#010x}"
        )));
    }
    let n = read_u32(bytes, 4)? as usize;
    if bytes.len() != 8 + n {
        return Err(ParseDataError::new(format!(
            "IDX label payload is {} bytes, expected {}",
            bytes.len(),
            8 + n
        )));
    }
    Ok(bytes[8..].iter().map(|&b| b as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_buffer(n: usize, rows: usize, cols: usize) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend(IMAGES_MAGIC.to_be_bytes());
        b.extend((n as u32).to_be_bytes());
        b.extend((rows as u32).to_be_bytes());
        b.extend((cols as u32).to_be_bytes());
        b.extend((0..n * rows * cols).map(|i| (i % 256) as u8));
        b
    }

    #[test]
    fn parses_images_with_normalisation() {
        let t = parse_idx_images(&image_buffer(3, 4, 5)).unwrap();
        assert_eq!(t.dims(), &[3, 1, 4, 5]);
        assert!(t.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(t.data()[0], 0.0);
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let mut b = image_buffer(1, 2, 2);
        b[3] = 0x01; // corrupt magic
        assert!(parse_idx_images(&b).is_err());
        let mut b = image_buffer(1, 2, 2);
        b.pop();
        assert!(parse_idx_images(&b).is_err());
        assert!(parse_idx_images(&[1, 2]).is_err());
    }

    #[test]
    fn parses_labels() {
        let mut b = Vec::new();
        b.extend(LABELS_MAGIC.to_be_bytes());
        b.extend(4u32.to_be_bytes());
        b.extend([7u8, 0, 9, 3]);
        assert_eq!(parse_idx_labels(&b).unwrap(), vec![7, 0, 9, 3]);
        b.push(0);
        assert!(parse_idx_labels(&b).is_err());
    }
}

//! Dataset substrate for the PECAN reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10/100 and Tiny-ImageNet. This crate
//! provides:
//!
//! * parsers for the real on-disk formats — MNIST **IDX**
//!   ([`parse_idx_images`]/[`parse_idx_labels`]) and the **CIFAR binary**
//!   records ([`parse_cifar10`]/[`parse_cifar100`]) — used automatically
//!   when the files are present;
//! * **synthetic stand-ins** ([`synthetic_mnist`], [`synthetic_cifar`],
//!   [`synthetic_tiny_imagenet`]) with the same shapes, class structure and
//!   label semantics, generated procedurally so the full experiment suite
//!   runs on a machine without the datasets. The substitution is recorded
//!   in `DESIGN.md` §2: PECAN's claims are *relative* accuracies between
//!   baseline / PECAN-A / PECAN-D on the same data, which the synthetic
//!   tasks exercise through identical code paths;
//! * batching/shuffling and light augmentation ([`make_batches`],
//!   [`random_flip`]);
//! * an **opt-in real-data fixture** ([`load_mnist`], gated on the
//!   [`PECAN_DATA_DIR`] environment variable via [`mnist_dir`]): tests and
//!   accuracy runs use the genuine MNIST files when present and skip
//!   cleanly when not.
//!
//! # Example
//!
//! ```
//! use pecan_datasets::{synthetic_mnist, make_batches};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = synthetic_mnist(&mut rng, 64);
//! let batches = make_batches(&data, 16, Some(&mut rng));
//! assert_eq!(batches.len(), 4);
//! assert_eq!(batches[0].0.dims(), &[16, 1, 28, 28]);
//! ```

#![forbid(unsafe_code)]

mod cifar;
mod dataset;
mod idx;
mod loader;
mod real;
mod synthetic;

pub use cifar::{parse_cifar10, parse_cifar100};
pub use dataset::{InMemoryDataset, ParseDataError};
pub use idx::{parse_idx_images, parse_idx_labels};
pub use loader::{make_batches, random_flip};
pub use real::{load_mnist, mnist_dir, Mnist, MNIST_FILES, PECAN_DATA_DIR};
pub use synthetic::{
    synthetic_cifar, synthetic_mnist, synthetic_textures, synthetic_tiny_imagenet,
};

use pecan_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Error produced when a dataset file does not match its declared format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataError {
    message: String,
}

impl ParseDataError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Human-readable description of the format violation.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseDataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dataset parse error: {}", self.message)
    }
}

impl Error for ParseDataError {}

/// A labelled image-classification dataset held in memory.
///
/// Images are stored as one flat `[N, C, H, W]` tensor with values already
/// normalised to roughly zero mean / unit range.
#[derive(Debug, Clone, PartialEq)]
pub struct InMemoryDataset {
    images: Tensor, // [N, C, H, W]
    labels: Vec<usize>,
    classes: usize,
}

impl InMemoryDataset {
    /// Wraps already-validated storage.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank 4, the label count differs from `N`,
    /// or any label is `>= classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(images.dims().len(), 4, "images must be [N, C, H, W]");
        assert_eq!(images.dims()[0], labels.len(), "one label per image");
        assert!(
            labels.iter().all(|&l| l < classes),
            "labels must be below the class count"
        );
        Self { images, labels, classes }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// `[C, H, W]` of each image.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        let d = self.images.dims();
        (d[1], d[2], d[3])
    }

    /// The full `[N, C, H, W]` tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies example `i` into its own `[C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> Tensor {
        let (c, h, w) = self.image_dims();
        let len = c * h * w;
        Tensor::from_vec(self.images.data()[i * len..(i + 1) * len].to_vec(), &[c, h, w])
            .expect("slice length matches by construction")
    }

    /// Splits into `(first_n, rest)` — e.g. train/test.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn split(&self, n: usize) -> (InMemoryDataset, InMemoryDataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let (c, h, w) = self.image_dims();
        let len = c * h * w;
        let head = Tensor::from_vec(self.images.data()[..n * len].to_vec(), &[n, c, h, w])
            .expect("sized by construction");
        let tail = Tensor::from_vec(
            self.images.data()[n * len..].to_vec(),
            &[self.len() - n, c, h, w],
        )
        .expect("sized by construction");
        (
            InMemoryDataset::new(head, self.labels[..n].to_vec(), self.classes),
            InMemoryDataset::new(tail, self.labels[n..].to_vec(), self.classes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InMemoryDataset {
        let images = Tensor::from_vec((0..2 * 12).map(|v| v as f32).collect(), &[2, 3, 2, 2])
            .unwrap();
        InMemoryDataset::new(images, vec![0, 1], 2)
    }

    #[test]
    fn accessors_report_shape() {
        let d = tiny();
        assert_eq!(d.len(), 2);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.image_dims(), (3, 2, 2));
        assert_eq!(d.image(1).dims(), &[3, 2, 2]);
        assert_eq!(d.image(1).data()[0], 12.0);
    }

    #[test]
    fn split_partitions_examples() {
        let d = tiny();
        let (a, b) = d.split(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.labels(), &[1]);
        assert_eq!(b.image(0).data()[0], 12.0);
    }

    #[test]
    #[should_panic(expected = "one label per image")]
    fn label_count_must_match() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        let _ = InMemoryDataset::new(images, vec![0], 2);
    }

    #[test]
    #[should_panic(expected = "below the class count")]
    fn labels_must_be_in_range() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = InMemoryDataset::new(images, vec![5], 2);
    }
}

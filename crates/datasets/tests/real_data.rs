//! Opt-in real-MNIST fixture: exercises the IDX parsers against the
//! genuine files when `PECAN_DATA_DIR` holds them, and **skips cleanly**
//! (passing, with a note on stderr) when it does not — CI restores a
//! cached copy when available, laptops without the data lose nothing.

use pecan_datasets::{load_mnist, mnist_dir, PECAN_DATA_DIR};

#[test]
fn real_mnist_parses_when_present() {
    let Some(dir) = mnist_dir() else {
        eprintln!(
            "skipping: set {PECAN_DATA_DIR} to a directory holding the four \
             decompressed MNIST IDX files to run the real-data fixture"
        );
        return;
    };
    let m = load_mnist(&dir).expect("real MNIST files must parse");

    // The canonical distribution: 60k train / 10k test, 28×28, 10 classes.
    assert_eq!(m.train_images.dims(), &[60_000, 1, 28, 28]);
    assert_eq!(m.train_labels.len(), 60_000);
    assert_eq!(m.test_images.dims(), &[10_000, 1, 28, 28]);
    assert_eq!(m.test_labels.len(), 10_000);

    // Pixels normalised into [0, 1], with real ink (not all zeros).
    for (what, images) in [("train", &m.train_images), ("test", &m.test_images)] {
        assert!(
            images.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "{what}: pixel outside [0, 1]"
        );
        let mean: f32 = images.data().iter().sum::<f32>() / images.len() as f32;
        assert!(
            (0.05..0.5).contains(&mean),
            "{what}: mean intensity {mean} is not MNIST-like"
        );
    }

    // Every digit class appears in both splits.
    for labels in [&m.train_labels, &m.test_labels] {
        let mut seen = [false; 10];
        for &l in labels.iter() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "a digit class is missing");
    }

    // And the data is consumable by the training loader downstream.
    let data = pecan_datasets::InMemoryDataset::new(
        m.test_images.clone(),
        m.test_labels.clone(),
        10,
    );
    let batches =
        pecan_datasets::make_batches::<rand::rngs::StdRng>(&data, 256, None);
    assert_eq!(batches.len(), 10_000usize.div_ceil(256));
    assert_eq!(batches[0].0.dims(), &[256, 1, 28, 28]);
    eprintln!("real MNIST fixture: parsed and validated from {}", dir.display());
}

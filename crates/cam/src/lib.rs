//! Behavioural content-addressable-memory (CAM) simulator.
//!
//! PECAN's hardware story (§1, §6) is that inference reduces to a CAM-style
//! similarity search — "which stored prototype best matches this query?" —
//! followed by a read from a precomputed lookup table. This crate models
//! that hardware:
//!
//! * [`AnalogCam`] — an analog CAM array that returns the row with the
//!   smallest L1 distance to the query (the winner-take-all match an RRAM
//!   crossbar performs), with optional per-cell Gaussian device noise;
//! * [`DotProductCam`] — the multiplicative counterpart used by PECAN-A;
//! * [`LookupTable`] — the `cout × p` quantized-product memory of
//!   Fig. 1(c) / Algorithm 1;
//! * [`CostModel`] — the cycle/power model of §4.3 (Intel VIA Nano 2000:
//!   float multiply = 4 cycles and 4× the power of a 2-cycle add), used to
//!   regenerate Table 5;
//! * [`fixed`] — an integer-only (int16 query / int32 accumulate) pipeline
//!   demonstrating that PECAN-D needs no floating-point multiplier at all.
//!
//! Batch workloads ([`AnalogCam::search_batch`], [`fixed::FixedCam::search_batch`],
//! [`AnalogCam::search_columns`] and the batch-first serving entry point
//! [`AnalogCam::search_strided`], which reads each codebook group's
//! queries straight out of a column-major `[features, batch]` activation
//! buffer) run on the blocked scan kernel from [`pecan_index`], which also
//! provides non-exhaustive indexed search over the same prototype arrays;
//! all paths return identical winners.
//!
//! # Example
//!
//! ```
//! use pecan_cam::AnalogCam;
//! use pecan_tensor::Tensor;
//!
//! # fn main() -> Result<(), pecan_tensor::ShapeError> {
//! // two stored prototypes of dimension 3 (rows of the array)
//! let cam = AnalogCam::new(Tensor::from_vec(
//!     vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[2, 3])?)?;
//! assert_eq!(cam.search(&[0.9, 1.1, 1.0])?.row, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod analog;
mod cost;
pub mod fixed;
mod lut;

pub use analog::{AnalogCam, DotProductCam, SearchResult};
pub use cost::{CostModel, OpCounts};
pub use lut::LookupTable;

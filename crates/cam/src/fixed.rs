//! Integer-only (fixed-point) CAM pipeline.
//!
//! PECAN-D's claim is a *truly multiplier-free* network. Floating-point
//! hardware still multiplies inside rounding/normalisation, so this module
//! demonstrates the claim end-to-end in integer arithmetic: queries and
//! prototypes quantize to `i16` with a power-of-two scale (a bit shift, not
//! a multiply), the L1 search runs in `i32` subtract/abs/accumulate, and the
//! lookup table accumulates in `i64`. The only "scaling" anywhere is a final
//! right-shift.

use pecan_tensor::{ShapeError, Tensor};

/// Power-of-two fixed-point quantizer: `q = round(x · 2^shift)` clamped to
/// `i16`. Using a power of two keeps de/quantization multiplier-free (bit
/// shifts only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    shift: u32,
}

impl Quantizer {
    /// Creates a quantizer with scale `2^shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift > 14` (would overflow i16 for inputs near ±1).
    pub fn new(shift: u32) -> Self {
        assert!(shift <= 14, "shift {shift} too large for i16 quantization");
        Self { shift }
    }

    /// The scale exponent.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Quantizes one value.
    pub fn quantize(&self, x: f32) -> i16 {
        let scaled = x * (1u32 << self.shift) as f32;
        scaled.round().clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }

    /// Dequantizes one value (right shift in hardware).
    pub fn dequantize(&self, q: i64) -> f32 {
        q as f32 / (1u64 << self.shift) as f32
    }

    /// Quantizes a tensor row-major into `i16`.
    pub fn quantize_all(&self, t: &Tensor) -> Vec<i16> {
        t.data().iter().map(|&v| self.quantize(v)).collect()
    }
}

/// An integer analog-CAM: stored `i16` rows, L1 winner-take-all in `i32`.
#[derive(Debug, Clone)]
pub struct FixedCam {
    rows: Vec<i16>, // flat [p, d], row-major
    width: usize,
}

impl FixedCam {
    /// Programs the array by quantizing `rows` (`[p, d]`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is not a non-empty rank-2 tensor.
    pub fn from_tensor(rows: &Tensor, quantizer: Quantizer) -> Result<Self, ShapeError> {
        rows.shape().expect_rank(2)?;
        let (p, d) = (rows.dims()[0], rows.dims()[1]);
        if p == 0 || d == 0 {
            return Err(ShapeError::new("fixed CAM must be non-empty"));
        }
        let stored = rows.data().iter().map(|&v| quantizer.quantize(v)).collect();
        Ok(Self { rows: stored, width: d })
    }

    /// Number of stored prototypes.
    pub fn entries(&self) -> usize {
        self.rows.len() / self.width
    }

    /// Prototype width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Integer L1 nearest-match: returns `(winning row, L1 distance)`.
    /// Subtraction, absolute value and accumulation only — no multiplier;
    /// runs on the shared `pecan-index` scan instantiated at `i16`/`i32`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the query width mismatches.
    pub fn search(&self, query: &[i16]) -> Result<(usize, i32), ShapeError> {
        if query.len() != self.width {
            return Err(ShapeError::new(format!(
                "query width {} does not match CAM width {}",
                query.len(),
                self.width
            )));
        }
        Ok(pecan_index::l1_argmin(&self.rows, self.width, query))
    }

    /// Batched integer nearest-match over query-major queries (`[q·d]`):
    /// the blocked `pecan-index` kernel instantiated at `i16`/`i32`, so the
    /// whole batch stays multiplier-free while each stored cell is loaded
    /// once per [`pecan_index::LANES`] queries. Winners and distances are
    /// identical to calling [`FixedCam::search`] per query.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `queries.len()` is not a multiple of `d`.
    pub fn search_batch(&self, queries: &[i16]) -> Result<Vec<(usize, i32)>, ShapeError> {
        if queries.len() % self.width != 0 {
            return Err(ShapeError::new(format!(
                "query buffer of {} is not a multiple of CAM width {}",
                queries.len(),
                self.width
            )));
        }
        Ok(pecan_index::l1_argmin_batch(&self.rows, self.width, queries))
    }
}

/// Integer lookup table: `i32` entries accumulated in `i64`.
#[derive(Debug, Clone)]
pub struct FixedLut {
    table: Vec<Vec<i32>>, // [p][cout]
    outputs: usize,
    quantizer: Quantizer,
}

impl FixedLut {
    /// Quantizes a float `[cout, p]` table.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `table` is not a non-empty rank-2 tensor.
    pub fn from_tensor(table: &Tensor, quantizer: Quantizer) -> Result<Self, ShapeError> {
        table.shape().expect_rank(2)?;
        let (cout, p) = (table.dims()[0], table.dims()[1]);
        if cout == 0 || p == 0 {
            return Err(ShapeError::new("fixed LUT must be non-empty"));
        }
        let scale = (1u32 << quantizer.shift()) as f32;
        let mut cols = vec![vec![0i32; cout]; p];
        for m in 0..p {
            for o in 0..cout {
                cols[m][o] = (table.get2(o, m) * scale).round() as i32;
            }
        }
        Ok(Self { table: cols, outputs: cout, quantizer })
    }

    /// Number of addressable entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Adds entry `m` into the integer accumulator (pure additions).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `m` or the accumulator size is wrong.
    pub fn accumulate(&self, m: usize, acc: &mut [i64]) -> Result<(), ShapeError> {
        if m >= self.table.len() {
            return Err(ShapeError::new(format!(
                "LUT entry {m} out of range for {} entries",
                self.table.len()
            )));
        }
        if acc.len() != self.outputs {
            return Err(ShapeError::new(format!(
                "accumulator of {} for {} outputs",
                acc.len(),
                self.outputs
            )));
        }
        for (a, &v) in acc.iter_mut().zip(&self.table[m]) {
            *a += v as i64;
        }
        Ok(())
    }

    /// Converts an integer accumulator back to floats (right shift).
    pub fn dequantize(&self, acc: &[i64]) -> Vec<f32> {
        acc.iter().map(|&v| self.quantizer.dequantize(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalogCam;

    #[test]
    fn quantizer_roundtrip_error_is_bounded() {
        let q = Quantizer::new(10);
        for &x in &[0.0f32, 0.5, -0.3, 1.25, -7.9] {
            let back = q.dequantize(q.quantize(x) as i64);
            assert!((back - x).abs() <= 1.0 / 1024.0, "x={x}, back={back}");
        }
        assert_eq!(q.shift(), 10);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn quantizer_rejects_huge_shift() {
        let _ = Quantizer::new(15);
    }

    #[test]
    fn fixed_search_agrees_with_float_cam() {
        let rows = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 0.8, 0.8, 0.8, -0.5, 0.5, -0.5],
            &[3, 3],
        )
        .unwrap();
        let q = Quantizer::new(12);
        let fixed = FixedCam::from_tensor(&rows, q).unwrap();
        let float_cam = AnalogCam::new(rows).unwrap();
        for query in [[0.1f32, -0.05, 0.02], [0.7, 0.9, 0.75], [-0.4, 0.6, -0.55]] {
            let fq: Vec<i16> = query.iter().map(|&v| q.quantize(v)).collect();
            let (row, _) = fixed.search(&fq).unwrap();
            assert_eq!(row, float_cam.search(&query).unwrap().row);
        }
    }

    #[test]
    fn fixed_batch_search_matches_single_search() {
        let rows = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 0.8, 0.8, 0.8, -0.5, 0.5, -0.5],
            &[3, 3],
        )
        .unwrap();
        let q = Quantizer::new(12);
        let cam = FixedCam::from_tensor(&rows, q).unwrap();
        let queries: Vec<i16> = [0.1f32, -0.05, 0.02, 0.7, 0.9, 0.75, -0.4, 0.6, -0.55]
            .iter()
            .map(|&v| q.quantize(v))
            .collect();
        let batch = cam.search_batch(&queries).unwrap();
        for (i, hit) in batch.iter().enumerate() {
            assert_eq!(*hit, cam.search(&queries[i * 3..(i + 1) * 3]).unwrap());
        }
        assert!(cam.search_batch(&[0; 4]).is_err());
    }

    #[test]
    fn fixed_lut_accumulation_approximates_float() {
        let table = Tensor::from_vec(vec![0.25, -1.5, 3.0, 0.125], &[2, 2]).unwrap();
        let q = Quantizer::new(8);
        let lut = FixedLut::from_tensor(&table, q).unwrap();
        let mut acc = vec![0i64; 2];
        lut.accumulate(0, &mut acc).unwrap();
        lut.accumulate(1, &mut acc).unwrap();
        let out = lut.dequantize(&acc);
        assert!((out[0] - (0.25 - 1.5)).abs() < 0.01);
        assert!((out[1] - (3.0 + 0.125)).abs() < 0.01);
        assert_eq!(lut.entries(), 2);
        assert_eq!(lut.outputs(), 2);
    }

    #[test]
    fn fixed_shapes_validated() {
        let q = Quantizer::new(8);
        assert!(FixedCam::from_tensor(&Tensor::zeros(&[0, 2]), q).is_err());
        assert!(FixedLut::from_tensor(&Tensor::zeros(&[2]), q).is_err());
        let cam = FixedCam::from_tensor(&Tensor::zeros(&[2, 2]), q).unwrap();
        assert!(cam.search(&[0]).is_err());
        let lut = FixedLut::from_tensor(&Tensor::zeros(&[2, 2]), q).unwrap();
        assert!(lut.accumulate(5, &mut [0; 2]).is_err());
        assert!(lut.accumulate(0, &mut [0; 3]).is_err());
    }
}

use pecan_tensor::{ShapeError, Tensor};

/// The quantized-product memory of Fig. 1(c): a `[cout, p]` table whose
/// column `m` holds the precomputed products between all `cout` filter
/// sub-rows and prototype `m` (`Y(j) = W1(j)·C1(j)`, Algorithm 1 line 3).
///
/// At inference, PECAN-D reads one column per group and accumulates;
/// PECAN-A reads a softmax-weighted combination of columns.
///
/// # Example
///
/// ```
/// use pecan_cam::LookupTable;
/// use pecan_tensor::Tensor;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let lut = LookupTable::new(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?)?;
/// let mut acc = vec![0.0; 2];
/// lut.accumulate_column(1, &mut acc)?;
/// assert_eq!(acc, vec![2.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LookupTable {
    table: Tensor, // [cout, p]
}

impl LookupTable {
    /// Wraps a `[cout, p]` table.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `table` is not a non-empty rank-2 tensor.
    pub fn new(table: Tensor) -> Result<Self, ShapeError> {
        table.shape().expect_rank(2)?;
        if table.dims()[0] == 0 || table.dims()[1] == 0 {
            return Err(ShapeError::new("lookup table must be non-empty"));
        }
        Ok(Self { table })
    }

    /// Builds the table from a filter sub-matrix `weights` (`[cout, d]`) and
    /// a codebook `prototypes` (`[d, p]`) — precisely Algorithm 1 line 3.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on dimension mismatch.
    pub fn from_products(weights: &Tensor, prototypes: &Tensor) -> Result<Self, ShapeError> {
        Self::new(weights.matmul(prototypes)?)
    }

    /// Output width `cout`.
    pub fn outputs(&self) -> usize {
        self.table.dims()[0]
    }

    /// Number of addressable entries `p`.
    pub fn entries(&self) -> usize {
        self.table.dims()[1]
    }

    /// The raw table.
    pub fn table(&self) -> &Tensor {
        &self.table
    }

    /// Adds column `entry` into `acc` (PECAN-D retrieval: `cout` additions,
    /// zero multiplications).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `entry >= p` or `acc.len() != cout`.
    pub fn accumulate_column(&self, entry: usize, acc: &mut [f32]) -> Result<(), ShapeError> {
        if entry >= self.entries() {
            return Err(ShapeError::new(format!(
                "LUT entry {entry} out of range for {} entries",
                self.entries()
            )));
        }
        if acc.len() != self.outputs() {
            return Err(ShapeError::new(format!(
                "accumulator of {} for {} outputs",
                acc.len(),
                self.outputs()
            )));
        }
        // One `data()` borrow for the whole loop: shared-storage tensors
        // (mmap-backed snapshots) pay a dynamic dispatch per borrow, so the
        // hot retrieval loops must not borrow per element.
        let table = self.table.data();
        let p = self.entries();
        for (o, a) in acc.iter_mut().enumerate() {
            *a += table[o * p + entry];
        }
        Ok(())
    }

    /// Adds the weighted combination `Σ_m weights[m] · column_m` into `acc`
    /// (PECAN-A retrieval).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `weights.len() != p` or
    /// `acc.len() != cout`.
    pub fn accumulate_weighted(
        &self,
        weights: &[f32],
        acc: &mut [f32],
    ) -> Result<(), ShapeError> {
        if weights.len() != self.entries() {
            return Err(ShapeError::new(format!(
                "{} weights for {} entries",
                weights.len(),
                self.entries()
            )));
        }
        if acc.len() != self.outputs() {
            return Err(ShapeError::new(format!(
                "accumulator of {} for {} outputs",
                acc.len(),
                self.outputs()
            )));
        }
        // Borrow once, then walk rows as slices (see `accumulate_column`).
        let table = self.table.data();
        let p = self.entries();
        for (o, a) in acc.iter_mut().enumerate() {
            let row = &table[o * p..(o + 1) * p];
            let mut s = 0.0;
            for (&w, &y) in weights.iter().zip(row) {
                s += w * y;
            }
            *a += s;
        }
        Ok(())
    }

    /// Keeps only the listed entries (prototype pruning, §5): returns a new
    /// table with `keep.len()` columns in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `keep` is empty or any index is out of
    /// range.
    pub fn prune(&self, keep: &[usize]) -> Result<LookupTable, ShapeError> {
        if keep.is_empty() {
            return Err(ShapeError::new("cannot prune a LUT to zero entries"));
        }
        if let Some(&bad) = keep.iter().find(|&&e| e >= self.entries()) {
            return Err(ShapeError::new(format!(
                "prune index {bad} out of range for {} entries",
                self.entries()
            )));
        }
        let mut t = Tensor::zeros(&[self.outputs(), keep.len()]);
        for (new_m, &old_m) in keep.iter().enumerate() {
            for o in 0..self.outputs() {
                t.set2(o, new_m, self.table.get2(o, old_m));
            }
        }
        LookupTable::new(t)
    }

    /// Memory footprint in scalars (`cout·p`).
    pub fn scalars(&self) -> usize {
        self.outputs() * self.entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_products_matches_matmul() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let lut = LookupTable::from_products(&w, &c).unwrap();
        assert_eq!(lut.table().data(), w.data());
        assert_eq!(lut.scalars(), 4);
    }

    #[test]
    fn weighted_accumulation_matches_soft_combination() {
        let lut = LookupTable::new(
            Tensor::from_vec(vec![1.0, 3.0, 2.0, 4.0], &[2, 2]).unwrap(),
        )
        .unwrap();
        let mut acc = vec![0.0; 2];
        lut.accumulate_weighted(&[0.25, 0.75], &mut acc).unwrap();
        assert_eq!(acc, vec![0.25 + 2.25, 0.5 + 3.0]);
    }

    #[test]
    fn prune_keeps_selected_columns() {
        let lut = LookupTable::new(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap(),
        )
        .unwrap();
        let pruned = lut.prune(&[2, 0]).unwrap();
        assert_eq!(pruned.entries(), 2);
        assert_eq!(pruned.table().data(), &[3.0, 1.0, 6.0, 4.0]);
        assert!(lut.prune(&[]).is_err());
        assert!(lut.prune(&[3]).is_err());
    }

    #[test]
    fn accumulation_validates_shapes() {
        let lut = LookupTable::new(Tensor::zeros(&[2, 3])).unwrap();
        let mut acc = vec![0.0; 2];
        assert!(lut.accumulate_column(3, &mut acc).is_err());
        assert!(lut.accumulate_column(0, &mut [0.0; 1]).is_err());
        assert!(lut.accumulate_weighted(&[1.0], &mut acc).is_err());
    }
}

use std::fmt;
use std::ops::Add;

/// Addition/multiplication counts of a computation — the currency of
/// Tables 1–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct OpCounts {
    /// Number of scalar additions (subtraction/absolute-difference counts
    /// as addition, matching the paper's accounting for AdderNet/PECAN-D).
    pub adds: u64,
    /// Number of scalar multiplications.
    pub muls: u64,
}

impl OpCounts {
    /// Creates a count pair.
    pub fn new(adds: u64, muls: u64) -> Self {
        Self { adds, muls }
    }

    /// A multiply-accumulate dominated kernel with equal adds and muls.
    pub fn mac(n: u64) -> Self {
        Self { adds: n, muls: n }
    }

    /// Whether the computation is multiplier-free.
    pub fn is_multiplier_free(&self) -> bool {
        self.muls == 0
    }

    /// Scales both counts (e.g. per-column cost × number of columns).
    pub fn scaled(&self, k: u64) -> Self {
        Self { adds: self.adds * k, muls: self.muls * k }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts { adds: self.adds + rhs.adds, muls: self.muls + rhs.muls }
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} adds, {} muls", self.adds, self.muls)
    }
}

/// Per-operation latency and energy model.
///
/// §4.3 grounds Table 5 in the Intel VIA Nano 2000: a float multiplication
/// takes 4 cycles against 2 for an addition, and a 32-bit multiplier burns
/// 4× the power of an adder. [`CostModel::via_nano`] encodes exactly that;
/// custom models support other targets.
///
/// # Example
///
/// ```
/// use pecan_cam::{CostModel, OpCounts};
///
/// let m = CostModel::via_nano();
/// // VGG-Small CNN: 0.61G MACs → 3.66G cycles (Table 5)
/// let cnn = OpCounts::mac(610_000_000);
/// assert_eq!(m.cycles(&cnn), 3_660_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per multiplication.
    pub mul_cycles: u64,
    /// Cycles per addition.
    pub add_cycles: u64,
    /// Relative power of one multiplier (adder = 1).
    pub mul_power: f64,
    /// Relative power of one adder.
    pub add_power: f64,
}

impl CostModel {
    /// The Intel VIA Nano 2000 model used in §4.3: mul = 4 cycles, add = 2
    /// cycles, 4:1 multiplier:adder power.
    pub fn via_nano() -> Self {
        Self { mul_cycles: 4, add_cycles: 2, mul_power: 4.0, add_power: 1.0 }
    }

    /// Total latency in cycles for the given op counts.
    pub fn cycles(&self, ops: &OpCounts) -> u64 {
        ops.muls * self.mul_cycles + ops.adds * self.add_cycles
    }

    /// Total energy in adder-op units.
    pub fn energy(&self, ops: &OpCounts) -> f64 {
        ops.muls as f64 * self.mul_power + ops.adds as f64 * self.add_power
    }

    /// Energy of `ops` normalised so that `reference` scores 1.0 — the
    /// "Normalized Power" column of Table 5.
    ///
    /// # Panics
    ///
    /// Panics if `reference` has zero energy.
    pub fn normalized_power(&self, ops: &OpCounts, reference: &OpCounts) -> f64 {
        let base = self.energy(reference);
        assert!(base > 0.0, "reference computation has zero energy");
        self.energy(ops) / base
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::via_nano()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_rows_reproduce() {
        // VGG-Small on CIFAR-10 (§4.3): CNN 0.61G/0.61G, AdderNet 0/1.22G,
        // PECAN-D 0/0.37G.
        let m = CostModel::via_nano();
        let cnn = OpCounts::new(610_000_000, 610_000_000);
        let adder = OpCounts::new(1_220_000_000, 0);
        let pecan_d = OpCounts::new(370_000_000, 0);

        assert_eq!(m.cycles(&cnn), 3_660_000_000); // 3.66G
        assert_eq!(m.cycles(&adder), 2_440_000_000); // 2.44G
        assert_eq!(m.cycles(&pecan_d), 740_000_000); // ~0.72G in the paper

        let p_cnn = m.normalized_power(&cnn, &pecan_d);
        let p_adder = m.normalized_power(&adder, &pecan_d);
        assert!((p_cnn - 8.24).abs() < 0.03, "CNN power {p_cnn}");
        assert!((p_adder - 3.30).abs() < 0.01, "AdderNet power {p_adder}");
        assert!((m.normalized_power(&pecan_d, &pecan_d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn op_counts_algebra() {
        let a = OpCounts::new(3, 1);
        let b = OpCounts::mac(2);
        let c = a + b;
        assert_eq!(c, OpCounts::new(5, 3));
        assert_eq!(c.scaled(10), OpCounts::new(50, 30));
        assert!(OpCounts::new(7, 0).is_multiplier_free());
        assert!(!c.is_multiplier_free());
        assert_eq!(format!("{}", OpCounts::new(1, 2)), "1 adds, 2 muls");
    }

    #[test]
    #[should_panic(expected = "zero energy")]
    fn normalized_power_needs_nonzero_reference() {
        let m = CostModel::via_nano();
        m.normalized_power(&OpCounts::mac(1), &OpCounts::default());
    }
}

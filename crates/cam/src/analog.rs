use pecan_tensor::{ShapeError, Tensor};
use rand::Rng;

/// Result of one CAM search: the winning row and its matching score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Index of the best-matching stored row.
    pub row: usize,
    /// The winning score (negative L1 distance for [`AnalogCam`], dot
    /// product for [`DotProductCam`]).
    pub score: f32,
}

/// An analog CAM array holding `p` prototype rows of width `d` that answers
/// nearest-match queries under the L1 metric — the winner-take-all
/// behaviour of a memristive CAM / RRAM crossbar (§1).
///
/// Optionally perturbs its stored cells with Gaussian noise to model device
/// variation ([`AnalogCam::with_noise`]).
#[derive(Debug, Clone)]
pub struct AnalogCam {
    rows: Tensor, // [p, d]
}

impl AnalogCam {
    /// Programs the array with `rows` (`[p, d]`, one prototype per row).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is not a non-empty rank-2 tensor.
    pub fn new(rows: Tensor) -> Result<Self, ShapeError> {
        rows.shape().expect_rank(2)?;
        if rows.dims()[0] == 0 || rows.dims()[1] == 0 {
            return Err(ShapeError::new("CAM array must be non-empty"));
        }
        Ok(Self { rows })
    }

    /// Programs the array and perturbs every cell with `N(0, sigma²)` noise,
    /// modelling RRAM conductance variation.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is not a non-empty rank-2 tensor.
    pub fn with_noise<R: Rng>(
        rows: Tensor,
        sigma: f32,
        rng: &mut R,
    ) -> Result<Self, ShapeError> {
        let mut cam = Self::new(rows)?;
        if sigma > 0.0 {
            for v in cam.rows.data_mut() {
                *v += gaussian(rng) * sigma;
            }
        }
        Ok(cam)
    }

    /// Number of stored prototypes `p`.
    pub fn entries(&self) -> usize {
        self.rows.dims()[0]
    }

    /// Width of each prototype `d`.
    pub fn width(&self) -> usize {
        self.rows.dims()[1]
    }

    /// The stored (possibly noisy) array.
    pub fn rows(&self) -> &Tensor {
        &self.rows
    }

    /// Finds the stored row with the smallest L1 distance to `query`
    /// (first index on ties). Runs on the shared `pecan-index` scan, so it
    /// agrees bit-for-bit with [`AnalogCam::search_batch`] and the indexed
    /// engines.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `query.len() != d`.
    pub fn search(&self, query: &[f32]) -> Result<SearchResult, ShapeError> {
        if query.len() != self.width() {
            return Err(ShapeError::new(format!(
                "query width {} does not match CAM width {}",
                query.len(),
                self.width()
            )));
        }
        let (row, dist) = pecan_index::l1_argmin(self.rows.data(), self.width(), query);
        Ok(SearchResult { row, score: -dist })
    }

    /// Searches a batch of queries laid out query-major (`[q·d]`, query `i`
    /// occupying `queries[i*d..(i+1)*d]`) and returns the winning row per
    /// query.
    ///
    /// Runs the blocked scan kernel from `pecan-index` ([Quick-ADC-style
    /// lane blocking](pecan_index::l1_argmin_batch)), which amortizes each
    /// stored-cell load over [`pecan_index::LANES`] queries — identical
    /// winners and scores to calling [`AnalogCam::search`] per query,
    /// several times the throughput.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `queries.len()` is not a multiple of `d`.
    pub fn search_batch(&self, queries: &[f32]) -> Result<Vec<SearchResult>, ShapeError> {
        if queries.len() % self.width() != 0 {
            return Err(ShapeError::new(format!(
                "query buffer of {} is not a multiple of CAM width {}",
                queries.len(),
                self.width()
            )));
        }
        Ok(pecan_index::l1_argmin_batch(self.rows.data(), self.width(), queries)
            .into_iter()
            .map(|(row, dist)| SearchResult { row, score: -dist })
            .collect())
    }

    /// Searches a whole matrix of queries (`[d, cols]`, one query per
    /// column, matching the im2col layout) and returns the winning row per
    /// column. Delegates to the batched kernel of [`AnalogCam::search_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank or width mismatch.
    pub fn search_columns(&self, queries: &Tensor) -> Result<Vec<SearchResult>, ShapeError> {
        queries.shape().expect_rank(2)?;
        if queries.dims()[0] != self.width() {
            return Err(ShapeError::new(format!(
                "query dim {} does not match CAM width {}",
                queries.dims()[0],
                self.width()
            )));
        }
        let (d, cols) = (self.width(), queries.dims()[1]);
        let mut buf = vec![0.0f32; cols * d];
        for i in 0..cols {
            for k in 0..d {
                buf[i * d + k] = queries.get2(k, i);
            }
        }
        self.search_batch(&buf)
    }

    /// Searches `count` queries embedded in a larger column-major buffer:
    /// query `i` is the `d` values at `data[i·stride + offset ..]`. This is
    /// the batch-first serving entry point — a pipeline carrying one
    /// contiguous `[features, batch]` activation matrix hands each codebook
    /// group's sub-rows straight to the CAM without materializing a
    /// per-group matrix first (the gather into the lane-blocked scan
    /// buffer happens here, once).
    ///
    /// Winners and scores are bit-identical to [`AnalogCam::search`] per
    /// query.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when a query would read outside `data`
    /// (`offset + d > stride` or the last query overruns the buffer).
    pub fn search_strided(
        &self,
        data: &[f32],
        stride: usize,
        offset: usize,
        count: usize,
    ) -> Result<Vec<SearchResult>, ShapeError> {
        self.search_strided_into(data, stride, offset, count, &mut Vec::new())
    }

    /// [`AnalogCam::search_strided`] gathering into a caller-owned scratch
    /// buffer (cleared and resized as needed) — repeated per-group calls
    /// on a serving hot path reuse one allocation across all groups.
    ///
    /// # Errors
    ///
    /// As for [`AnalogCam::search_strided`].
    pub fn search_strided_into(
        &self,
        data: &[f32],
        stride: usize,
        offset: usize,
        count: usize,
        scratch: &mut Vec<f32>,
    ) -> Result<Vec<SearchResult>, ShapeError> {
        let _span = pecan_obs::span("cam.search_strided");
        let d = self.width();
        if offset + d > stride || count * stride > data.len() {
            return Err(ShapeError::new(format!(
                "strided search (offset {offset}, width {d}, stride {stride}, count {count}) \
                 overruns a buffer of {}",
                data.len()
            )));
        }
        scratch.clear();
        scratch.resize(count * d, 0.0);
        for i in 0..count {
            let from = i * stride + offset;
            scratch[i * d..(i + 1) * d].copy_from_slice(&data[from..from + d]);
        }
        self.search_batch(scratch)
    }
}

/// A dot-product CAM: returns the stored row with the largest inner product
/// with the query. This is the in-memory primitive PECAN-A's attention
/// scores map onto (a crossbar multiply-accumulate).
#[derive(Debug, Clone)]
pub struct DotProductCam {
    rows: Tensor, // [p, d]
}

impl DotProductCam {
    /// Programs the array with `rows` (`[p, d]`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is not a non-empty rank-2 tensor.
    pub fn new(rows: Tensor) -> Result<Self, ShapeError> {
        rows.shape().expect_rank(2)?;
        if rows.dims()[0] == 0 || rows.dims()[1] == 0 {
            return Err(ShapeError::new("CAM array must be non-empty"));
        }
        Ok(Self { rows })
    }

    /// Number of stored rows.
    pub fn entries(&self) -> usize {
        self.rows.dims()[0]
    }

    /// Row width.
    pub fn width(&self) -> usize {
        self.rows.dims()[1]
    }

    /// The programmed rows (`[p, d]`), e.g. for serializing the array.
    pub fn rows(&self) -> &Tensor {
        &self.rows
    }

    /// All raw scores `rows · query` (the attention logits of Eq. 2).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `query.len() != d`.
    pub fn scores(&self, query: &[f32]) -> Result<Vec<f32>, ShapeError> {
        let mut out = vec![0.0f32; self.entries()];
        self.scores_into(query, &mut out)?;
        Ok(out)
    }

    /// [`DotProductCam::scores`] into a caller-owned buffer — the
    /// batch-first serving path calls this once per column per group, so
    /// reusing one scratch buffer keeps the hot loop allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `query.len() != d` or
    /// `out.len() != p`.
    pub fn scores_into(&self, query: &[f32], out: &mut [f32]) -> Result<(), ShapeError> {
        if query.len() != self.width() {
            return Err(ShapeError::new(format!(
                "query width {} does not match CAM width {}",
                query.len(),
                self.width()
            )));
        }
        if out.len() != self.entries() {
            return Err(ShapeError::new(format!(
                "score buffer of {} for {} stored rows",
                out.len(),
                self.entries()
            )));
        }
        // One `data()` borrow for every row: shared-storage tensors
        // (mmap-backed snapshots) pay a dynamic dispatch per borrow, and
        // this runs once per column per group on the serving hot path.
        let rows = self.rows.data();
        let d = self.width();
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = rows[r * d..(r + 1) * d]
                .iter()
                .zip(query)
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Ok(())
    }

    /// Best-matching row by inner product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `query.len() != d`.
    pub fn search(&self, query: &[f32]) -> Result<SearchResult, ShapeError> {
        let scores = self.scores(query)?;
        let (row, &score) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .expect("array is non-empty");
        Ok(SearchResult { row, score })
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cam_3x2() -> AnalogCam {
        AnalogCam::new(
            Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, -2.0, 2.0], &[3, 2]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn analog_search_finds_nearest_l1() {
        let cam = cam_3x2();
        assert_eq!(cam.search(&[0.1, -0.1]).unwrap().row, 0);
        assert_eq!(cam.search(&[0.9, 0.8]).unwrap().row, 1);
        assert_eq!(cam.search(&[-1.5, 1.9]).unwrap().row, 2);
        assert_eq!(cam.entries(), 3);
        assert_eq!(cam.width(), 2);
    }

    #[test]
    fn exact_match_has_zero_distance_score() {
        let cam = cam_3x2();
        let r = cam.search(&[1.0, 1.0]).unwrap();
        assert_eq!(r.row, 1);
        assert_eq!(r.score, 0.0);
    }

    #[test]
    fn column_search_matches_single_search() {
        let cam = cam_3x2();
        let queries =
            Tensor::from_vec(vec![0.1, 0.9, -1.5, -0.1, 0.8, 1.9], &[2, 3]).unwrap();
        let rows: Vec<usize> = cam
            .search_columns(&queries)
            .unwrap()
            .iter()
            .map(|r| r.row)
            .collect();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn batch_search_matches_single_search() {
        let cam = cam_3x2();
        let queries = [0.1, -0.1, 0.9, 0.8, -1.5, 1.9, 1.0, 1.0];
        let hits = cam.search_batch(&queries).unwrap();
        assert_eq!(hits.len(), 4);
        for (i, hit) in hits.iter().enumerate() {
            let single = cam.search(&queries[i * 2..(i + 1) * 2]).unwrap();
            assert_eq!(*hit, single);
        }
        assert!(cam.search_batch(&[0.0; 3]).is_err());
    }

    #[test]
    fn strided_search_matches_single_search() {
        let cam = cam_3x2();
        // three "columns" of 5 features each; the query lives at offset 2
        let stride = 5;
        let mut data = vec![9.0f32; 3 * stride];
        let queries = [[0.1, -0.1], [0.9, 0.8], [-1.5, 1.9]];
        for (i, q) in queries.iter().enumerate() {
            data[i * stride + 2..i * stride + 4].copy_from_slice(q);
        }
        let hits = cam.search_strided(&data, stride, 2, 3).unwrap();
        for (hit, q) in hits.iter().zip(&queries) {
            assert_eq!(*hit, cam.search(q).unwrap());
        }
        // overruns are typed errors, not panics
        assert!(cam.search_strided(&data, stride, 4, 3).is_err());
        assert!(cam.search_strided(&data, stride, 0, 4).is_err());
    }

    #[test]
    fn zero_noise_is_identical_and_noise_perturbs() {
        let base = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let clean = AnalogCam::with_noise(base.clone(), 0.0, &mut rng).unwrap();
        assert_eq!(clean.rows().data(), base.data());
        let noisy = AnalogCam::with_noise(base.clone(), 0.5, &mut rng).unwrap();
        assert!(noisy.rows().max_abs_diff(&base) > 0.0);
    }

    #[test]
    fn dot_cam_prefers_aligned_rows() {
        let cam = DotProductCam::new(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap(),
        )
        .unwrap();
        assert_eq!(cam.search(&[5.0, 0.1]).unwrap().row, 0);
        assert_eq!(cam.search(&[0.1, 5.0]).unwrap().row, 1);
        let s = cam.scores(&[2.0, 3.0]).unwrap();
        assert_eq!(s, vec![2.0, 3.0]);
        let mut buf = vec![0.0; 2];
        cam.scores_into(&[2.0, 3.0], &mut buf).unwrap();
        assert_eq!(buf, s);
        assert!(cam.scores_into(&[2.0, 3.0], &mut [0.0; 3]).is_err());
    }

    #[test]
    fn shape_validation() {
        assert!(AnalogCam::new(Tensor::zeros(&[0, 3])).is_err());
        assert!(AnalogCam::new(Tensor::zeros(&[3])).is_err());
        let cam = cam_3x2();
        assert!(cam.search(&[1.0]).is_err());
        assert!(cam.search_columns(&Tensor::zeros(&[3, 2])).is_err());
        assert!(DotProductCam::new(Tensor::zeros(&[2, 0])).is_err());
    }
}

//! Property-based tests for the CAM simulator.

use pecan_cam::fixed::{FixedCam, Quantizer};
use pecan_cam::{AnalogCam, CostModel, LookupTable, OpCounts};
use pecan_index::{BatchScanner, LinearScan, PqTableIndex, PrototypeIndex};
use pecan_tensor::Tensor;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).expect("sized by construction"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analog_search_winner_dominates_all_rows(
        rows in matrix(6, 4),
        query in proptest::collection::vec(-4.0f32..4.0, 4),
    ) {
        let cam = AnalogCam::new(rows.clone()).unwrap();
        let hit = cam.search(&query).unwrap();
        let dist = |r: usize| -> f32 {
            rows.row(r).iter().zip(&query).map(|(&a, &b)| (a - b).abs()).sum()
        };
        for r in 0..6 {
            prop_assert!(dist(hit.row) <= dist(r) + 1e-4);
        }
        prop_assert!((hit.score + dist(hit.row)).abs() < 1e-4);
    }

    #[test]
    fn storing_query_as_row_makes_it_the_winner(
        rows in matrix(5, 3),
        row_idx in 0usize..5,
    ) {
        let cam = AnalogCam::new(rows.clone()).unwrap();
        let query: Vec<f32> = rows.row(row_idx).to_vec();
        let hit = cam.search(&query).unwrap();
        // the stored copy has distance 0; any winner must also be at 0
        prop_assert!(hit.score.abs() < 1e-5);
    }

    #[test]
    fn fixed_cam_agrees_with_float_cam_given_margin(
        rows in matrix(4, 5),
        query in proptest::collection::vec(-4.0f32..4.0, 5),
    ) {
        let float_cam = AnalogCam::new(rows.clone()).unwrap();
        let q = Quantizer::new(10);
        let fixed_cam = FixedCam::from_tensor(&rows, q).unwrap();
        let fq: Vec<i16> = query.iter().map(|&v| q.quantize(v)).collect();
        let float_hit = float_cam.search(&query).unwrap();
        let (fixed_row, _) = fixed_cam.search(&fq).unwrap();
        if fixed_row != float_hit.row {
            // disagreement is only legitimate within quantization slack
            let dist = |r: usize| -> f32 {
                rows.row(r).iter().zip(&query).map(|(&a, &b)| (a - b).abs()).sum()
            };
            let slack = 5.0 * 2.0 / 1024.0 * 5.0; // d · 2ε per element, generous
            prop_assert!((dist(fixed_row) - dist(float_hit.row)).abs() < slack);
        }
    }

    #[test]
    fn index_engines_match_noise_free_analog_cam(
        rows in matrix(24, 6),
        queries in proptest::collection::vec(-4.0f32..4.0, 6 * 11),
    ) {
        // The pecan-index engines must agree with the CAM simulator's own
        // search exactly: same winning rows, and scores that are the
        // negated distances bit-for-bit.
        let cam = AnalogCam::new(rows.clone()).unwrap();
        let linear = LinearScan::from_tensor(&rows).unwrap();
        let batch = BatchScanner::from_tensor(&rows).unwrap();
        let table = PqTableIndex::from_tensor(&rows).unwrap();
        let batched = cam.search_batch(&queries).unwrap();
        for (i, query) in queries.chunks_exact(6).enumerate() {
            let hit = cam.search(query).unwrap();
            for engine in [
                linear.nearest(query).unwrap(),
                batch.nearest(query).unwrap(),
                table.nearest(query).unwrap(),
            ] {
                prop_assert_eq!(engine.row, hit.row);
                prop_assert_eq!(-engine.distance, hit.score);
            }
            prop_assert_eq!(&batched[i], &hit);
        }
    }

    #[test]
    fn lut_weighted_read_equals_matvec(table in matrix(3, 4), w in proptest::collection::vec(0.0f32..1.0, 4)) {
        let lut = LookupTable::new(table.clone()).unwrap();
        let mut acc = vec![0.0f32; 3];
        lut.accumulate_weighted(&w, &mut acc).unwrap();
        for o in 0..3 {
            let expect: f32 = (0..4).map(|m| w[m] * table.get2(o, m)).sum();
            prop_assert!((acc[o] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn lut_prune_preserves_kept_columns(table in matrix(2, 6), keep in proptest::collection::vec(0usize..6, 1..6)) {
        let lut = LookupTable::new(table.clone()).unwrap();
        let pruned = lut.prune(&keep).unwrap();
        prop_assert_eq!(pruned.entries(), keep.len());
        for (new_m, &old_m) in keep.iter().enumerate() {
            let mut a = vec![0.0f32; 2];
            let mut b = vec![0.0f32; 2];
            lut.accumulate_column(old_m, &mut a).unwrap();
            pruned.accumulate_column(new_m, &mut b).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn cost_model_is_linear_in_ops(adds in 0u64..1_000_000, muls in 0u64..1_000_000) {
        let m = CostModel::via_nano();
        let ops = OpCounts::new(adds, muls);
        let doubled = ops.scaled(2);
        prop_assert_eq!(m.cycles(&doubled), 2 * m.cycles(&ops));
        prop_assert!((m.energy(&doubled) - 2.0 * m.energy(&ops)).abs() < 1e-6);
        // multiplier-free computations are always cheaper than MAC-parity ones
        let mac = OpCounts::mac(adds + muls);
        let add_only = OpCounts::new(adds + muls, 0);
        prop_assert!(m.energy(&add_only) <= m.energy(&mac));
    }
}

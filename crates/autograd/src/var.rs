use pecan_tensor::Tensor;
use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// The reverse rule of one recorded operation.
///
/// Implementors capture whatever forward-pass values they need (inputs,
/// masks, soft assignments, ...) and, given the gradient flowing into the
/// op's output, produce gradients for each parent — `None` for parents that
/// do not require gradients.
///
/// This trait is the extension point the PECAN crates use to register the
/// paper's custom backward rules: the straight-through estimator of Eq. (5)
/// and the epoch-annealed `tanh` sign-gradient of Eq. (6).
pub trait BackwardOp {
    /// Gradients with respect to each parent, aligned with the parent list
    /// the [`Var`] was created with.
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>>;

    /// Short op name for graph debugging.
    fn name(&self) -> &'static str {
        "op"
    }
}

struct VarInner {
    id: usize,
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    parents: Vec<Var>,
    op: Option<Box<dyn BackwardOp>>,
    requires_grad: bool,
}

impl Drop for VarInner {
    fn drop(&mut self) {
        // Deep graphs (thousands of chained ops) would otherwise drop
        // recursively through the parent links and blow the stack; unlink
        // iteratively instead.
        let mut stack = std::mem::take(&mut self.parents);
        while let Some(parent) = stack.pop() {
            if let Ok(mut inner) = Rc::try_unwrap(parent.0) {
                stack.append(&mut inner.parents);
                // `inner` drops here with an empty parent list — no recursion.
            }
        }
    }
}

/// A node in the autodiff graph: a tensor value plus the recipe to
/// back-propagate through the computation that produced it.
///
/// `Var` is a cheap reference-counted handle; cloning shares the node.
/// Leaves are created with [`Var::parameter`] (trainable) or
/// [`Var::constant`] (inputs), interior nodes via the op methods in this
/// crate or [`Var::from_op`] for custom rules.
///
/// # Example
///
/// ```
/// use pecan_autograd::Var;
/// use pecan_tensor::Tensor;
///
/// let w = Var::parameter(Tensor::from_slice(&[2.0]));
/// let y = w.mul(&w).expect("same shape"); // y = w²
/// y.backward();
/// assert_eq!(w.grad().expect("gradient").data(), &[4.0]); // dy/dw = 2w
/// ```
#[derive(Clone)]
pub struct Var(Rc<VarInner>);

impl Var {
    /// Creates a trainable leaf (gradients will be accumulated).
    pub fn parameter(value: Tensor) -> Self {
        Self::leaf(value, true)
    }

    /// Creates a non-trainable leaf (no gradient is stored).
    pub fn constant(value: Tensor) -> Self {
        Self::leaf(value, false)
    }

    fn leaf(value: Tensor, requires_grad: bool) -> Self {
        Var(Rc::new(VarInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            parents: Vec::new(),
            op: None,
            requires_grad,
        }))
    }

    /// Creates an interior node from a forward value, its parents and the
    /// backward rule. This is the public hook through which downstream
    /// crates (PQ assignment ops, CAM lookups, AdderNet filters) extend the
    /// graph with custom differentiable operations.
    pub fn from_op(value: Tensor, parents: Vec<Var>, op: Box<dyn BackwardOp>) -> Self {
        let requires_grad = parents.iter().any(Var::requires_grad);
        Var(Rc::new(VarInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            parents,
            op: if requires_grad { Some(op) } else { None },
            requires_grad,
        }))
    }

    /// Unique node id (useful for debugging graph topology).
    pub fn id(&self) -> usize {
        self.0.id
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Borrow of the node's current value.
    ///
    /// # Panics
    ///
    /// Panics if the value is currently mutably borrowed (optimizer step in
    /// progress).
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.0.value.borrow()
    }

    /// Clone of the node's current value.
    pub fn to_tensor(&self) -> Tensor {
        self.0.value.borrow().clone()
    }

    /// Replaces the stored value in place (used by optimizers; only
    /// meaningful on leaves).
    pub fn set_value(&self, value: Tensor) {
        *self.0.value.borrow_mut() = value;
    }

    /// Applies `f` to the stored value in place.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.0.value.borrow_mut());
    }

    /// Clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.0.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// A gradient-detached view of this node's value: same tensor, new leaf
    /// with no history. This is the `sg(·)` stop-gradient of Eq. (5).
    pub fn detach(&self) -> Var {
        Var::constant(self.to_tensor())
    }

    /// The parents this node was computed from.
    pub fn parents(&self) -> &[Var] {
        &self.0.parents
    }

    /// Runs reverse accumulation from this node, seeding with all-ones
    /// (i.e. `d out / d out = 1`); for a scalar loss this computes ordinary
    /// gradients into every reachable parameter's [`Var::grad`].
    pub fn backward(&self) {
        let dims = self.value().dims().to_vec();
        self.backward_with(Tensor::ones(&dims));
    }

    /// Runs reverse accumulation seeded with an explicit output gradient.
    ///
    /// # Panics
    ///
    /// Panics if `seed`'s shape differs from this node's value shape.
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(
            seed.dims(),
            self.value().dims(),
            "backward seed shape mismatch"
        );
        // Topological order (children before parents) via iterative DFS.
        let order = self.topo_order();
        self.accumulate_grad(seed);
        for node in order {
            let Some(op) = node.0.op.as_ref() else { continue };
            // A node can sit in the order with no gradient when every op it
            // feeds declined to propagate into it (e.g. hard-assignment
            // branches); skip it rather than panic.
            let Some(grad_out) = node.0.grad.borrow().clone() else { continue };
            let parent_grads = op.backward(&grad_out);
            debug_assert_eq!(parent_grads.len(), node.0.parents.len());
            for (parent, grad) in node.0.parents.iter().zip(parent_grads) {
                if let Some(g) = grad {
                    if parent.requires_grad() {
                        parent.accumulate_grad(g);
                    }
                }
            }
        }
    }

    fn accumulate_grad(&self, g: Tensor) {
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing
                .axpy(1.0, &g)
                .expect("gradient shapes agree by construction"),
            None => *slot = Some(g),
        }
    }

    /// Nodes reachable from `self` that require grad, children first.
    fn topo_order(&self) -> Vec<Var> {
        let mut order = Vec::new();
        let mut visited: HashSet<usize> = HashSet::new();
        // Iterative post-order DFS, then reverse.
        let mut stack: Vec<(Var, usize)> = vec![(self.clone(), 0)];
        while let Some((node, child_idx)) = stack.pop() {
            if child_idx == 0 {
                if visited.contains(&node.id()) {
                    continue;
                }
                visited.insert(node.id());
            }
            if child_idx < node.0.parents.len() {
                let child = node.0.parents[child_idx].clone();
                stack.push((node, child_idx + 1));
                if !visited.contains(&child.id()) && child.requires_grad() {
                    stack.push((child, 0));
                }
            } else {
                order.push(node);
            }
        }
        order.reverse();
        order
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Var(id={}, op={}, requires_grad={}, value={:?})",
            self.0.id,
            self.0.op.as_ref().map_or("leaf", |op| op.name()),
            self.0.requires_grad,
            self.0.value.borrow()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_do_not_accumulate() {
        let c = Var::constant(Tensor::from_slice(&[1.0, 2.0]));
        let p = Var::parameter(Tensor::from_slice(&[3.0, 4.0]));
        let y = c.mul(&p).unwrap();
        y.backward();
        assert!(c.grad().is_none());
        assert_eq!(p.grad().unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn gradients_accumulate_across_shared_nodes() {
        // y = w + w  =>  dy/dw = 2
        let w = Var::parameter(Tensor::from_slice(&[5.0]));
        let y = w.add(&w).unwrap();
        y.backward();
        assert_eq!(w.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn diamond_graph_accumulates_once_per_path() {
        // y = (w*w) + (w*w) reusing the same squared node twice
        let w = Var::parameter(Tensor::from_slice(&[3.0]));
        let sq = w.mul(&w).unwrap();
        let y = sq.add(&sq).unwrap();
        y.backward();
        // dy/dw = 2 * d(w²)/dw = 2 * 2w = 12
        assert_eq!(w.grad().unwrap().data(), &[12.0]);
    }

    #[test]
    fn detach_blocks_gradient() {
        let w = Var::parameter(Tensor::from_slice(&[2.0]));
        let d = w.detach();
        let y = d.mul(&d).unwrap();
        y.backward();
        assert!(w.grad().is_none());
    }

    #[test]
    fn zero_grad_clears() {
        let w = Var::parameter(Tensor::from_slice(&[1.0]));
        let y = w.scale(3.0);
        y.backward();
        assert!(w.grad().is_some());
        w.zero_grad();
        assert!(w.grad().is_none());
    }

    #[test]
    fn deep_chain_backward_does_not_overflow() {
        // deep graphs must not recurse: 10k-long chain
        let mut x = Var::parameter(Tensor::from_slice(&[1.0]));
        let root = x.clone();
        for _ in 0..10_000 {
            x = x.scale(1.0);
        }
        x.backward();
        assert_eq!(root.grad().unwrap().data(), &[1.0]);
    }
}

//! Tape-based reverse-mode automatic differentiation for the PECAN
//! reproduction.
//!
//! The paper's central claim is that product-quantized prototype matching is
//! **end-to-end learnable** (unlike MADDNESS' non-differentiable hashing).
//! This crate supplies the machinery that makes that claim testable in Rust:
//! a dynamic computation graph over [`pecan_tensor::Tensor`] values, reverse
//! accumulation, an extensible [`BackwardOp`] trait (the PECAN crates add
//! their own straight-through / soft-assignment ops through it), SGD/Adam
//! optimizers, and a finite-difference gradient checker used throughout the
//! test suites.
//!
//! # Example
//!
//! ```
//! use pecan_autograd::Var;
//! use pecan_tensor::Tensor;
//!
//! # fn main() -> Result<(), pecan_tensor::ShapeError> {
//! let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?);
//! let w = Var::parameter(Tensor::from_vec(vec![3.0, 4.0], &[2, 1])?);
//! let y = x.matmul(&w)?; // 1·3 + 2·4 = 11
//! y.backward();
//! assert_eq!(x.grad().expect("gradient").data(), &[3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod gradcheck;
mod ops;
mod optim;
mod var;

pub use gradcheck::{check_gradients, GradCheckReport};
pub use ops::loss::cross_entropy_logits;
pub use ops::norm::BatchStats;
pub use ops::slice::concat_rows;
pub use optim::{Adam, Optimizer, Sgd, StepDecay};
pub use var::{BackwardOp, Var};

use crate::Var;
use pecan_tensor::Tensor;

/// A first-order optimizer over a fixed set of trainable [`Var`]s.
///
/// The paper trains with Adam (learning rate 0.01/0.001, step decay — §4
/// "Implementation Details"); [`Sgd`] is provided for the baselines and
/// ablations.
pub trait Optimizer {
    /// Applies one update using the gradients currently stored on the
    /// parameters, then leaves the gradients in place (call
    /// [`Optimizer::zero_grad`] before the next backward pass).
    fn step(&mut self);

    /// Clears the gradients of all managed parameters.
    fn zero_grad(&self);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedulers).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// # Example
///
/// ```
/// use pecan_autograd::{Optimizer, Sgd, Var};
/// use pecan_tensor::Tensor;
///
/// let w = Var::parameter(Tensor::from_slice(&[1.0]));
/// let mut opt = Sgd::new(vec![w.clone()], 0.1).with_momentum(0.9);
/// for _ in 0..50 {
///     opt.zero_grad();
///     let loss = w.mul(&w).expect("same shape"); // minimize w²
///     loss.backward();
///     opt.step();
/// }
/// assert!(w.value().data()[0].abs() < 0.05);
/// ```
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates plain SGD over `params` with learning rate `lr`.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let n = params.len();
        Self { params, lr, momentum: 0.0, weight_decay: 0.0, velocity: vec![None; n] }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables decoupled L2 weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (i, p) in self.params.iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                let v = p.to_tensor();
                g.axpy(self.weight_decay, &v).expect("param/grad shapes match");
            }
            let update = if self.momentum > 0.0 {
                let v = match self.velocity[i].take() {
                    Some(mut v) => {
                        v.map_inplace(|x| x * self.momentum);
                        v.axpy(1.0, &g).expect("velocity/grad shapes match");
                        v
                    }
                    None => g.clone(),
                };
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g
            };
            let lr = self.lr;
            p.update_value(|value| {
                value.axpy(-lr, &update).expect("param/update shapes match");
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used for every
/// PECAN training run in §4.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam over `params` with learning rate `lr` and the standard
    /// `(β1, β2, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let n = params.len();
        Self {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: vec![None; n],
            v: vec![None; n],
        }
    }

    /// Enables L2 weight decay added to the raw gradient.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                let w = p.to_tensor();
                g.axpy(self.weight_decay, &w).expect("param/grad shapes match");
            }
            let m = self.m[i].get_or_insert_with(|| Tensor::zeros(g.dims()));
            let v = self.v[i].get_or_insert_with(|| Tensor::zeros(g.dims()));
            for ((mv, vv), &gv) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let (lr, eps) = (self.lr, self.eps);
            let m_ref = &*m;
            let v_ref = &*v;
            p.update_value(|value| {
                for ((wv, &mv), &vv) in value
                    .data_mut()
                    .iter_mut()
                    .zip(m_ref.data())
                    .zip(v_ref.data())
                {
                    let m_hat = mv / bc1;
                    let v_hat = vv / bc2;
                    *wv -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Step-decay learning-rate schedule: multiply the rate by `gamma` every
/// `step_epochs` epochs — the paper decays every 50 epochs on LeNet and at
/// epoch 200 for PECAN-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    base_lr: f32,
    step_epochs: usize,
    gamma: f32,
}

impl StepDecay {
    /// Creates a schedule starting at `base_lr`, decaying by `gamma` every
    /// `step_epochs`.
    ///
    /// # Panics
    ///
    /// Panics if `step_epochs == 0`.
    pub fn new(base_lr: f32, step_epochs: usize, gamma: f32) -> Self {
        assert!(step_epochs > 0, "step_epochs must be non-zero");
        Self { base_lr, step_epochs, gamma }
    }

    /// Learning rate for a zero-based `epoch`.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_epochs) as i32)
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: usize) {
        opt.set_learning_rate(self.lr_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross_entropy_logits;

    #[test]
    fn sgd_minimizes_quadratic() {
        let w = Var::parameter(Tensor::from_slice(&[5.0, -3.0]));
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        for _ in 0..100 {
            opt.zero_grad();
            w.mul(&w).unwrap().sum_all().backward();
            opt.step();
        }
        assert!(w.value().data().iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let w = Var::parameter(Tensor::from_slice(&[5.0]));
            let mut opt = Sgd::new(vec![w.clone()], 0.01).with_momentum(momentum);
            for _ in 0..50 {
                opt.zero_grad();
                w.mul(&w).unwrap().sum_all().backward();
                opt.step();
            }
            let v = w.value().data()[0].abs();
            v
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let w = Var::parameter(Tensor::from_slice(&[1.0]));
        let mut opt = Sgd::new(vec![w.clone()], 0.1).with_weight_decay(0.5);
        // Give it a zero "loss gradient" by back-propagating scale(0)
        for _ in 0..10 {
            opt.zero_grad();
            w.scale(0.0).backward();
            opt.step();
        }
        assert!(w.value().data()[0] < 1.0);
    }

    #[test]
    fn adam_trains_classifier_fast() {
        let logits = Var::parameter(Tensor::zeros(&[4, 3]));
        let labels = [0usize, 1, 2, 1];
        let mut opt = Adam::new(vec![logits.clone()], 0.05);
        for _ in 0..150 {
            opt.zero_grad();
            cross_entropy_logits(&logits, &labels).unwrap().backward();
            opt.step();
        }
        let loss = cross_entropy_logits(&logits, &labels).unwrap();
        assert!(loss.value().data()[0] < 0.05);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::new(0.01, 50, 0.1);
        assert!((s.lr_at(0) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(49) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(50) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(149) - 0.0001).abs() < 1e-7);
        let mut opt = Sgd::new(vec![], 0.01);
        s.apply(&mut opt, 100);
        assert!((opt.learning_rate() - 0.0001).abs() < 1e-7);
    }
}

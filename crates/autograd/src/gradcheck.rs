use crate::Var;
use pecan_tensor::Tensor;

/// Outcome of a finite-difference gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest |analytic − numeric| / (1 + |numeric|) over checked entries.
    pub max_relative_error: f32,
    /// Number of coordinates compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether every checked coordinate agreed within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_relative_error <= tol
    }
}

/// Compares the analytic gradient of `f` at `x0` against central finite
/// differences, coordinate by coordinate.
///
/// `f` must build a fresh graph from its leaf argument and return a scalar
/// node (shape `[1]`). At most `max_coords` coordinates are probed (spread
/// evenly through the tensor) to keep checks on large tensors cheap.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar node.
///
/// # Example
///
/// ```
/// use pecan_autograd::{check_gradients, Var};
/// use pecan_tensor::Tensor;
///
/// let x0 = Tensor::from_slice(&[0.5, -1.0, 2.0]);
/// let report = check_gradients(&x0, 1e-3, 16, |x| {
///     x.mul(x).expect("same shape").sum_all() // f = Σ x²
/// });
/// assert!(report.passes(1e-2));
/// ```
pub fn check_gradients(
    x0: &Tensor,
    eps: f32,
    max_coords: usize,
    f: impl Fn(&Var) -> Var,
) -> GradCheckReport {
    let leaf = Var::parameter(x0.clone());
    let out = f(&leaf);
    assert_eq!(out.value().len(), 1, "gradient check needs a scalar output");
    out.backward();
    let analytic = leaf
        .grad()
        .unwrap_or_else(|| Tensor::zeros(x0.dims()));

    let n = x0.len();
    let step = (n / max_coords.max(1)).max(1);
    let mut max_rel = 0.0f32;
    let mut checked = 0;
    let eval = |t: &Tensor| -> f32 {
        let leaf = Var::constant(t.clone());
        // constants carry no grad; rebuild with parameter to keep graph identical
        let leaf = Var::parameter(leaf.to_tensor());
        f(&leaf).value().data()[0]
    };
    let mut idx = 0;
    while idx < n {
        let mut plus = x0.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[idx] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.data()[idx];
        let rel = (a - numeric).abs() / (1.0 + numeric.abs());
        max_rel = max_rel.max(rel);
        checked += 1;
        idx += step;
    }
    GradCheckReport { max_relative_error: max_rel, checked }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_smooth_function() {
        let x0 = Tensor::from_slice(&[0.3, -0.8, 1.7, 0.0]);
        let report = check_gradients(&x0, 1e-3, 8, |x| {
            let y = x.scale(2.0).add(x).unwrap(); // 3x
            y.mul(&y).unwrap().sum_all() // 9·Σx²
        });
        assert!(report.passes(1e-2), "max rel err {}", report.max_relative_error);
        assert_eq!(report.checked, 4);
    }

    #[test]
    fn detects_wrong_gradient() {
        // relu at a kink has subgradient; far from kinks it must pass, but a
        // deliberately broken op (detach) yields zero analytic gradient and
        // the check reports the discrepancy.
        let x0 = Tensor::from_slice(&[1.0, 2.0]);
        let report = check_gradients(&x0, 1e-3, 4, |x| x.detach().mul(&x.detach()).unwrap().sum_all());
        assert!(!report.passes(1e-2));
    }

    #[test]
    fn respects_max_coords_budget() {
        let x0 = Tensor::zeros(&[100]);
        let report = check_gradients(&x0, 1e-3, 10, |x| x.sum_all());
        assert!(report.checked <= 15);
    }
}

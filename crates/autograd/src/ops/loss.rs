use crate::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

struct CrossEntropyOp {
    probs: Tensor, // softmax(logits), [n, k]
    labels: Vec<usize>,
}

impl BackwardOp for CrossEntropyOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let g = grad_out.data()[0];
        let (n, k) = (self.probs.dims()[0], self.probs.dims()[1]);
        let mut dl = self.probs.clone();
        for (r, &label) in self.labels.iter().enumerate() {
            let row = dl.row_mut(r);
            row[label] -= 1.0;
            for v in row {
                *v *= g / n as f32;
            }
        }
        let _ = k;
        vec![Some(dl)]
    }
    fn name(&self) -> &'static str {
        "cross_entropy"
    }
}

struct SoftmaxColumnsOp {
    softmax: Tensor, // [rows, cols]
    tau: f32,
}

impl BackwardOp for SoftmaxColumnsOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        // Per column: dX = (S ⊙ (dY − 1·(Sᵀ dY))) / tau
        let (rows, cols) = (self.softmax.dims()[0], self.softmax.dims()[1]);
        let mut dx = Tensor::zeros(&[rows, cols]);
        for j in 0..cols {
            let mut dot = 0.0;
            for i in 0..rows {
                dot += self.softmax.get2(i, j) * grad_out.get2(i, j);
            }
            for i in 0..rows {
                let v = self.softmax.get2(i, j) * (grad_out.get2(i, j) - dot) / self.tau;
                dx.set2(i, j, v);
            }
        }
        vec![Some(dx)]
    }
    fn name(&self) -> &'static str {
        "softmax_columns"
    }
}

/// Mean cross-entropy between row-wise `logits` `[n, k]` and integer class
/// `labels`, computed with the log-sum-exp trick. Returns a scalar node.
///
/// # Errors
///
/// Returns [`ShapeError`] when `logits` is not rank 2, `labels.len() != n`,
/// or any label is out of range.
///
/// # Example
///
/// ```
/// use pecan_autograd::{cross_entropy_logits, Var};
/// use pecan_tensor::Tensor;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let logits = Var::parameter(Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2])?);
/// let loss = cross_entropy_logits(&logits, &[0, 1])?;
/// assert!(loss.value().data()[0] < 0.01); // confident & correct
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy_logits(logits: &Var, labels: &[usize]) -> Result<Var, ShapeError> {
    let x = logits.value();
    x.shape().expect_rank(2)?;
    let (n, k) = (x.dims()[0], x.dims()[1]);
    if labels.len() != n {
        return Err(ShapeError::new(format!(
            "cross_entropy: {} labels for {n} rows",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(ShapeError::new(format!(
            "cross_entropy: label {bad} out of range for {k} classes"
        )));
    }
    let mut probs = Tensor::zeros(&[n, k]);
    let mut loss = 0.0f32;
    for r in 0..n {
        let row = x.row(r);
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - mx).exp();
            probs.set2(r, j, e);
            z += e;
        }
        for j in 0..k {
            let p = probs.get2(r, j) / z;
            probs.set2(r, j, p);
        }
        loss -= (probs.get2(r, labels[r]).max(1e-30)).ln();
    }
    loss /= n as f32;
    drop(x);
    Ok(Var::from_op(
        Tensor::from_slice(&[loss]),
        vec![logits.clone()],
        Box::new(CrossEntropyOp { probs, labels: labels.to_vec() }),
    ))
}

impl Var {
    /// Column-wise softmax with temperature `tau` on a rank-2 node — the
    /// differentiable attention of PECAN-A (Eq. 2) and the relaxed
    /// assignment of PECAN-D (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the node is not rank 2 or `tau <= 0`.
    pub fn softmax_columns(&self, tau: f32) -> Result<Var, ShapeError> {
        let value = self.value().softmax_columns(tau)?;
        Ok(Var::from_op(
            value.clone(),
            vec![self.clone()],
            Box::new(SoftmaxColumnsOp { softmax: value, tau }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Var::parameter(Tensor::zeros(&[3, 4]));
        let loss = cross_entropy_logits(&logits, &[0, 1, 2]).unwrap();
        assert!((loss.value().data()[0] - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_is_probs_minus_onehot() {
        let logits = Var::parameter(Tensor::zeros(&[1, 2]));
        let loss = cross_entropy_logits(&logits, &[1]).unwrap();
        loss.backward();
        let g = logits.grad().unwrap();
        assert!((g.data()[0] - 0.5).abs() < 1e-5);
        assert!((g.data()[1] + 0.5).abs() < 1e-5);
    }

    #[test]
    fn gradient_descent_on_loss_converges() {
        let logits = Var::parameter(Tensor::zeros(&[2, 3]));
        for _ in 0..200 {
            logits.zero_grad();
            let loss = cross_entropy_logits(&logits, &[0, 2]).unwrap();
            loss.backward();
            let g = logits.grad().unwrap();
            logits.update_value(|v| {
                v.axpy(-1.0, &g).unwrap();
            });
        }
        let loss = cross_entropy_logits(&logits, &[0, 2]).unwrap();
        assert!(loss.value().data()[0] < 0.05);
    }

    #[test]
    fn label_validation() {
        let logits = Var::parameter(Tensor::zeros(&[2, 3]));
        assert!(cross_entropy_logits(&logits, &[0]).is_err());
        assert!(cross_entropy_logits(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn softmax_columns_gradient_matches_finite_difference() {
        let x0 = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.9, -0.4], &[3, 2]).unwrap();
        let tau = 0.7;
        // loss = sum(softmax^2)
        let loss_of = |t: &Tensor| -> f32 {
            t.softmax_columns(tau)
                .unwrap()
                .data()
                .iter()
                .map(|v| v * v)
                .sum()
        };
        let x = Var::parameter(x0.clone());
        let s = x.softmax_columns(tau).unwrap();
        s.mul(&s).unwrap().sum_all().backward();
        let g = x.grad().unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let mut plus = x0.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[idx] -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (fd - g.data()[idx]).abs() < 1e-2,
                "idx {idx}: fd {fd} vs analytic {}",
                g.data()[idx]
            );
        }
    }
}

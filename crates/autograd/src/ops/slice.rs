use crate::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

struct SliceRowsOp {
    input_rows: usize,
    cols: usize,
    start: usize,
    len: usize,
}

impl BackwardOp for SliceRowsOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let mut dx = Tensor::zeros(&[self.input_rows, self.cols]);
        for r in 0..self.len {
            dx.row_mut(self.start + r).copy_from_slice(grad_out.row(r));
        }
        vec![Some(dx)]
    }
    fn name(&self) -> &'static str {
        "slice_rows"
    }
}

struct ConcatRowsOp {
    row_counts: Vec<usize>,
    cols: usize,
}

impl BackwardOp for ConcatRowsOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let mut grads = Vec::with_capacity(self.row_counts.len());
        let mut offset = 0;
        for &rows in &self.row_counts {
            let mut g = Tensor::zeros(&[rows, self.cols]);
            for r in 0..rows {
                g.row_mut(r).copy_from_slice(grad_out.row(offset + r));
            }
            offset += rows;
            grads.push(Some(g));
        }
        grads
    }
    fn name(&self) -> &'static str {
        "concat_rows"
    }
}

impl Var {
    /// Extracts rows `start .. start + len` of a rank-2 node — how PECAN
    /// splits the im2col matrix into its `D` codebook groups (§3).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the node is not rank 2 or the range is
    /// out of bounds.
    pub fn slice_rows(&self, start: usize, len: usize) -> Result<Var, ShapeError> {
        let input = self.value();
        input.shape().expect_rank(2)?;
        let (rows, cols) = (input.dims()[0], input.dims()[1]);
        if len == 0 || start + len > rows {
            return Err(ShapeError::new(format!(
                "slice_rows {start}..{} out of bounds for {rows} rows",
                start + len
            )));
        }
        let mut value = Tensor::zeros(&[len, cols]);
        for r in 0..len {
            value.row_mut(r).copy_from_slice(input.row(start + r));
        }
        drop(input);
        Ok(Var::from_op(
            value,
            vec![self.clone()],
            Box::new(SliceRowsOp { input_rows: rows, cols, start, len }),
        ))
    }
}

/// Stacks rank-2 nodes with equal column counts on top of each other —
/// the inverse of the group split, rebuilding the full approximated
/// feature matrix `X̃` from per-group `X̃(j)`.
///
/// # Errors
///
/// Returns [`ShapeError`] when `parts` is empty or column counts differ.
pub fn concat_rows(parts: &[Var]) -> Result<Var, ShapeError> {
    if parts.is_empty() {
        return Err(ShapeError::new("concat_rows of zero parts"));
    }
    let cols = {
        let first = parts[0].value();
        first.shape().expect_rank(2)?;
        first.dims()[1]
    };
    let mut row_counts = Vec::with_capacity(parts.len());
    let mut total_rows = 0;
    for p in parts {
        let v = p.value();
        v.shape().expect_rank(2)?;
        if v.dims()[1] != cols {
            return Err(ShapeError::new(format!(
                "concat_rows: column mismatch {} vs {cols}",
                v.dims()[1]
            )));
        }
        row_counts.push(v.dims()[0]);
        total_rows += v.dims()[0];
    }
    let mut value = Tensor::zeros(&[total_rows, cols]);
    let mut offset = 0;
    for p in parts {
        let v = p.value();
        for r in 0..v.dims()[0] {
            value.row_mut(offset + r).copy_from_slice(v.row(r));
        }
        offset += v.dims()[0];
    }
    Ok(Var::from_op(
        value,
        parts.to_vec(),
        Box::new(ConcatRowsOp { row_counts, cols }),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_then_concat_is_identity() {
        let x = Var::parameter(
            Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]).unwrap(),
        );
        let top = x.slice_rows(0, 2).unwrap();
        let bottom = x.slice_rows(2, 2).unwrap();
        let y = concat_rows(&[top, bottom]).unwrap();
        assert!(y.value().max_abs_diff(&x.value()) < 1e-6);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0; 12]);
    }

    #[test]
    fn slice_gradient_is_zero_outside_range() {
        let x = Var::parameter(Tensor::ones(&[3, 2]));
        let mid = x.slice_rows(1, 1).unwrap();
        mid.sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_routes_gradients_to_each_part() {
        let a = Var::parameter(Tensor::ones(&[1, 2]));
        let b = Var::parameter(Tensor::ones(&[2, 2]));
        let y = concat_rows(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(y.value().dims(), &[3, 2]);
        y.scale(2.0).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[2.0, 2.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0; 4]);
    }

    #[test]
    fn bounds_and_emptiness_are_errors() {
        let x = Var::parameter(Tensor::zeros(&[3, 2]));
        assert!(x.slice_rows(2, 2).is_err());
        assert!(x.slice_rows(0, 0).is_err());
        assert!(concat_rows(&[]).is_err());
        let y = Var::parameter(Tensor::zeros(&[1, 5]));
        assert!(concat_rows(&[x, y]).is_err());
    }
}

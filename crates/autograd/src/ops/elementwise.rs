use crate::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

struct AddOp;

impl BackwardOp for AddOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        vec![Some(grad_out.clone()), Some(grad_out.clone())]
    }
    fn name(&self) -> &'static str {
        "add"
    }
}

struct SubOp;

impl BackwardOp for SubOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        vec![Some(grad_out.clone()), Some(grad_out.scale(-1.0))]
    }
    fn name(&self) -> &'static str {
        "sub"
    }
}

struct MulOp {
    lhs: Tensor,
    rhs: Tensor,
}

impl BackwardOp for MulOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let dl = grad_out.mul(&self.rhs).expect("shapes fixed at forward");
        let dr = grad_out.mul(&self.lhs).expect("shapes fixed at forward");
        vec![Some(dl), Some(dr)]
    }
    fn name(&self) -> &'static str {
        "mul"
    }
}

struct ScaleOp {
    factor: f32,
}

impl BackwardOp for ScaleOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        vec![Some(grad_out.scale(self.factor))]
    }
    fn name(&self) -> &'static str {
        "scale"
    }
}

struct ReluOp {
    mask: Vec<bool>,
}

impl BackwardOp for ReluOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(self.mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "relu"
    }
}

struct SumOp {
    input_dims: Vec<usize>,
}

impl BackwardOp for SumOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let g = grad_out.data()[0];
        vec![Some(Tensor::full(&self.input_dims, g))]
    }
    fn name(&self) -> &'static str {
        "sum"
    }
}

impl Var {
    /// Elementwise sum of two same-shaped nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn add(&self, other: &Var) -> Result<Var, ShapeError> {
        let value = self.value().add(&other.value())?;
        Ok(Var::from_op(value, vec![self.clone(), other.clone()], Box::new(AddOp)))
    }

    /// Elementwise difference of two same-shaped nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn sub(&self, other: &Var) -> Result<Var, ShapeError> {
        let value = self.value().sub(&other.value())?;
        Ok(Var::from_op(value, vec![self.clone(), other.clone()], Box::new(SubOp)))
    }

    /// Elementwise (Hadamard) product of two same-shaped nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn mul(&self, other: &Var) -> Result<Var, ShapeError> {
        let lhs = self.to_tensor();
        let rhs = other.to_tensor();
        let value = lhs.mul(&rhs)?;
        Ok(Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(MulOp { lhs, rhs }),
        ))
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Var {
        let value = self.value().scale(factor);
        Var::from_op(value, vec![self.clone()], Box::new(ScaleOp { factor }))
    }

    /// Rectified linear unit, `max(x, 0)` elementwise.
    pub fn relu(&self) -> Var {
        let input = self.value();
        let mask: Vec<bool> = input.data().iter().map(|&v| v > 0.0).collect();
        let value = input.map(|v| v.max(0.0));
        drop(input);
        Var::from_op(value, vec![self.clone()], Box::new(ReluOp { mask }))
    }

    /// Sum of all elements, producing a scalar node of shape `[1]`.
    pub fn sum_all(&self) -> Var {
        let input_dims = self.value().dims().to_vec();
        let value = Tensor::from_slice(&[self.value().sum()]);
        Var::from_op(value, vec![self.clone()], Box::new(SumOp { input_dims }))
    }

    /// Mean of all elements, producing a scalar node of shape `[1]`.
    pub fn mean_all(&self) -> Var {
        let n = self.value().len().max(1) as f32;
        self.sum_all().scale(1.0 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(values: &[f32]) -> Var {
        Var::parameter(Tensor::from_slice(values))
    }

    #[test]
    fn add_sub_gradients() {
        let a = param(&[1.0, 2.0]);
        let b = param(&[3.0, 4.0]);
        let y = a.add(&b).unwrap().sub(&b).unwrap().sum_all();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn mul_product_rule() {
        let a = param(&[2.0]);
        let b = param(&[5.0]);
        let y = a.mul(&b).unwrap();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[5.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn relu_masks_negative_gradient() {
        let x = param(&[-1.0, 0.0, 2.0]);
        let y = x.relu().sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 1.0]);
        assert_eq!(x.relu().value().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn mean_all_scales_gradient() {
        let x = param(&[1.0, 3.0, 5.0, 7.0]);
        let y = x.mean_all();
        assert!((y.value().data()[0] - 4.0).abs() < 1e-6);
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn scale_chains() {
        let x = param(&[3.0]);
        let y = x.scale(2.0).scale(-1.5);
        y.backward();
        assert_eq!(y.value().data(), &[-9.0]);
        assert_eq!(x.grad().unwrap().data(), &[-3.0]);
    }
}

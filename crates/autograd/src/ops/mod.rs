//! Built-in differentiable operations.
//!
//! Each submodule registers forward ops as methods on [`crate::Var`] and
//! implements the matching [`crate::BackwardOp`]. The PECAN-specific ops
//! (soft/hard prototype assignment) live in the `pecan-pq` crate and plug in
//! through [`crate::Var::from_op`].

pub mod conv;
pub mod elementwise;
pub mod loss;
pub mod matmul;
pub mod norm;
pub mod pool;
pub mod reshape;
pub mod slice;

use crate::{BackwardOp, Var};
use pecan_tensor::{col2im, im2col, Conv2dGeometry, ShapeError, Tensor};

struct Im2colBatchOp {
    geom: Conv2dGeometry,
    batch: usize,
}

impl BackwardOp for Im2colBatchOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let g = &self.geom;
        let hw = g.n_patches();
        let rows = g.patch_len();
        let total_cols = self.batch * hw;
        let mut dinput = Tensor::zeros(&[self.batch, g.c_in(), g.h_in(), g.w_in()]);
        let img_len = g.c_in() * g.h_in() * g.w_in();
        for n in 0..self.batch {
            // Slice this sample's columns out of [rows, N·HW].
            let mut cols_n = Tensor::zeros(&[rows, hw]);
            for r in 0..rows {
                let src = &grad_out.data()[r * total_cols + n * hw..r * total_cols + (n + 1) * hw];
                cols_n.row_mut(r).copy_from_slice(src);
            }
            let dimg = col2im(&cols_n, g).expect("geometry fixed at forward");
            dinput.data_mut()[n * img_len..(n + 1) * img_len].copy_from_slice(dimg.data());
        }
        vec![Some(dinput)]
    }
    fn name(&self) -> &'static str {
        "im2col_batch"
    }
}

struct ColsToNchwOp {
    batch: usize,
    channels: usize,
    hw: usize,
}

impl BackwardOp for ColsToNchwOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        // grad_out: [N, C, H, W] -> gradient for [C, N·HW]
        let (n_b, c_n, hw) = (self.batch, self.channels, self.hw);
        let mut g = Tensor::zeros(&[c_n, n_b * hw]);
        let src = grad_out.data();
        let dst = g.data_mut();
        for n in 0..n_b {
            for c in 0..c_n {
                let s = &src[(n * c_n + c) * hw..(n * c_n + c + 1) * hw];
                let d = &mut dst[c * (n_b * hw) + n * hw..c * (n_b * hw) + (n + 1) * hw];
                d.copy_from_slice(s);
            }
        }
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "cols_to_nchw"
    }
}

impl Var {
    /// Unfolds a batched image `[N, cin, Hin, Win]` into the im2col feature
    /// matrix `X ∈ R^{cin·k² × N·Hout·Wout}` (columns are sample-major:
    /// column `n·HW + i` is patch `i` of sample `n`).
    ///
    /// This is the differentiable entry into the PECAN pipeline of
    /// Fig. 1(b): both the baseline convolution and the PQ quantization
    /// consume this matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the node is not `[N, cin, Hin, Win]` for
    /// `geom`.
    pub fn im2col_batch(&self, geom: &Conv2dGeometry) -> Result<Var, ShapeError> {
        let input = self.value();
        input.shape().expect_rank(4)?;
        let dims = input.dims();
        if dims[1] != geom.c_in() || dims[2] != geom.h_in() || dims[3] != geom.w_in() {
            return Err(ShapeError::new(format!(
                "im2col_batch: input {:?} does not match geometry (cin={}, h={}, w={})",
                dims,
                geom.c_in(),
                geom.h_in(),
                geom.w_in()
            )));
        }
        let batch = dims[0];
        let rows = geom.patch_len();
        let hw = geom.n_patches();
        let img_len = geom.c_in() * geom.h_in() * geom.w_in();
        let mut value = Tensor::zeros(&[rows, batch * hw]);
        for n in 0..batch {
            let img = Tensor::from_vec(
                input.data()[n * img_len..(n + 1) * img_len].to_vec(),
                &[geom.c_in(), geom.h_in(), geom.w_in()],
            )?;
            let cols = im2col(&img, geom)?;
            for r in 0..rows {
                let dst_off = r * (batch * hw) + n * hw;
                value.data_mut()[dst_off..dst_off + hw].copy_from_slice(cols.row(r));
            }
        }
        drop(input);
        Ok(Var::from_op(
            value,
            vec![self.clone()],
            Box::new(Im2colBatchOp { geom: *geom, batch }),
        ))
    }

    /// Re-lays a `[C, N·HW]` matrix (conv output over im2col columns) as the
    /// feature map `[N, C, Hout, Wout]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the node is not `[C, batch·h·w]`.
    pub fn cols_to_nchw(
        &self,
        batch: usize,
        h: usize,
        w: usize,
    ) -> Result<Var, ShapeError> {
        let input = self.value();
        input.shape().expect_rank(2)?;
        let c_n = input.dims()[0];
        let hw = h * w;
        if input.dims()[1] != batch * hw {
            return Err(ShapeError::new(format!(
                "cols_to_nchw: {:?} does not hold {batch}·{h}·{w} columns",
                input.dims()
            )));
        }
        let mut value = Tensor::zeros(&[batch, c_n, h, w]);
        {
            let src = input.data();
            let dst = value.data_mut();
            for n in 0..batch {
                for c in 0..c_n {
                    let s = &src[c * (batch * hw) + n * hw..c * (batch * hw) + (n + 1) * hw];
                    let d = &mut dst[(n * c_n + c) * hw..(n * c_n + c + 1) * hw];
                    d.copy_from_slice(s);
                }
            }
        }
        drop(input);
        Ok(Var::from_op(
            value,
            vec![self.clone()],
            Box::new(ColsToNchwOp { batch, channels: c_n, hw }),
        ))
    }

    /// Complete 2-D convolution: `im2col → weight·X → +bias → NCHW`.
    ///
    /// `weight` must be the flattened filter matrix `[cout, cin·k²]`
    /// (Fig. 1(b)); `bias` is `[cout]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on any shape inconsistency.
    pub fn conv2d(
        &self,
        weight: &Var,
        bias: Option<&Var>,
        geom: &Conv2dGeometry,
    ) -> Result<Var, ShapeError> {
        let batch = {
            let v = self.value();
            v.shape().expect_rank(4)?;
            v.dims()[0]
        };
        let cols = self.im2col_batch(geom)?;
        let mut out = weight.matmul(&cols)?;
        if let Some(b) = bias {
            out = out.add_bias_rows(b)?;
        }
        out.cols_to_nchw(batch, geom.h_out(), geom.w_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: &[usize], scale: f32) -> Tensor {
        let len: usize = dims.iter().product();
        Tensor::from_vec(
            (0..len).map(|i| ((i * 31 % 17) as f32 - 8.0) * scale).collect(),
            dims,
        )
        .unwrap()
    }

    #[test]
    fn conv2d_matches_manual_convolution() {
        let geom = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        let x = Var::parameter(ramp(&[2, 2, 4, 4], 0.3));
        let w = Var::parameter(ramp(&[3, 18], 0.2));
        let b = Var::parameter(Tensor::from_slice(&[0.1, -0.2, 0.3]));
        let y = x.conv2d(&w, Some(&b), &geom).unwrap();
        assert_eq!(y.value().dims(), &[2, 3, 4, 4]);

        // spot-check one output element against a hand conv
        let (n, f, oy, ox) = (1, 2, 2, 1);
        let mut acc = b.value().data()[f];
        for c in 0..2 {
            for ky in 0..3 {
                for kx in 0..3 {
                    let iy = oy as isize + ky as isize - 1;
                    let ix = ox as isize + kx as isize - 1;
                    if (0..4).contains(&iy) && (0..4).contains(&ix) {
                        acc += w.value().get2(f, (c * 3 + ky) * 3 + kx)
                            * x.value().at(&[n, c, iy as usize, ix as usize]);
                    }
                }
            }
        }
        let got = y.value().at(&[n, f, oy, ox]);
        assert!((got - acc).abs() < 1e-4, "got {got}, want {acc}");
    }

    #[test]
    fn conv2d_backward_is_finite_difference_consistent() {
        let geom = Conv2dGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let x0 = ramp(&[1, 1, 3, 3], 0.5);
        let w0 = ramp(&[2, 4], 0.4);

        let loss_of = |xt: &Tensor, wt: &Tensor| -> f32 {
            let x = Var::constant(xt.clone());
            let w = Var::constant(wt.clone());
            let y = x.conv2d(&w, None, &geom).unwrap();
            // squared sum keeps gradient non-constant in the inputs
            let s: f32 = y.value().data().iter().map(|v| v * v).sum();
            s
        };

        let x = Var::parameter(x0.clone());
        let w = Var::parameter(w0.clone());
        let y = x.conv2d(&w, None, &geom).unwrap();
        let sq = y.mul(&y).unwrap().sum_all();
        sq.backward();

        let eps = 1e-2;
        // check two coordinates of each gradient
        for (idx, grad) in [(0usize, x.grad().unwrap()), (3, x.grad().unwrap())] {
            let mut plus = x0.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[idx] -= eps;
            let fd = (loss_of(&plus, &w0) - loss_of(&minus, &w0)) / (2.0 * eps);
            let an = grad.data()[idx];
            assert!((fd - an).abs() < 0.05 * (1.0 + fd.abs()), "dx[{idx}]: fd {fd} vs {an}");
        }
        for idx in [0usize, 5] {
            let mut plus = w0.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = w0.clone();
            minus.data_mut()[idx] -= eps;
            let fd = (loss_of(&x0, &plus) - loss_of(&x0, &minus)) / (2.0 * eps);
            let an = w.grad().unwrap().data()[idx];
            assert!((fd - an).abs() < 0.05 * (1.0 + fd.abs()), "dw[{idx}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn cols_roundtrip_is_identity() {
        let geom = Conv2dGeometry::new(1, 4, 4, 1, 1, 0).unwrap();
        let x = Var::parameter(ramp(&[3, 1, 4, 4], 1.0));
        // 1×1 kernel: im2col is just a re-layout, so NCHW→cols→NCHW is identity
        let cols = x.im2col_batch(&geom).unwrap();
        let back = cols.cols_to_nchw(3, 4, 4).unwrap();
        assert!(back.value().max_abs_diff(&x.value()) < 1e-6);
        back.sum_all().backward();
        assert_eq!(x.grad().unwrap().data().iter().sum::<f32>(), 48.0);
    }

    #[test]
    fn shape_errors_are_reported() {
        let geom = Conv2dGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        let x = Var::parameter(Tensor::zeros(&[1, 3, 4, 4])); // wrong cin
        assert!(x.im2col_batch(&geom).is_err());
        let m = Var::parameter(Tensor::zeros(&[2, 10]));
        assert!(m.cols_to_nchw(1, 3, 3).is_err());
    }
}

use crate::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

struct MaxPool2dOp {
    input_dims: Vec<usize>,
    /// For every output element, the flat index of the winning input element.
    argmax: Vec<usize>,
}

impl BackwardOp for MaxPool2dOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let mut dx = Tensor::zeros(&self.input_dims);
        for (&src, &g) in self.argmax.iter().zip(grad_out.data()) {
            dx.data_mut()[src] += g;
        }
        vec![Some(dx)]
    }
    fn name(&self) -> &'static str {
        "max_pool2d"
    }
}

struct GlobalAvgPoolOp {
    input_dims: Vec<usize>,
}

impl BackwardOp for GlobalAvgPoolOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let (n_b, c_n, h, w) =
            (self.input_dims[0], self.input_dims[1], self.input_dims[2], self.input_dims[3]);
        let hw = h * w;
        let mut dx = Tensor::zeros(&self.input_dims);
        for n in 0..n_b {
            for c in 0..c_n {
                let g = grad_out.data()[n * c_n + c] / hw as f32;
                for v in &mut dx.data_mut()[(n * c_n + c) * hw..(n * c_n + c + 1) * hw] {
                    *v = g;
                }
            }
        }
        vec![Some(dx)]
    }
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }
}

impl Var {
    /// Max pooling over `[N, C, H, W]` with square window `kernel` and the
    /// given `stride` (the paper's LeNet uses 2×2/2).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the node is not rank 4 or the window does
    /// not fit.
    pub fn max_pool2d(&self, kernel: usize, stride: usize) -> Result<Var, ShapeError> {
        let input = self.value();
        input.shape().expect_rank(4)?;
        let dims = input.dims().to_vec();
        let (n_b, c_n, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if kernel == 0 || stride == 0 || kernel > h || kernel > w {
            return Err(ShapeError::new(format!(
                "max_pool2d: window {kernel}/stride {stride} does not fit {h}×{w}"
            )));
        }
        let h_out = (h - kernel) / stride + 1;
        let w_out = (w - kernel) / stride + 1;
        let mut value = Tensor::zeros(&[n_b, c_n, h_out, w_out]);
        let mut argmax = vec![0usize; n_b * c_n * h_out * w_out];
        let src = input.data();
        {
            let dst = value.data_mut();
            let mut out_i = 0;
            for n in 0..n_b {
                for c in 0..c_n {
                    let base = (n * c_n + c) * h * w;
                    for oy in 0..h_out {
                        for ox in 0..w_out {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_idx = 0;
                            for ky in 0..kernel {
                                for kx in 0..kernel {
                                    let iy = oy * stride + ky;
                                    let ix = ox * stride + kx;
                                    let idx = base + iy * w + ix;
                                    if src[idx] > best {
                                        best = src[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            dst[out_i] = best;
                            argmax[out_i] = best_idx;
                            out_i += 1;
                        }
                    }
                }
            }
        }
        drop(input);
        Ok(Var::from_op(
            value,
            vec![self.clone()],
            Box::new(MaxPool2dOp { input_dims: dims, argmax }),
        ))
    }

    /// Global average pooling `[N, C, H, W] → [N, C]` (ResNet head).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the node is not rank 4.
    pub fn global_avg_pool(&self) -> Result<Var, ShapeError> {
        let input = self.value();
        input.shape().expect_rank(4)?;
        let dims = input.dims().to_vec();
        let (n_b, c_n, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let hw = (h * w) as f32;
        let mut value = Tensor::zeros(&[n_b, c_n]);
        for n in 0..n_b {
            for c in 0..c_n {
                let s: f32 = input.data()
                    [(n * c_n + c) * h * w..(n * c_n + c + 1) * h * w]
                    .iter()
                    .sum();
                value.data_mut()[n * c_n + c] = s / hw;
            }
        }
        drop(input);
        Ok(Var::from_op(
            value,
            vec![self.clone()],
            Box::new(GlobalAvgPoolOp { input_dims: dims }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maxima() {
        let x = Var::parameter(
            Tensor::from_vec(
                vec![
                    1.0, 2.0, 5.0, 6.0, //
                    3.0, 4.0, 7.0, 8.0, //
                    -1.0, 0.0, 9.0, 2.0, //
                    0.0, 0.0, 1.0, 1.0,
                ],
                &[1, 1, 4, 4],
            )
            .unwrap(),
        );
        let y = x.max_pool2d(2, 2).unwrap();
        assert_eq!(y.value().data(), &[4.0, 8.0, 0.0, 9.0]);
        y.sum_all().backward();
        let g = x.grad().unwrap();
        // gradient lands only on the winners
        assert_eq!(g.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(g.at(&[0, 0, 1, 3]), 1.0);
        assert_eq!(g.at(&[0, 0, 2, 1]), 1.0);
        assert_eq!(g.at(&[0, 0, 2, 2]), 1.0);
        assert_eq!(g.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn global_avg_pool_averages_and_spreads_gradient() {
        let x = Var::parameter(
            Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap(),
        );
        let y = x.global_avg_pool().unwrap();
        assert_eq!(y.value().data(), &[1.5, 5.5]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 8]);
    }

    #[test]
    fn pool_shape_errors() {
        let x = Var::parameter(Tensor::zeros(&[1, 1, 2, 2]));
        assert!(x.max_pool2d(3, 1).is_err());
        assert!(x.max_pool2d(0, 1).is_err());
        let flat = Var::parameter(Tensor::zeros(&[4]));
        assert!(flat.max_pool2d(2, 2).is_err());
        assert!(flat.global_avg_pool().is_err());
    }
}

use crate::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

struct MatmulOp {
    lhs: Tensor,
    rhs: Tensor,
}

impl BackwardOp for MatmulOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        // y = A·B  =>  dA = dY·Bᵀ, dB = Aᵀ·dY
        let da = grad_out.matmul_nt(&self.rhs).expect("shapes fixed at forward");
        let db = self.lhs.matmul_tn(grad_out).expect("shapes fixed at forward");
        vec![Some(da), Some(db)]
    }
    fn name(&self) -> &'static str {
        "matmul"
    }
}

struct LinearOp {
    input: Tensor,  // [n, in]
    weight: Tensor, // [out, in]
}

impl BackwardOp for LinearOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        // y = X·Wᵀ + b  (grad_out: [n, out])
        let dx = grad_out.matmul(&self.weight).expect("shapes fixed at forward");
        let dw = grad_out
            .matmul_tn(&self.input)
            .expect("shapes fixed at forward"); // [out, in]
        let db = grad_out
            .sum_columns()
            .expect("grad_out rank 2 by construction");
        vec![Some(dx), Some(dw), Some(db)]
    }
    fn name(&self) -> &'static str {
        "linear"
    }
}

struct AddBiasRowsOp {
    rows: usize,
    cols: usize,
}

impl BackwardOp for AddBiasRowsOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let mut db = Tensor::zeros(&[self.rows]);
        for r in 0..self.rows {
            db.data_mut()[r] = grad_out.row(r).iter().sum();
        }
        let _ = self.cols;
        vec![Some(grad_out.clone()), Some(db)]
    }
    fn name(&self) -> &'static str {
        "add_bias_rows"
    }
}

impl Var {
    /// Matrix product of two rank-2 nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank or inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Var) -> Result<Var, ShapeError> {
        let lhs_t = self.to_tensor();
        let rhs_t = rhs.to_tensor();
        let value = lhs_t.matmul(&rhs_t)?;
        Ok(Var::from_op(
            value,
            vec![self.clone(), rhs.clone()],
            Box::new(MatmulOp { lhs: lhs_t, rhs: rhs_t }),
        ))
    }

    /// Fully-connected layer `X·Wᵀ + b` with `X = self` of shape `[n, in]`,
    /// `weight` `[out, in]` and `bias` `[out]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes are inconsistent.
    pub fn linear(&self, weight: &Var, bias: &Var) -> Result<Var, ShapeError> {
        let x = self.to_tensor();
        let w = weight.to_tensor();
        x.shape().expect_rank(2)?;
        w.shape().expect_rank(2)?;
        bias.value().shape().expect_rank(1)?;
        let (out_f, in_f) = (w.dims()[0], w.dims()[1]);
        if x.dims()[1] != in_f || bias.value().len() != out_f {
            return Err(ShapeError::new(format!(
                "linear: x {:?}, weight {:?}, bias {:?} are inconsistent",
                x.dims(),
                w.dims(),
                bias.value().dims()
            )));
        }
        let mut value = x.matmul_nt(&w)?; // [n, out]
        {
            let b = bias.value();
            let n = value.dims()[0];
            for r in 0..n {
                for (v, &bv) in value.row_mut(r).iter_mut().zip(b.data()) {
                    *v += bv;
                }
            }
        }
        Ok(Var::from_op(
            value,
            vec![self.clone(), weight.clone(), bias.clone()],
            Box::new(LinearOp { input: x, weight: w }),
        ))
    }

    /// Adds a per-row bias to a rank-2 node: `out[r, c] = self[r, c] + bias[r]`.
    ///
    /// This is the conv-bias pattern on the im2col output `[cout, HW]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `bias` is not `[rows]`.
    pub fn add_bias_rows(&self, bias: &Var) -> Result<Var, ShapeError> {
        let x = self.value();
        x.shape().expect_rank(2)?;
        let (rows, cols) = (x.dims()[0], x.dims()[1]);
        if bias.value().dims() != [rows] {
            return Err(ShapeError::new(format!(
                "add_bias_rows: bias {:?} does not match {rows} rows",
                bias.value().dims()
            )));
        }
        let mut value = x.clone();
        drop(x);
        {
            let b = bias.value();
            for r in 0..rows {
                let bv = b.data()[r];
                for v in value.row_mut(r) {
                    *v += bv;
                }
            }
        }
        Ok(Var::from_op(
            value,
            vec![self.clone(), bias.clone()],
            Box::new(AddBiasRowsOp { rows, cols }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_gradients_match_closed_form() {
        let a = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = Var::parameter(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap());
        let y = a.matmul(&b).unwrap().sum_all();
        y.backward();
        // d(sum(AB))/dA = 1·Bᵀ (row sums of B), d/dB = Aᵀ·1
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn linear_matches_matmul_plus_bias() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let w = Var::parameter(Tensor::from_vec(vec![1.0, -1.0, 0.5, 0.5], &[2, 2]).unwrap());
        let b = Var::parameter(Tensor::from_slice(&[10.0, 20.0]));
        let y = x.linear(&w, &b).unwrap();
        assert_eq!(y.value().data(), &[9.0, 21.5, 9.0, 23.5]);
        y.sum_all().backward();
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0]);
        // dX = 1 · W
        assert_eq!(x.grad().unwrap().data(), &[1.5, -0.5, 1.5, -0.5]);
    }

    #[test]
    fn linear_rejects_bad_shapes() {
        let x = Var::parameter(Tensor::zeros(&[2, 3]));
        let w = Var::parameter(Tensor::zeros(&[4, 5]));
        let b = Var::parameter(Tensor::zeros(&[4]));
        assert!(x.linear(&w, &b).is_err());
    }

    #[test]
    fn add_bias_rows_broadcasts_and_sums() {
        let x = Var::parameter(Tensor::zeros(&[2, 3]));
        let b = Var::parameter(Tensor::from_slice(&[1.0, -1.0]));
        let y = x.add_bias_rows(&b).unwrap();
        assert_eq!(y.value().data(), &[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);
        y.sum_all().backward();
        assert_eq!(b.grad().unwrap().data(), &[3.0, 3.0]);
    }
}

use crate::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

struct BatchNorm2dTrainOp {
    x_hat: Tensor,        // normalized input, same shape as input
    inv_std: Vec<f32>,    // per channel
    gamma: Vec<f32>,      // per channel
    dims: Vec<usize>,     // [N, C, H, W]
}

impl BackwardOp for BatchNorm2dTrainOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let (n_b, c_n, h, w) = (self.dims[0], self.dims[1], self.dims[2], self.dims[3]);
        let hw = h * w;
        let m = (n_b * hw) as f32;
        let mut dx = Tensor::zeros(&self.dims);
        let mut dgamma = Tensor::zeros(&[c_n]);
        let mut dbeta = Tensor::zeros(&[c_n]);

        for c in 0..c_n {
            // Accumulate the per-channel sums the closed-form backward needs.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for n in 0..n_b {
                let base = (n * c_n + c) * hw;
                for i in 0..hw {
                    let dy = grad_out.data()[base + i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * self.x_hat.data()[base + i];
                }
            }
            dgamma.data_mut()[c] = sum_dy_xhat;
            dbeta.data_mut()[c] = sum_dy;
            let g = self.gamma[c];
            let inv_std = self.inv_std[c];
            for n in 0..n_b {
                let base = (n * c_n + c) * hw;
                for i in 0..hw {
                    let dy = grad_out.data()[base + i];
                    let xh = self.x_hat.data()[base + i];
                    dx.data_mut()[base + i] =
                        g * inv_std / m * (m * dy - sum_dy - xh * sum_dy_xhat);
                }
            }
        }
        vec![Some(dx), Some(dgamma), Some(dbeta)]
    }
    fn name(&self) -> &'static str {
        "batch_norm2d_train"
    }
}

struct BatchNorm2dEvalOp {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    gamma: Vec<f32>,
    dims: Vec<usize>,
}

impl BackwardOp for BatchNorm2dEvalOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let (n_b, c_n, h, w) = (self.dims[0], self.dims[1], self.dims[2], self.dims[3]);
        let hw = h * w;
        let mut dx = Tensor::zeros(&self.dims);
        let mut dgamma = Tensor::zeros(&[c_n]);
        let mut dbeta = Tensor::zeros(&[c_n]);
        for c in 0..c_n {
            let g = self.gamma[c];
            let inv_std = self.inv_std[c];
            for n in 0..n_b {
                let base = (n * c_n + c) * hw;
                for i in 0..hw {
                    let dy = grad_out.data()[base + i];
                    dgamma.data_mut()[c] += dy * self.x_hat.data()[base + i];
                    dbeta.data_mut()[c] += dy;
                    dx.data_mut()[base + i] = dy * g * inv_std;
                }
            }
        }
        vec![Some(dx), Some(dgamma), Some(dbeta)]
    }
    fn name(&self) -> &'static str {
        "batch_norm2d_eval"
    }
}

/// Per-channel batch statistics produced by the training-mode forward pass,
/// for the caller to fold into its running estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel (biased) batch variance.
    pub var: Vec<f32>,
}

impl Var {
    /// Training-mode 2-D batch normalisation over `[N, C, H, W]` with
    /// learnable per-channel `gamma`/`beta`; normalises with the current
    /// batch statistics and returns them for running-average upkeep.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes are inconsistent.
    pub fn batch_norm2d_train(
        &self,
        gamma: &Var,
        beta: &Var,
        eps: f32,
    ) -> Result<(Var, BatchStats), ShapeError> {
        let input = self.value();
        input.shape().expect_rank(4)?;
        let dims = input.dims().to_vec();
        let (n_b, c_n, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if gamma.value().dims() != [c_n] || beta.value().dims() != [c_n] {
            return Err(ShapeError::new(format!(
                "batch_norm2d: gamma/beta must be [{c_n}], got {:?}/{:?}",
                gamma.value().dims(),
                beta.value().dims()
            )));
        }
        let hw = h * w;
        let m = (n_b * hw) as f32;
        let mut mean = vec![0.0f32; c_n];
        let mut var = vec![0.0f32; c_n];
        for c in 0..c_n {
            let mut s = 0.0;
            for n in 0..n_b {
                let base = (n * c_n + c) * hw;
                s += input.data()[base..base + hw].iter().sum::<f32>();
            }
            mean[c] = s / m;
            let mut v = 0.0;
            for n in 0..n_b {
                let base = (n * c_n + c) * hw;
                for i in 0..hw {
                    let d = input.data()[base + i] - mean[c];
                    v += d * d;
                }
            }
            var[c] = v / m;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let gamma_v: Vec<f32> = gamma.value().data().to_vec();
        let beta_v: Vec<f32> = beta.value().data().to_vec();

        let mut x_hat = Tensor::zeros(&dims);
        let mut out = Tensor::zeros(&dims);
        for c in 0..c_n {
            for n in 0..n_b {
                let base = (n * c_n + c) * hw;
                for i in 0..hw {
                    let xh = (input.data()[base + i] - mean[c]) * inv_std[c];
                    x_hat.data_mut()[base + i] = xh;
                    out.data_mut()[base + i] = gamma_v[c] * xh + beta_v[c];
                }
            }
        }
        drop(input);
        let node = Var::from_op(
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(BatchNorm2dTrainOp {
                x_hat,
                inv_std,
                gamma: gamma_v,
                dims,
            }),
        );
        Ok((node, BatchStats { mean, var }))
    }

    /// Inference-mode batch normalisation using frozen `running_mean` /
    /// `running_var` (these fold into the preceding convolution on hardware,
    /// which is why the paper excludes them from FLOP counts).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes are inconsistent.
    pub fn batch_norm2d_eval(
        &self,
        gamma: &Var,
        beta: &Var,
        running_mean: &[f32],
        running_var: &[f32],
        eps: f32,
    ) -> Result<Var, ShapeError> {
        let input = self.value();
        input.shape().expect_rank(4)?;
        let dims = input.dims().to_vec();
        let (n_b, c_n, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if gamma.value().dims() != [c_n]
            || beta.value().dims() != [c_n]
            || running_mean.len() != c_n
            || running_var.len() != c_n
        {
            return Err(ShapeError::new(format!(
                "batch_norm2d_eval: per-channel params must be [{c_n}]"
            )));
        }
        let hw = h * w;
        let inv_std: Vec<f32> = running_var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let gamma_v: Vec<f32> = gamma.value().data().to_vec();
        let beta_v: Vec<f32> = beta.value().data().to_vec();
        let mut x_hat = Tensor::zeros(&dims);
        let mut out = Tensor::zeros(&dims);
        for c in 0..c_n {
            for n in 0..n_b {
                let base = (n * c_n + c) * hw;
                for i in 0..hw {
                    let xh = (input.data()[base + i] - running_mean[c]) * inv_std[c];
                    x_hat.data_mut()[base + i] = xh;
                    out.data_mut()[base + i] = gamma_v[c] * xh + beta_v[c];
                }
            }
        }
        drop(input);
        Ok(Var::from_op(
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(BatchNorm2dEvalOp { x_hat, inv_std, gamma: gamma_v, dims }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(dims: &[usize]) -> Tensor {
        let len: usize = dims.iter().product();
        Tensor::from_vec(
            (0..len).map(|i| ((i * 29 % 13) as f32) * 0.5 - 3.0).collect(),
            dims,
        )
        .unwrap()
    }

    #[test]
    fn train_output_is_normalized() {
        let x = Var::parameter(ramp(&[4, 3, 2, 2]));
        let gamma = Var::parameter(Tensor::ones(&[3]));
        let beta = Var::parameter(Tensor::zeros(&[3]));
        let (y, stats) = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        // each channel of y should have ~zero mean and ~unit variance
        let v = y.value();
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..4 {
                for i in 0..4 {
                    vals.push(v.at(&[n, c, i / 2, i % 2]));
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&a| (a - mean) * (a - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
        assert_eq!(stats.mean.len(), 3);
    }

    #[test]
    fn train_gradient_sums_to_zero_per_channel() {
        // BN output is mean-free per channel, so d(loss)/dx must sum to zero
        // per channel for any loss — a classic BN backward invariant.
        let x = Var::parameter(ramp(&[2, 2, 3, 3]));
        let gamma = Var::parameter(Tensor::from_slice(&[1.5, 0.5]));
        let beta = Var::parameter(Tensor::from_slice(&[0.0, 1.0]));
        let (y, _) = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        let loss = y.mul(&y).unwrap().sum_all();
        loss.backward();
        let g = x.grad().unwrap();
        for c in 0..2 {
            let mut s = 0.0;
            for n in 0..2 {
                for i in 0..9 {
                    s += g.at(&[n, c, i / 3, i % 3]);
                }
            }
            assert!(s.abs() < 1e-3, "channel {c} grad sum {s}");
        }
        // gamma/beta get gradients too
        assert!(gamma.grad().is_some());
        assert!(beta.grad().is_some());
    }

    #[test]
    fn eval_uses_running_stats() {
        let x = Var::parameter(Tensor::full(&[1, 1, 2, 2], 4.0));
        let gamma = Var::parameter(Tensor::ones(&[1]));
        let beta = Var::parameter(Tensor::zeros(&[1]));
        let y = x
            .batch_norm2d_eval(&gamma, &beta, &[2.0], &[4.0], 0.0)
            .unwrap();
        // (4 - 2)/2 = 1
        assert!(y.value().data().iter().all(|&v| (v - 1.0).abs() < 1e-5));
        y.sum_all().backward();
        // dx = gamma / std = 0.5
        assert!(x
            .grad()
            .unwrap()
            .data()
            .iter()
            .all(|&v| (v - 0.5).abs() < 1e-5));
    }

    #[test]
    fn shape_validation() {
        let x = Var::parameter(Tensor::zeros(&[1, 2, 2, 2]));
        let bad = Var::parameter(Tensor::zeros(&[3]));
        let good = Var::parameter(Tensor::zeros(&[2]));
        assert!(x.batch_norm2d_train(&bad, &good, 1e-5).is_err());
        assert!(x
            .batch_norm2d_eval(&good, &good, &[0.0], &[1.0], 1e-5)
            .is_err());
    }
}

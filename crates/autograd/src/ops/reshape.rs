use crate::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

struct Transpose2Op;

impl BackwardOp for Transpose2Op {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let g = grad_out
            .transpose2()
            .expect("rank-2 guaranteed by forward transpose");
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "transpose2"
    }
}

struct ReshapeOp {
    input_dims: Vec<usize>,
}

impl BackwardOp for ReshapeOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let g = grad_out
            .reshape(&self.input_dims)
            .expect("element count preserved by forward reshape");
        vec![Some(g)]
    }
    fn name(&self) -> &'static str {
        "reshape"
    }
}

impl Var {
    /// Views the node under a new shape (same element count, pass-through
    /// gradient).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Var, ShapeError> {
        let input_dims = self.value().dims().to_vec();
        let value = self.value().reshape(dims)?;
        Ok(Var::from_op(
            value,
            vec![self.clone()],
            Box::new(ReshapeOp { input_dims }),
        ))
    }

    /// Transpose of a rank-2 node.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the node is not rank 2.
    pub fn transpose2(&self) -> Result<Var, ShapeError> {
        let value = self.value().transpose2()?;
        Ok(Var::from_op(value, vec![self.clone()], Box::new(Transpose2Op)))
    }

    /// Flattens `[N, ...]` to `[N, rest]` — the conv→FC transition.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the node is rank 0.
    pub fn flatten_batch(&self) -> Result<Var, ShapeError> {
        let dims = self.value().dims().to_vec();
        if dims.is_empty() {
            return Err(ShapeError::new("flatten_batch on rank-0 tensor"));
        }
        let rest: usize = dims[1..].iter().product();
        self.reshape(&[dims[0], rest])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_passes_gradient_through() {
        let x = Var::parameter(Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap());
        let y = x.reshape(&[3, 2]).unwrap();
        assert_eq!(y.value().dims(), &[3, 2]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().dims(), &[2, 3]);
        assert_eq!(x.grad().unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn flatten_batch_keeps_first_axis() {
        let x = Var::parameter(Tensor::zeros(&[4, 2, 3, 3]));
        let y = x.flatten_batch().unwrap();
        assert_eq!(y.value().dims(), &[4, 18]);
    }

    #[test]
    fn reshape_rejects_wrong_count() {
        let x = Var::parameter(Tensor::zeros(&[2, 3]));
        assert!(x.reshape(&[7]).is_err());
    }

    #[test]
    fn transpose2_gradient_transposes_back() {
        let x = Var::parameter(
            Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap(),
        );
        let y = x.transpose2().unwrap();
        assert_eq!(y.value().dims(), &[3, 2]);
        // weight the gradient so the transpose-back is observable
        let w = Var::constant(
            Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]).unwrap(),
        );
        y.mul(&w).unwrap().sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.dims(), &[2, 3]);
        // g[i, j] = w[j, i]
        assert_eq!(g.get2(0, 1), 2.0);
        assert_eq!(g.get2(1, 0), 1.0);
    }
}

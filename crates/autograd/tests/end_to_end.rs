//! End-to-end gradient checks through composite graphs: conv → BN → ReLU →
//! pool → linear → cross-entropy, i.e. exactly the layer stack the model zoo
//! assembles.

use pecan_autograd::{check_gradients, cross_entropy_logits, Adam, Optimizer, Var};
use pecan_tensor::{Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seeded(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    pecan_tensor::uniform(&mut rng, dims, -1.0, 1.0)
}

#[test]
fn composite_network_gradient_check_on_weights() {
    let geom = Conv2dGeometry::new(1, 6, 6, 3, 1, 0).unwrap();
    let x = Var::constant(seeded(&[2, 1, 6, 6], 1));
    let w0 = seeded(&[2, 9], 2);
    let bias = Var::constant(Tensor::zeros(&[2]));
    let fc_w = Var::constant(seeded(&[3, 2 * 2 * 2], 3));
    let fc_b = Var::constant(Tensor::zeros(&[3]));

    let report = check_gradients(&w0, 1e-2, 12, |w| {
        let y = x.conv2d(w, Some(&bias), &geom).unwrap();
        let y = y.relu();
        let y = y.max_pool2d(2, 2).unwrap(); // [2, 2, 2, 2]
        let y = y.flatten_batch().unwrap();
        let logits = y.linear(&fc_w, &fc_b).unwrap();
        cross_entropy_logits(&logits, &[0, 2]).unwrap()
    });
    assert!(
        report.passes(2e-2),
        "composite grad check failed: max rel err {}",
        report.max_relative_error
    );
}

#[test]
fn batchnorm_inside_network_gradient_check() {
    let geom = Conv2dGeometry::new(1, 4, 4, 3, 1, 1).unwrap();
    let x = Var::constant(seeded(&[3, 1, 4, 4], 7));
    let w = Var::constant(seeded(&[2, 9], 8));
    let beta = Var::constant(Tensor::zeros(&[2]));
    let g0 = Tensor::from_slice(&[1.0, 0.7]);

    let report = check_gradients(&g0, 1e-3, 4, |gamma| {
        let y = x.conv2d(&w, None, &geom).unwrap();
        let (y, _) = y.batch_norm2d_train(gamma, &beta, 1e-5).unwrap();
        y.mul(&y).unwrap().sum_all()
    });
    assert!(
        report.passes(2e-2),
        "bn grad check failed: max rel err {}",
        report.max_relative_error
    );
}

#[test]
fn tiny_convnet_overfits_a_batch() {
    // If the whole stack of gradients is correct, a tiny conv net must be
    // able to memorise 8 random images. This is the canonical smoke test
    // for an autograd implementation.
    let mut rng = StdRng::seed_from_u64(42);
    let geom = Conv2dGeometry::new(1, 8, 8, 3, 1, 1).unwrap();
    let x = Var::constant(pecan_tensor::uniform(&mut rng, &[8, 1, 8, 8], -1.0, 1.0));
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();

    let conv_w = Var::parameter(pecan_tensor::he_normal(&mut rng, &[4, 9], 9));
    let conv_b = Var::parameter(Tensor::zeros(&[4]));
    let fc_w = Var::parameter(pecan_tensor::he_normal(&mut rng, &[4, 4 * 4 * 4], 64));
    let fc_b = Var::parameter(Tensor::zeros(&[4]));

    let params = vec![conv_w.clone(), conv_b.clone(), fc_w.clone(), fc_b.clone()];
    let mut opt = Adam::new(params, 0.01);

    let mut last_loss = f32::INFINITY;
    for _ in 0..60 {
        opt.zero_grad();
        let y = x.conv2d(&conv_w, Some(&conv_b), &geom).unwrap().relu();
        let y = y.max_pool2d(2, 2).unwrap();
        let y = y.flatten_batch().unwrap();
        let logits = y.linear(&fc_w, &fc_b).unwrap();
        let loss = cross_entropy_logits(&logits, &labels).unwrap();
        last_loss = loss.value().data()[0];
        loss.backward();
        opt.step();
    }
    assert!(last_loss < 0.1, "failed to overfit tiny batch, loss {last_loss}");
}

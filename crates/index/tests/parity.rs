//! Property tests proving the three search engines are interchangeable:
//! [`PqTableIndex`] and [`BatchScanner`] must return **exactly** the same
//! winners (rows and distances, bit-for-bit) as the exhaustive
//! [`LinearScan`] across random prototypes, queries and PQ configurations.

use pecan_index::{
    BatchScanner, LinearScan, PqTableConfig, PqTableIndex, PrototypeIndex,
};
use proptest::prelude::*;

/// Flattened `[p, d]` prototypes plus a query-major `[q, d]` batch.
fn workload(
    p: usize,
    d: usize,
    q: usize,
) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (
        proptest::collection::vec(-4.0f32..4.0, p * d),
        proptest::collection::vec(-4.0f32..4.0, q * d),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn batch_scanner_matches_linear_scan(
        (rows, queries) in workload(37, 6, 19),
    ) {
        let linear = LinearScan::new(rows.clone(), 6).unwrap();
        let batch = BatchScanner::new(rows, 6).unwrap();
        let expect = linear.nearest_batch(&queries).unwrap();
        let got = batch.nearest_batch(&queries).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn pq_table_matches_linear_scan(
        (rows, queries) in workload(48, 8, 12),
    ) {
        let linear = LinearScan::new(rows.clone(), 8).unwrap();
        let table = PqTableIndex::new(rows, 8).unwrap();
        let expect = linear.nearest_batch(&queries).unwrap();
        let got = table.nearest_batch(&queries).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn pq_table_matches_across_configs(
        (rows, queries) in workload(40, 12, 8),
        sub_spaces in prop::sample::select(vec![1usize, 2, 3, 4, 6]),
        centroids in 2usize..12,
        lloyd_iters in 1usize..6,
    ) {
        let linear = LinearScan::new(rows.clone(), 12).unwrap();
        let cfg = PqTableConfig {
            sub_spaces,
            centroids,
            lloyd_iters,
            min_entries: 2,
        };
        let table = PqTableIndex::with_config(rows, 12, cfg).unwrap();
        let expect = linear.nearest_batch(&queries).unwrap();
        let got = table.nearest_batch(&queries).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn duplicated_rows_still_agree_on_ties(
        (half, queries) in workload(16, 4, 10),
    ) {
        // duplicate every prototype so exact distance ties are guaranteed
        let mut rows = half.clone();
        rows.extend_from_slice(&half);
        let linear = LinearScan::new(rows.clone(), 4).unwrap();
        let batch = BatchScanner::new(rows.clone(), 4).unwrap();
        let table = PqTableIndex::with_config(
            rows,
            4,
            PqTableConfig { min_entries: 2, ..PqTableConfig::default() },
        )
        .unwrap();
        let expect = linear.nearest_batch(&queries).unwrap();
        prop_assert_eq!(batch.nearest_batch(&queries).unwrap(), expect.clone());
        prop_assert_eq!(table.nearest_batch(&queries).unwrap(), expect.clone());
        // every winner is in the first half (first-index tie-break)
        for hit in &expect {
            prop_assert!(hit.row < 16);
        }
    }

    #[test]
    fn stored_prototype_is_its_own_winner(
        (rows, _) in workload(24, 5, 1),
        pick in 0usize..24,
    ) {
        let table = PqTableIndex::with_config(
            rows.clone(),
            5,
            PqTableConfig { min_entries: 2, ..PqTableConfig::default() },
        )
        .unwrap();
        let batch = BatchScanner::new(rows.clone(), 5).unwrap();
        let query = &rows[pick * 5..(pick + 1) * 5];
        prop_assert_eq!(table.nearest(query).unwrap().distance, 0.0);
        prop_assert_eq!(batch.nearest_batch(query).unwrap()[0].distance, 0.0);
    }
}

use crate::{scan_rows, validate_rows, Match, PrototypeIndex};
use pecan_tensor::{ShapeError, Tensor};

/// The exhaustive baseline: every query is compared against every stored
/// prototype.
///
/// This is the scan `pecan-cam`'s `AnalogCam` performed inline before this
/// crate existed, extracted so the non-exhaustive and batched engines have
/// a reference to be property-tested against. `O(p·d)` per query,
/// allocation-free, no preprocessing — the right choice for small arrays or
/// one-off searches.
#[derive(Debug, Clone)]
pub struct LinearScan {
    rows: Vec<f32>,
    entries: usize,
    width: usize,
}

impl LinearScan {
    /// Builds the index over a flattened `[p, d]` row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is empty or not a whole number of
    /// rows of `width`.
    pub fn new(rows: Vec<f32>, width: usize) -> Result<Self, ShapeError> {
        let entries = validate_rows(&rows, width)?;
        Ok(Self { rows, entries, width })
    }

    /// Builds the index from a rank-2 `[p, d]` tensor (one prototype per
    /// row), e.g. a CAM array or a transposed codebook group.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is not a non-empty rank-2 tensor.
    pub fn from_tensor(rows: &Tensor) -> Result<Self, ShapeError> {
        rows.shape().expect_rank(2)?;
        Self::new(rows.data().to_vec(), rows.dims()[1])
    }

    /// The flattened prototype buffer.
    pub fn rows(&self) -> &[f32] {
        &self.rows
    }
}

impl PrototypeIndex for LinearScan {
    fn entries(&self) -> usize {
        self.entries
    }

    fn width(&self) -> usize {
        self.width
    }

    fn nearest(&self, query: &[f32]) -> Result<Match, ShapeError> {
        let _span = pecan_obs::span("index.linear");
        if query.len() != self.width {
            return Err(ShapeError::new(format!(
                "query width {} does not match index width {}",
                query.len(),
                self.width
            )));
        }
        Ok(scan_rows(&self.rows, self.width, query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_nearest_and_breaks_ties_first() {
        // rows 1 and 2 are identical: the first must win.
        let idx = LinearScan::new(vec![5.0, 5.0, 1.0, 1.0, 1.0, 1.0], 2).unwrap();
        let hit = idx.nearest(&[1.2, 0.9]).unwrap();
        assert_eq!(hit.row, 1);
        assert!((hit.distance - 0.3).abs() < 1e-6);
        assert_eq!(idx.entries(), 3);
        assert_eq!(idx.width(), 2);
    }

    #[test]
    fn tensor_constructor_and_validation() {
        let t = Tensor::from_vec(vec![0.0, 0.0, 3.0, 3.0], &[2, 2]).unwrap();
        let idx = LinearScan::from_tensor(&t).unwrap();
        assert_eq!(idx.nearest(&[2.5, 3.5]).unwrap().row, 1);
        assert!(LinearScan::from_tensor(&Tensor::zeros(&[4])).is_err());
        assert!(idx.nearest(&[1.0]).is_err());
        assert_eq!(idx.rows().len(), 4);
    }
}

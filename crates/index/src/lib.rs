//! Prototype search subsystem: the CAM matching primitive as a software
//! index.
//!
//! PECAN inference is "CAM similarity search + LUT read" (Algorithm 1): for
//! every im2col column and codebook group, find the stored prototype with
//! the smallest L1 distance to the query sub-vector. The behavioural CAM
//! simulator in `pecan-cam` answers that with a linear scan over all `p`
//! prototypes, which is exact but caps serving throughput — search cost is
//! `O(p·d)` per query no matter how the queries or prototypes are
//! distributed.
//!
//! This crate factors the matching primitive out behind the
//! [`PrototypeIndex`] trait and provides three interchangeable engines, all
//! returning **bit-identical winners** (same rows, same distances, same
//! first-index tie-breaks — distances are accumulated in the same element
//! order everywhere):
//!
//! * [`LinearScan`] — the exhaustive baseline, extracted from
//!   `pecan-cam`'s `AnalogCam`/`FixedCam` inner loop. Predictable and
//!   allocation-free; the reference the other two are property-tested
//!   against.
//! * [`PqTableIndex`] — non-exhaustive search in the spirit of PQTable
//!   (Matsui et al.): prototypes are product-quantized into per-sub-space
//!   codes and bucketed by code tuple. A query ranks buckets by a
//!   triangle-inequality lower bound and scans them best-first with exact
//!   re-ranking, stopping as soon as no remaining bucket can beat the
//!   current winner. Exactness is guaranteed by the bound, not by luck;
//!   degenerate configurations (too few prototypes to be worth bucketing)
//!   fall back to the full scan.
//! * [`BatchScanner`] — batched exhaustive scan in the spirit of Quick ADC
//!   (André et al.): queries are processed in fixed-width blocks laid out
//!   transposed, so the inner loop streams one prototype element against
//!   [`LANES`] query lanes of contiguous accumulators — a distance table the
//!   compiler auto-vectorizes without any unstable SIMD. Per-query winners
//!   drop out of the table with the same tie-break as the linear scan.
//!
//! # Picking an engine
//!
//! | situation | engine |
//! |---|---|
//! | one query at a time, small `p` | [`LinearScan`] |
//! | one query at a time, large `p`, clustered prototypes | [`PqTableIndex`] |
//! | many queries per call (im2col columns, serving batches) | [`BatchScanner`] |
//!
//! Trained PECAN codebooks are clustered by construction (prototypes *are*
//! cluster centres of feature sub-vectors), which is exactly when
//! [`PqTableIndex`]'s bound prunes well. On adversarially uniform
//! prototypes its bound degrades towards a full scan plus overhead — the
//! `cam_search` bench in `pecan-bench` measures both regimes.
//!
//! # Example
//!
//! ```
//! use pecan_index::{BatchScanner, LinearScan, PqTableIndex, PrototypeIndex};
//!
//! // four prototypes of width 2, flattened row-major
//! let rows = vec![0.0, 0.0, 1.0, 1.0, -1.0, 1.0, 2.0, -2.0];
//! let linear = LinearScan::new(rows.clone(), 2).unwrap();
//! let table = PqTableIndex::new(rows.clone(), 2).unwrap();
//! let batch = BatchScanner::new(rows, 2).unwrap();
//!
//! let queries = vec![0.1, -0.2, 0.9, 1.2]; // two queries, query-major
//! let expect = linear.nearest_batch(&queries).unwrap();
//! assert_eq!(table.nearest_batch(&queries).unwrap(), expect);
//! assert_eq!(batch.nearest_batch(&queries).unwrap(), expect);
//! assert_eq!(expect[0].row, 0);
//! assert_eq!(expect[1].row, 1);
//! ```

#![forbid(unsafe_code)]

mod batch;
mod linear;
mod pq_table;

pub use batch::{l1_argmin, l1_argmin_batch, BatchScanner, L1Element, LANES};
pub use linear::LinearScan;
pub use pq_table::{PqTableConfig, PqTableIndex};

use pecan_tensor::ShapeError;

/// One answered query: the winning prototype row and its exact L1 distance.
///
/// Ties are broken towards the smallest row index, matching the behaviour
/// of `pecan-cam`'s `AnalogCam::search`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Index of the nearest stored prototype.
    pub row: usize,
    /// Exact L1 distance between the query and that prototype.
    pub distance: f32,
}

/// A store of `p` prototype rows of width `d` answering exact L1
/// nearest-neighbour queries.
///
/// All implementations in this crate agree bit-for-bit: same winning rows
/// (first index on ties) and same distances (identical floating-point
/// accumulation order), so they can be swapped freely behind the CAM
/// simulator.
pub trait PrototypeIndex {
    /// Number of stored prototypes `p`.
    fn entries(&self) -> usize;

    /// Width of each prototype `d`.
    fn width(&self) -> usize;

    /// Finds the nearest stored prototype to one query of length `d`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `query.len() != d`.
    fn nearest(&self, query: &[f32]) -> Result<Match, ShapeError>;

    /// Answers a batch of queries laid out query-major (`[q·d]`, query `i`
    /// occupying `queries[i*d..(i+1)*d]`).
    ///
    /// The default implementation loops [`PrototypeIndex::nearest`];
    /// [`BatchScanner`] overrides it with the blocked kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `queries.len()` is not a multiple of `d`.
    fn nearest_batch(&self, queries: &[f32]) -> Result<Vec<Match>, ShapeError> {
        let d = self.width();
        if queries.len() % d != 0 {
            return Err(ShapeError::new(format!(
                "query buffer of {} is not a multiple of width {d}",
                queries.len()
            )));
        }
        queries.chunks_exact(d).map(|q| self.nearest(q)).collect()
    }
}

/// Validates a flattened `[p, d]` prototype buffer, returning `(p, d)`.
pub(crate) fn validate_rows(rows: &[f32], width: usize) -> Result<usize, ShapeError> {
    if width == 0 {
        return Err(ShapeError::new("prototype width must be non-zero"));
    }
    if rows.is_empty() || rows.len() % width != 0 {
        return Err(ShapeError::new(format!(
            "prototype buffer of {} does not hold whole rows of width {width}",
            rows.len()
        )));
    }
    Ok(rows.len() / width)
}

/// Exact L1 distance accumulated in ascending element order — the single
/// summation order every engine in this crate (and `pecan-cam`'s linear
/// scan) uses, so results stay bit-identical across engines.
#[inline]
pub(crate) fn l1_distance(a: &[f32], b: &[f32]) -> f32 {
    let mut dist = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dist += (x - y).abs();
    }
    dist
}

/// [`l1_argmin`] wrapped into a [`Match`] — the single-query / fallback
/// path of every f32 engine.
pub(crate) fn scan_rows(rows: &[f32], width: usize, query: &[f32]) -> Match {
    let (row, distance) = l1_argmin(rows, width, query);
    Match { row, distance }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rows_rejects_bad_buffers() {
        assert!(validate_rows(&[], 3).is_err());
        assert!(validate_rows(&[0.0; 4], 3).is_err());
        assert!(validate_rows(&[0.0; 6], 0).is_err());
        assert_eq!(validate_rows(&[0.0; 6], 3).unwrap(), 2);
    }

    #[test]
    fn default_batch_matches_singles() {
        let idx = LinearScan::new(vec![0.0, 0.0, 2.0, 2.0], 2).unwrap();
        let batch = idx.nearest_batch(&[0.1, 0.0, 1.9, 2.2]).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], idx.nearest(&[0.1, 0.0]).unwrap());
        assert_eq!(batch[1], idx.nearest(&[1.9, 2.2]).unwrap());
        assert!(idx.nearest_batch(&[0.0; 3]).is_err());
    }
}

use crate::{l1_distance, scan_rows, validate_rows, Match, PrototypeIndex};
use pecan_tensor::{ShapeError, Tensor};
use std::collections::HashMap;

/// Construction parameters for [`PqTableIndex`]. `0` means "choose
/// automatically from the array shape".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PqTableConfig {
    /// Number of sub-spaces `M` the prototype width is split into
    /// (must divide the width; auto picks 4, 2 or 1).
    pub sub_spaces: usize,
    /// Centroids per sub-space `K` (auto picks `clamp(p/8, 2, 16)`).
    pub centroids: usize,
    /// Lloyd refinement iterations for the sub-space quantizers.
    pub lloyd_iters: usize,
    /// Arrays with fewer prototypes than this are not worth bucketing;
    /// the index falls back to an exhaustive scan.
    pub min_entries: usize,
}

impl Default for PqTableConfig {
    fn default() -> Self {
        Self { sub_spaces: 0, centroids: 0, lloyd_iters: 8, min_entries: 16 }
    }
}

/// How much work one [`PqTableIndex`] query actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Buckets whose lower bound required probing.
    pub buckets_probed: usize,
    /// Prototypes re-ranked exactly (`== entries` for the fallback scan).
    pub candidates_scanned: usize,
}

/// Non-exhaustive exact search over bucketed PQ codes, after PQTable
/// (Matsui et al., ROADMAP's "fast search" direction).
///
/// At build time each prototype's width-`d` vector is split into `M`
/// sub-vectors, each quantized against a small per-sub-space codebook of
/// `K` centroids (Lloyd's algorithm, deterministic seeding). Prototypes
/// sharing a code tuple land in the same bucket, and every centroid stores
/// the radius of its cell (max L1 distance to a member).
///
/// A query then:
///
/// 1. computes its L1 distance to all `M·K` centroids (a distance LUT,
///    `O(M·K·d/M) = O(K·d)` work — independent of `p`);
/// 2. lower-bounds every bucket by `Σ_j max(0, dist(q_j, c_j) − radius_j)`
///    — valid because L1 is a metric on each sub-space and the full
///    distance is the sum of sub-space distances;
/// 3. scans buckets in ascending bound order, re-ranking candidates with
///    the exact full-width distance, and stops as soon as the best exact
///    distance beats every remaining bucket's bound.
///
/// The bound makes the result **provably identical** to an exhaustive scan
/// (including first-index tie-breaks) — cell bounds are deflated by a
/// floating-point safety margin far above worst-case rounding error, so a
/// bound can never overtake the computed distance of the candidate it
/// covers. On clustered prototypes — which trained PECAN codebooks are —
/// most buckets are never touched. Degenerate
/// arrays (fewer than [`PqTableConfig::min_entries`] prototypes, or a
/// quantizer that collapses into a single bucket) skip the machinery and
/// scan exhaustively.
#[derive(Debug, Clone)]
pub struct PqTableIndex {
    rows: Vec<f32>,
    entries: usize,
    width: usize,
    table: Option<Table>,
}

#[derive(Debug, Clone)]
struct Table {
    sub_spaces: usize,
    sub_dim: usize,
    centroids_per_space: usize,
    /// `[M][K][sub_dim]`, flattened.
    centroids: Vec<f32>,
    /// `[M][K]` cell radii.
    radii: Vec<f32>,
    /// Code tuple and member rows per non-empty bucket.
    buckets: Vec<(Vec<u8>, Vec<u32>)>,
}

impl PqTableIndex {
    /// Builds the index with automatic parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is empty or not a whole number of
    /// rows of `width`.
    pub fn new(rows: Vec<f32>, width: usize) -> Result<Self, ShapeError> {
        Self::with_config(rows, width, PqTableConfig::default())
    }

    /// Builds the index from a rank-2 `[p, d]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is not a non-empty rank-2 tensor.
    pub fn from_tensor(rows: &Tensor) -> Result<Self, ShapeError> {
        rows.shape().expect_rank(2)?;
        Self::new(rows.data().to_vec(), rows.dims()[1])
    }

    /// Builds the index with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the buffer is malformed or
    /// `config.sub_spaces` does not divide `width`.
    pub fn with_config(
        rows: Vec<f32>,
        width: usize,
        config: PqTableConfig,
    ) -> Result<Self, ShapeError> {
        let entries = validate_rows(&rows, width)?;
        let sub_spaces = match config.sub_spaces {
            0 => auto_sub_spaces(width),
            m if width % m != 0 => {
                return Err(ShapeError::new(format!(
                    "{m} sub-spaces do not divide prototype width {width}"
                )));
            }
            m => m,
        };
        let centroids_per_space = match config.centroids {
            0 => (entries / 8).clamp(2, 16),
            k => k.min(255),
        };
        if entries < config.min_entries.max(2) || centroids_per_space >= entries {
            return Ok(Self { rows, entries, width, table: None });
        }
        let table = build_table(
            &rows,
            entries,
            width,
            sub_spaces,
            centroids_per_space,
            config.lloyd_iters.max(1),
        );
        // A quantizer that collapsed into one bucket prunes nothing; keep
        // the plain scan and its lower constant factor instead.
        let table = table.filter(|t| t.buckets.len() > 1);
        Ok(Self { rows, entries, width, table })
    }

    /// `true` when the index degenerated to an exhaustive scan.
    pub fn is_exhaustive_fallback(&self) -> bool {
        self.table.is_none()
    }

    /// Number of non-empty code buckets (0 in fallback mode).
    pub fn bucket_count(&self) -> usize {
        self.table.as_ref().map_or(0, |t| t.buckets.len())
    }

    /// [`PrototypeIndex::nearest`] plus a report of how much of the array
    /// the query actually touched.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `query.len()` does not match the width.
    pub fn nearest_with_stats(&self, query: &[f32]) -> Result<(Match, ProbeStats), ShapeError> {
        if query.len() != self.width {
            return Err(ShapeError::new(format!(
                "query width {} does not match index width {}",
                query.len(),
                self.width
            )));
        }
        let Some(table) = &self.table else {
            return Ok((
                scan_rows(&self.rows, self.width, query),
                ProbeStats { buckets_probed: 0, candidates_scanned: self.entries },
            ));
        };

        // Distance LUT from the query's sub-vectors to every centroid,
        // folded with the cell radius into a per-cell lower bound. The
        // bound is mathematically ≤ the true distance, but it is computed
        // with a different floating-point grouping than the exact re-rank
        // distances, so rounding could nudge a computed bound a few ULPs
        // above a computed candidate distance and prune the true winner.
        // Deflate every cell bound by a margin proportional to the operand
        // magnitudes that dwarfs worst-case accumulation error (~n·ε per
        // n-term L1 sum) while staying orders of magnitude below real
        // distances — pruning power is untouched, exactness is kept.
        let (m, k, sd) = (table.sub_spaces, table.centroids_per_space, table.sub_dim);
        let fp_slack = 16.0 * f32::EPSILON * self.width as f32;
        let mut cell_bound = vec![0.0f32; m * k];
        for j in 0..m {
            let q_sub = &query[j * sd..(j + 1) * sd];
            for c in 0..k {
                let cent = &table.centroids[(j * k + c) * sd..(j * k + c + 1) * sd];
                let dcent = l1_distance(q_sub, cent);
                let radius = table.radii[j * k + c];
                let bound = (dcent - radius) - (dcent + radius) * fp_slack;
                cell_bound[j * k + c] = bound.max(0.0);
            }
        }

        let mut order: Vec<(f32, u32)> = table
            .buckets
            .iter()
            .enumerate()
            .map(|(i, (code, _))| {
                let lb: f32 = code
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| cell_bound[j * k + c as usize])
                    .sum();
                (lb, i as u32)
            })
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut best = Match { row: 0, distance: f32::INFINITY };
        let mut stats = ProbeStats { buckets_probed: 0, candidates_scanned: 0 };
        for &(lower_bound, bucket) in &order {
            // `>` not `>=`: a bucket whose bound ties the best distance may
            // still hold an equal-distance prototype with a smaller row
            // index, and the exhaustive scan would report that one.
            if lower_bound > best.distance {
                break;
            }
            stats.buckets_probed += 1;
            for &r in &table.buckets[bucket as usize].1 {
                let r = r as usize;
                let dist =
                    l1_distance(&self.rows[r * self.width..(r + 1) * self.width], query);
                stats.candidates_scanned += 1;
                if dist < best.distance || (dist == best.distance && r < best.row) {
                    best = Match { row: r, distance: dist };
                }
            }
        }
        Ok((best, stats))
    }

}

impl PrototypeIndex for PqTableIndex {
    fn entries(&self) -> usize {
        self.entries
    }

    fn width(&self) -> usize {
        self.width
    }

    fn nearest(&self, query: &[f32]) -> Result<Match, ShapeError> {
        let _span = pecan_obs::span("index.pq_table");
        self.nearest_with_stats(query).map(|(m, _)| m)
    }
}

/// Largest of 4, 2, 1 that divides `width` while keeping sub-vectors at
/// least two elements wide.
fn auto_sub_spaces(width: usize) -> usize {
    for m in [4usize, 2] {
        if width % m == 0 && width / m >= 2 {
            return m;
        }
    }
    1
}

fn build_table(
    rows: &[f32],
    entries: usize,
    width: usize,
    sub_spaces: usize,
    centroids_per_space: usize,
    lloyd_iters: usize,
) -> Option<Table> {
    let sub_dim = width / sub_spaces;
    let k = centroids_per_space;
    let mut centroids = vec![0.0f32; sub_spaces * k * sub_dim];
    let mut radii = vec![0.0f32; sub_spaces * k];
    let mut codes = vec![0u8; entries * sub_spaces];

    for j in 0..sub_spaces {
        let sub_vec = |r: usize| &rows[r * width + j * sub_dim..r * width + (j + 1) * sub_dim];
        let space_centroids = &mut centroids[j * k * sub_dim..(j + 1) * k * sub_dim];
        // Deterministic seeding: spread initial centroids across the rows.
        for c in 0..k {
            space_centroids[c * sub_dim..(c + 1) * sub_dim]
                .copy_from_slice(sub_vec(c * entries / k));
        }
        let mut assign = vec![0usize; entries];
        for _ in 0..lloyd_iters {
            for (r, slot) in assign.iter_mut().enumerate() {
                *slot = nearest_centroid(sub_vec(r), space_centroids, sub_dim);
            }
            let mut sums = vec![0.0f32; k * sub_dim];
            let mut counts = vec![0usize; k];
            for (r, &c) in assign.iter().enumerate() {
                counts[c] += 1;
                for (s, &v) in sums[c * sub_dim..(c + 1) * sub_dim]
                    .iter_mut()
                    .zip(sub_vec(r))
                {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for (dst, &s) in space_centroids[c * sub_dim..(c + 1) * sub_dim]
                        .iter_mut()
                        .zip(&sums[c * sub_dim..(c + 1) * sub_dim])
                    {
                        *dst = s / counts[c] as f32;
                    }
                }
            }
        }
        for (r, slot) in assign.iter_mut().enumerate() {
            *slot = nearest_centroid(sub_vec(r), space_centroids, sub_dim);
        }
        for (r, &c) in assign.iter().enumerate() {
            codes[r * sub_spaces + j] = c as u8;
            let dist = l1_distance(
                sub_vec(r),
                &space_centroids[c * sub_dim..(c + 1) * sub_dim],
            );
            radii[j * k + c] = radii[j * k + c].max(dist);
        }
    }

    let mut map: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
    for r in 0..entries {
        map.entry(codes[r * sub_spaces..(r + 1) * sub_spaces].to_vec())
            .or_default()
            .push(r as u32);
    }
    let mut buckets: Vec<(Vec<u8>, Vec<u32>)> = map.into_iter().collect();
    buckets.sort(); // deterministic layout independent of hash order
    Some(Table { sub_spaces, sub_dim, centroids_per_space: k, centroids, radii, buckets })
}

fn nearest_centroid(sub_vec: &[f32], centroids: &[f32], sub_dim: usize) -> usize {
    let mut best = 0usize;
    let mut best_dist = f32::INFINITY;
    for (c, cent) in centroids.chunks_exact(sub_dim).enumerate() {
        let dist = l1_distance(sub_vec, cent);
        if dist < best_dist {
            best_dist = dist;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;

    fn pseudo(seed: &mut u64) -> f32 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 1.0
    }

    /// `p` prototypes sampled around `clusters` centres — the regime trained
    /// codebooks live in.
    fn clustered_rows(p: usize, d: usize, clusters: usize, seed: &mut u64) -> Vec<f32> {
        let centres: Vec<f32> = (0..clusters * d).map(|_| pseudo(seed) * 4.0).collect();
        (0..p)
            .flat_map(|r| {
                let c = r % clusters;
                (0..d)
                    .map(|k| centres[c * d + k] + pseudo(seed) * 0.2)
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn matches_linear_scan_on_random_rows() {
        let mut seed = 11u64;
        let (p, d) = (96, 8);
        let rows: Vec<f32> = (0..p * d).map(|_| pseudo(&mut seed)).collect();
        let linear = LinearScan::new(rows.clone(), d).unwrap();
        let table = PqTableIndex::new(rows, d).unwrap();
        assert!(!table.is_exhaustive_fallback());
        for _ in 0..200 {
            let q: Vec<f32> = (0..d).map(|_| pseudo(&mut seed) * 2.0).collect();
            assert_eq!(table.nearest(&q).unwrap(), linear.nearest(&q).unwrap());
        }
    }

    #[test]
    fn clustered_rows_are_searched_non_exhaustively() {
        let mut seed = 23u64;
        let (p, d) = (256, 16);
        let rows = clustered_rows(p, d, 16, &mut seed);
        let linear = LinearScan::new(rows.clone(), d).unwrap();
        let table = PqTableIndex::new(rows.clone(), d).unwrap();
        let mut scanned_total = 0usize;
        let queries = 64;
        for i in 0..queries {
            // queries near stored prototypes — the regime CAM matching runs
            // in, since im2col features cluster around trained codebooks
            let anchor = (i * 7) % p;
            let q: Vec<f32> = rows[anchor * d..(anchor + 1) * d]
                .iter()
                .map(|&v| v + pseudo(&mut seed) * 0.3)
                .collect();
            let (hit, stats) = table.nearest_with_stats(&q).unwrap();
            assert_eq!(hit, linear.nearest(&q).unwrap());
            scanned_total += stats.candidates_scanned;
        }
        // the point of the index: far fewer exact re-ranks than p per query
        assert!(
            scanned_total < queries * p / 2,
            "scanned {scanned_total} of {} candidates",
            queries * p
        );
    }

    #[test]
    fn tie_breaks_match_the_exhaustive_scan() {
        // duplicate rows force exact ties; winner must be the first index
        let mut rows = Vec::new();
        for r in 0..32 {
            let v = (r % 4) as f32;
            rows.extend_from_slice(&[v, -v, v, -v]);
        }
        let table = PqTableIndex::with_config(
            rows.clone(),
            4,
            PqTableConfig { min_entries: 2, ..PqTableConfig::default() },
        )
        .unwrap();
        let linear = LinearScan::new(rows, 4).unwrap();
        for v in [0.0f32, 1.0, 2.5, 3.0] {
            let q = [v, -v, v, -v];
            assert_eq!(table.nearest(&q).unwrap(), linear.nearest(&q).unwrap());
        }
    }

    #[test]
    fn small_arrays_fall_back_to_full_scan() {
        let rows = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let table = PqTableIndex::new(rows, 2).unwrap();
        assert!(table.is_exhaustive_fallback());
        assert_eq!(table.bucket_count(), 0);
        let (hit, stats) = table.nearest_with_stats(&[1.9, 2.1]).unwrap();
        assert_eq!(hit.row, 2);
        assert_eq!(stats.candidates_scanned, 3);
    }

    #[test]
    fn config_validation() {
        assert!(PqTableIndex::new(vec![], 2).is_err());
        assert!(PqTableIndex::with_config(
            vec![0.0; 12],
            4,
            PqTableConfig { sub_spaces: 3, ..PqTableConfig::default() }
        )
        .is_err());
        let idx = PqTableIndex::new(vec![0.0; 12], 4).unwrap();
        assert!(idx.nearest(&[0.0; 3]).is_err());
        assert_eq!(idx.entries(), 3);
        assert_eq!(idx.width(), 4);
    }
}

use crate::{scan_rows, validate_rows, Match, PrototypeIndex};
use pecan_tensor::{ShapeError, Tensor};

/// Number of queries processed together by the blocked kernel.
///
/// Eight `f32` lanes fill a 256-bit vector register; the accumulator array
/// of a block fits comfortably in registers, which is what lets the scalar
/// loop auto-vectorize.
pub const LANES: usize = 8;

/// Element types the blocked L1 kernel can scan: `f32` (the analog CAM) and
/// `i16` accumulated in `i32` (the fixed-point CAM).
///
/// Distances accumulate in ascending element order regardless of type, so
/// winners are bit-identical to the corresponding one-query-at-a-time scan.
pub trait L1Element: Copy {
    /// Accumulator type for summed distances.
    type Acc: Copy + PartialOrd;
    /// Padding value for the tail block (its results are discarded).
    const ZERO: Self;
    /// Additive identity of the accumulator.
    const ZERO_ACC: Self::Acc;
    /// Upper bound no real distance reaches.
    const MAX_ACC: Self::Acc;
    /// `|self - other|` widened into the accumulator type.
    fn abs_diff(self, other: Self) -> Self::Acc;
    /// Accumulator addition.
    fn add(a: Self::Acc, b: Self::Acc) -> Self::Acc;
}

impl L1Element for f32 {
    type Acc = f32;
    const ZERO: Self = 0.0;
    const ZERO_ACC: f32 = 0.0;
    const MAX_ACC: f32 = f32::INFINITY;
    #[inline]
    fn abs_diff(self, other: Self) -> f32 {
        (self - other).abs()
    }
    #[inline]
    fn add(a: f32, b: f32) -> f32 {
        a + b
    }
}

impl L1Element for i16 {
    type Acc = i32;
    const ZERO: Self = 0;
    const ZERO_ACC: i32 = 0;
    const MAX_ACC: i32 = i32::MAX;
    #[inline]
    fn abs_diff(self, other: Self) -> i32 {
        (self as i32 - other as i32).abs()
    }
    #[inline]
    fn add(a: i32, b: i32) -> i32 {
        a + b
    }
}

/// Exhaustive single-query L1 argmin over a flattened `[p, width]`
/// prototype buffer: `(winning row, distance)`, first row winning ties,
/// distances accumulated in ascending element order. This is **the** scan
/// every engine in this crate and every `pecan-cam` search path shares —
/// one copy is what makes their bit-identical agreement a local property
/// rather than a cross-crate convention.
///
/// # Panics
///
/// Panics when `width` is zero, `rows` is empty or not whole rows, or the
/// query length is not `width`.
pub fn l1_argmin<E: L1Element>(rows: &[E], width: usize, query: &[E]) -> (usize, E::Acc) {
    assert!(width > 0, "width must be non-zero");
    assert!(
        !rows.is_empty() && rows.len() % width == 0,
        "prototype buffer must hold whole rows"
    );
    assert!(query.len() == width, "query length must equal width");
    let mut best_row = 0usize;
    let mut best_dist = E::MAX_ACC;
    for (r, row) in rows.chunks_exact(width).enumerate() {
        let mut dist = E::ZERO_ACC;
        for (&cell, &q) in row.iter().zip(query) {
            dist = E::add(dist, q.abs_diff(cell));
        }
        if dist < best_dist {
            best_dist = dist;
            best_row = r;
        }
    }
    (best_row, best_dist)
}

/// Blocked L1 argmin over a flattened `[p, width]` prototype buffer for a
/// query-major `[q, width]` query buffer. Returns `(winning row, distance)`
/// per query, first row winning ties.
///
/// This is the Quick-ADC-style layout: each block of [`LANES`] queries is
/// transposed so the inner loop reads one prototype element and updates
/// [`LANES`] contiguous accumulators — a small distance table that stays in
/// registers and auto-vectorizes. The final tail block is zero-padded and
/// the padding lanes discarded.
///
/// # Panics
///
/// Panics when `width` is zero, `rows` is empty or not whole rows, or
/// `queries` is not whole queries. (The typed wrappers validate first and
/// return [`ShapeError`] instead.)
pub fn l1_argmin_batch<E: L1Element>(
    rows: &[E],
    width: usize,
    queries: &[E],
) -> Vec<(usize, E::Acc)> {
    let _span = pecan_obs::span("index.scan");
    assert!(width > 0, "width must be non-zero");
    assert!(
        !rows.is_empty() && rows.len() % width == 0,
        "prototype buffer must hold whole rows"
    );
    assert!(queries.len() % width == 0, "query buffer must hold whole queries");
    let q = queries.len() / width;
    let mut out = Vec::with_capacity(q);
    let mut transposed = vec![E::ZERO; width * LANES];

    for block_start in (0..q).step_by(LANES) {
        let lanes = LANES.min(q - block_start);
        for (k, chunk) in transposed.chunks_exact_mut(LANES).enumerate() {
            for (l, slot) in chunk.iter_mut().enumerate() {
                *slot = if l < lanes {
                    queries[(block_start + l) * width + k]
                } else {
                    E::ZERO
                };
            }
        }

        let mut best_dist = [E::MAX_ACC; LANES];
        let mut best_row = [0usize; LANES];
        for (r, row) in rows.chunks_exact(width).enumerate() {
            let mut acc = [E::ZERO_ACC; LANES];
            for (k, &cell) in row.iter().enumerate() {
                let lane = &transposed[k * LANES..(k + 1) * LANES];
                for l in 0..LANES {
                    acc[l] = E::add(acc[l], lane[l].abs_diff(cell));
                }
            }
            for l in 0..LANES {
                if acc[l] < best_dist[l] {
                    best_dist[l] = acc[l];
                    best_row[l] = r;
                }
            }
        }
        for l in 0..lanes {
            out.push((best_row[l], best_dist[l]));
        }
    }
    out
}

/// Batched exhaustive scanner: the [`l1_argmin_batch`] kernel behind the
/// [`PrototypeIndex`] trait.
///
/// Scans every prototype like [`crate::LinearScan`] but amortizes each
/// prototype-element load over [`LANES`] queries, so throughput on
/// many-query workloads (im2col columns, serving batches) is several times
/// the one-at-a-time scan while returning identical winners.
#[derive(Debug, Clone)]
pub struct BatchScanner {
    rows: Vec<f32>,
    entries: usize,
    width: usize,
}

impl BatchScanner {
    /// Builds the scanner over a flattened `[p, d]` row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is empty or not a whole number of
    /// rows of `width`.
    pub fn new(rows: Vec<f32>, width: usize) -> Result<Self, ShapeError> {
        let entries = validate_rows(&rows, width)?;
        Ok(Self { rows, entries, width })
    }

    /// Builds the scanner from a rank-2 `[p, d]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `rows` is not a non-empty rank-2 tensor.
    pub fn from_tensor(rows: &Tensor) -> Result<Self, ShapeError> {
        rows.shape().expect_rank(2)?;
        Self::new(rows.data().to_vec(), rows.dims()[1])
    }
}

impl PrototypeIndex for BatchScanner {
    fn entries(&self) -> usize {
        self.entries
    }

    fn width(&self) -> usize {
        self.width
    }

    fn nearest(&self, query: &[f32]) -> Result<Match, ShapeError> {
        if query.len() != self.width {
            return Err(ShapeError::new(format!(
                "query width {} does not match index width {}",
                query.len(),
                self.width
            )));
        }
        Ok(scan_rows(&self.rows, self.width, query))
    }

    fn nearest_batch(&self, queries: &[f32]) -> Result<Vec<Match>, ShapeError> {
        let _span = pecan_obs::span("index.batch_scan");
        if queries.len() % self.width != 0 {
            return Err(ShapeError::new(format!(
                "query buffer of {} is not a multiple of width {}",
                queries.len(),
                self.width
            )));
        }
        Ok(l1_argmin_batch(&self.rows, self.width, queries)
            .into_iter()
            .map(|(row, distance)| Match { row, distance })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;

    fn pseudo(seed: &mut u64) -> f32 {
        // xorshift — keeps the test free of the rand dev-dependency cycle
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        ((*seed >> 11) as f32 / (1u64 << 53) as f32) * 8.0 - 4.0
    }

    #[test]
    fn kernel_matches_linear_scan_across_block_sizes() {
        let mut seed = 7u64;
        let (p, d) = (13, 5);
        let rows: Vec<f32> = (0..p * d).map(|_| pseudo(&mut seed)).collect();
        let linear = LinearScan::new(rows.clone(), d).unwrap();
        let scanner = BatchScanner::new(rows, d).unwrap();
        // cover empty, sub-block, exact-block and ragged-tail batches
        for q in [0usize, 1, 7, 8, 9, 16, 27] {
            let queries: Vec<f32> = (0..q * d).map(|_| pseudo(&mut seed)).collect();
            let expect = linear.nearest_batch(&queries).unwrap();
            let got = scanner.nearest_batch(&queries).unwrap();
            assert_eq!(got, expect, "q={q}");
        }
    }

    #[test]
    fn integer_kernel_matches_scalar_search() {
        let rows: Vec<i16> = vec![0, 0, 10, 10, -5, 5, 10, 10];
        let queries: Vec<i16> = vec![1, -1, 9, 12, -6, 4];
        let got = l1_argmin_batch(&rows, 2, &queries);
        assert_eq!(got, vec![(0, 2), (1, 3), (2, 2)]);
    }

    #[test]
    fn ties_break_to_first_row() {
        // rows 1 and 3 identical — row 1 must win in every lane
        let rows = vec![9.0, 9.0, 1.0, 1.0, 5.0, 5.0, 1.0, 1.0];
        let scanner = BatchScanner::new(rows, 2).unwrap();
        let hits = scanner.nearest_batch(&[1.0, 1.0, 0.9, 1.1]).unwrap();
        assert_eq!(hits[0].row, 1);
        assert_eq!(hits[1].row, 1);
    }

    #[test]
    fn validation() {
        assert!(BatchScanner::new(vec![], 2).is_err());
        assert!(BatchScanner::new(vec![0.0; 3], 2).is_err());
        let s = BatchScanner::new(vec![0.0; 4], 2).unwrap();
        assert!(s.nearest(&[0.0]).is_err());
        assert!(s.nearest_batch(&[0.0; 5]).is_err());
        assert_eq!(s.entries(), 2);
    }
}

//! Seeded-violation fixtures: every rule must fire at the expected
//! `file:line` on a minimal positive fixture and go quiet on the
//! negative twin that uses the rule's documented silencing mechanism —
//! and *only* that mechanism.

use pecan_analyze::{analyze_source, Config, Finding};

/// A config whose policy names the fixture paths used below.
fn fixture_config() -> Config {
    let mut c = Config::empty();
    c.unsafe_allowed = vec!["crates/x/src/audited.rs".into()];
    c.relaxed_audited = vec!["crates/x/src/seqlock.rs".into()];
    c.hot_path = vec!["crates/x/src/hot.rs".into()];
    c.print_exempt = vec!["crates/x/src/logger.rs".into()];
    c
}

fn hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- unsafe-containment

#[test]
fn unsafe_containment_fires_outside_audited_modules_with_line() {
    let src = "fn f() {\n    let p = 0 as *const u8;\n    unsafe { p.read() };\n}\n";
    let findings = analyze_source("crates/x/src/other.rs", src, &fixture_config());
    let c = hits(&findings, "unsafe-containment");
    assert_eq!(c.len(), 1, "exactly one containment finding: {findings:?}");
    assert_eq!((c[0].path.as_str(), c[0].line), ("crates/x/src/other.rs", 3));
}

#[test]
fn unsafe_containment_is_quiet_in_audited_module() {
    let src = "fn f() {\n    // SAFETY: fixture\n    unsafe { std::hint::unreachable_unchecked() };\n}\n";
    let findings = analyze_source("crates/x/src/audited.rs", src, &fixture_config());
    assert!(hits(&findings, "unsafe-containment").is_empty(), "{findings:?}");
}

#[test]
fn unsafe_containment_has_no_per_site_allow() {
    // The documented policy: containment is silenced by config only. An
    // allow comment (any rule's) must NOT help.
    let src = "fn f() {\n    // analyze: allow(unsafe-containment) -- trying to sneak by\n    unsafe { std::hint::unreachable_unchecked() };\n}\n";
    let findings = analyze_source("crates/x/src/other.rs", src, &fixture_config());
    assert_eq!(hits(&findings, "unsafe-containment").len(), 1, "{findings:?}");
}

#[test]
fn unsafe_keyword_in_comments_and_strings_never_fires() {
    let src = "fn f() {\n    // unsafe here is just prose\n    let s = \"unsafe { }\";\n    let r = r#\"unsafe\"#;\n    let _ = (s, r);\n}\n";
    let findings = analyze_source("crates/x/src/other.rs", src, &fixture_config());
    assert!(hits(&findings, "unsafe-containment").is_empty(), "{findings:?}");
}

#[test]
fn crate_root_attr_pinning_both_directions() {
    let cfg = fixture_config();
    // Unsafe-free crate root missing forbid → finding at line 1.
    let bare = analyze_source("crates/y/src/lib.rs", "pub fn f() {}\n", &cfg);
    let c = hits(&bare, "unsafe-containment");
    assert_eq!(c.len(), 1, "{bare:?}");
    assert_eq!(c[0].line, 1);
    // With the attribute → quiet.
    let pinned =
        analyze_source("crates/y/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n", &cfg);
    assert!(hits(&pinned, "unsafe-containment").is_empty(), "{pinned:?}");
    // Crate holding audited unsafe needs deny(unsafe_op_in_unsafe_fn).
    let holder = analyze_source("crates/x/src/lib.rs", "pub mod audited;\n", &cfg);
    assert_eq!(hits(&holder, "unsafe-containment").len(), 1, "{holder:?}");
    let held = analyze_source(
        "crates/x/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\npub mod audited;\n",
        &cfg,
    );
    assert!(hits(&held, "unsafe-containment").is_empty(), "{held:?}");
}

// ---------------------------------------------------------------- safety-comment

#[test]
fn safety_comment_fires_with_line_and_is_silenced_by_safety_comment_only() {
    let cfg = fixture_config();
    let bare = "fn f() {\n    unsafe { std::hint::unreachable_unchecked() };\n}\n";
    let findings = analyze_source("crates/x/src/audited.rs", bare, &cfg);
    let c = hits(&findings, "safety-comment");
    assert_eq!(c.len(), 1, "{findings:?}");
    assert_eq!((c[0].path.as_str(), c[0].line), ("crates/x/src/audited.rs", 2));

    // The documented silencer: a `// SAFETY:` comment within the window.
    let with = "fn f() {\n    // SAFETY: fixture invariant\n    unsafe { std::hint::unreachable_unchecked() };\n}\n";
    let findings = analyze_source("crates/x/src/audited.rs", with, &cfg);
    assert!(hits(&findings, "safety-comment").is_empty(), "{findings:?}");

    // A wrapped SAFETY paragraph counts as one comment.
    let wrapped = "fn f() {\n    // SAFETY: a long invariant that\n    // wraps across\n    // three lines\n    unsafe { std::hint::unreachable_unchecked() };\n}\n";
    let findings = analyze_source("crates/x/src/audited.rs", wrapped, &cfg);
    assert!(hits(&findings, "safety-comment").is_empty(), "{findings:?}");

    // An unrelated comment does NOT silence it.
    let unrelated = "fn f() {\n    // this pointer is probably fine\n    unsafe { std::hint::unreachable_unchecked() };\n}\n";
    let findings = analyze_source("crates/x/src/audited.rs", unrelated, &cfg);
    assert_eq!(hits(&findings, "safety-comment").len(), 1, "{findings:?}");
}

// ---------------------------------------------------------------- atomic-ordering

#[test]
fn seqcst_fires_in_lib_code_and_is_silenced_by_ordering_comment() {
    let cfg = fixture_config();
    let bare = "fn f(a: &std::sync::atomic::AtomicBool) {\n    a.load(std::sync::atomic::Ordering::SeqCst);\n}\n";
    let findings = analyze_source("crates/x/src/flags.rs", bare, &cfg);
    let c = hits(&findings, "atomic-ordering");
    assert_eq!(c.len(), 1, "{findings:?}");
    assert_eq!(c[0].line, 2);

    let justified = "fn f(a: &std::sync::atomic::AtomicBool) {\n    // ordering: SeqCst — fixture: total order with the other flag\n    a.load(std::sync::atomic::Ordering::SeqCst);\n}\n";
    let findings = analyze_source("crates/x/src/flags.rs", justified, &cfg);
    assert!(hits(&findings, "atomic-ordering").is_empty(), "{findings:?}");
}

#[test]
fn relaxed_audited_files_demand_pairing_notes_others_do_not() {
    let cfg = fixture_config();
    let src = "fn f(a: &std::sync::atomic::AtomicU64) {\n    a.load(std::sync::atomic::Ordering::Relaxed);\n}\n";
    // In the audited seqlock file: must name its pairing site.
    let findings = analyze_source("crates/x/src/seqlock.rs", src, &cfg);
    let c = hits(&findings, "atomic-ordering");
    assert_eq!(c.len(), 1, "{findings:?}");
    assert_eq!(c[0].line, 2);
    // Same code elsewhere: Relaxed is unremarkable.
    let findings = analyze_source("crates/x/src/other.rs", src, &cfg);
    assert!(hits(&findings, "atomic-ordering").is_empty(), "{findings:?}");
    // With the pairing note: quiet.
    let noted = "fn f(a: &std::sync::atomic::AtomicU64) {\n    // ordering: Relaxed — pairs with the Release store in publish()\n    a.load(std::sync::atomic::Ordering::Relaxed);\n}\n";
    let findings = analyze_source("crates/x/src/seqlock.rs", noted, &cfg);
    assert!(hits(&findings, "atomic-ordering").is_empty(), "{findings:?}");
}

#[test]
fn atomic_ordering_skips_tests_and_non_lib_roles() {
    let cfg = fixture_config();
    let in_test = "#[cfg(test)]\nmod tests {\n    pub fn f(a: &std::sync::atomic::AtomicBool) {\n        a.load(std::sync::atomic::Ordering::SeqCst);\n    }\n}\n";
    let findings = analyze_source("crates/x/src/flags.rs", in_test, &cfg);
    assert!(hits(&findings, "atomic-ordering").is_empty(), "{findings:?}");
    let in_bin = "fn main() {\n    FLAG.load(std::sync::atomic::Ordering::SeqCst);\n}\n";
    let findings = analyze_source("crates/x/src/bin/tool.rs", in_bin, &cfg);
    assert!(hits(&findings, "atomic-ordering").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- hot-path-panic

#[test]
fn hot_path_panic_fires_on_unwrap_expect_and_macros_with_lines() {
    let cfg = fixture_config();
    let src = "fn f(v: Vec<u32>) -> u32 {\n    let a = v.first().unwrap();\n    let b = v.last().expect(\"nonempty\");\n    assert_eq!(a, b);\n    panic!(\"boom\");\n}\n";
    let findings = analyze_source("crates/x/src/hot.rs", src, &cfg);
    let lines: Vec<u32> = hits(&findings, "hot-path-panic").iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![2, 3, 4, 5], "{findings:?}");
}

#[test]
fn hot_path_panic_allows_debug_asserts_tests_and_other_files() {
    let cfg = fixture_config();
    // debug_assert* compiles out of release builds: legal.
    let dbg = "fn f(a: u32, b: u32) {\n    debug_assert_eq!(a, b);\n    debug_assert!(a > 0);\n}\n";
    let findings = analyze_source("crates/x/src/hot.rs", dbg, &cfg);
    assert!(hits(&findings, "hot-path-panic").is_empty(), "{findings:?}");
    // Inside #[cfg(test)]: legal.
    let test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        assert_eq!(1, 1);\n        Vec::<u32>::new().first().unwrap();\n    }\n}\n";
    let findings = analyze_source("crates/x/src/hot.rs", test, &cfg);
    assert!(hits(&findings, "hot-path-panic").is_empty(), "{findings:?}");
    // Same code in a non-hot-path file: legal.
    let findings = analyze_source(
        "crates/x/src/other.rs",
        "fn f(v: Vec<u32>) { v.first().unwrap(); }\n",
        &cfg,
    );
    assert!(hits(&findings, "hot-path-panic").is_empty(), "{findings:?}");
    // `unwrap_or_else` is not `unwrap`: token matching, not substrings.
    let or_else = "fn f(v: Vec<u32>) -> u32 {\n    *v.first().unwrap_or_else(|| &0)\n}\n";
    let findings = analyze_source("crates/x/src/hot.rs", or_else, &cfg);
    assert!(hits(&findings, "hot-path-panic").is_empty(), "{findings:?}");
}

#[test]
fn hot_path_panic_allowlist_needs_rule_id_and_reason() {
    let cfg = fixture_config();
    // Documented allowlist comment with a reason: silenced.
    let allowed = "fn f(v: Vec<u32>) -> u32 {\n    // analyze: allow(hot-path-panic) -- construction-time only\n    *v.first().unwrap()\n}\n";
    let findings = analyze_source("crates/x/src/hot.rs", allowed, &cfg);
    assert!(hits(&findings, "hot-path-panic").is_empty(), "{findings:?}");
    // Reason-less allow is inert.
    let reasonless = "fn f(v: Vec<u32>) -> u32 {\n    // analyze: allow(hot-path-panic)\n    *v.first().unwrap()\n}\n";
    let findings = analyze_source("crates/x/src/hot.rs", reasonless, &cfg);
    assert_eq!(hits(&findings, "hot-path-panic").len(), 1, "{findings:?}");
    // Wrong rule id is inert.
    let wrong = "fn f(v: Vec<u32>) -> u32 {\n    // analyze: allow(no-print) -- wrong rule\n    *v.first().unwrap()\n}\n";
    let findings = analyze_source("crates/x/src/hot.rs", wrong, &cfg);
    assert_eq!(hits(&findings, "hot-path-panic").len(), 1, "{findings:?}");
}

// ---------------------------------------------------------------- no-print

#[test]
fn no_print_fires_in_lib_code_only() {
    let cfg = fixture_config();
    let src = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"err\");\n    dbg!(42);\n}\n";
    let findings = analyze_source("crates/x/src/other.rs", src, &cfg);
    let lines: Vec<u32> = hits(&findings, "no-print").iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![2, 3, 4], "{findings:?}");
    // Bin targets own their terminal.
    let findings = analyze_source("crates/x/src/bin/tool.rs", src, &cfg);
    assert!(hits(&findings, "no-print").is_empty(), "{findings:?}");
    // So do integration tests.
    let findings = analyze_source("crates/x/tests/e2e.rs", src, &cfg);
    assert!(hits(&findings, "no-print").is_empty(), "{findings:?}");
    // The logger itself is exempt by config.
    let findings = analyze_source("crates/x/src/logger.rs", src, &cfg);
    assert!(hits(&findings, "no-print").is_empty(), "{findings:?}");
}

#[test]
fn no_print_ignores_strings_comments_and_honors_allowlist() {
    let cfg = fixture_config();
    let masked = "fn f() -> &'static str {\n    // println!(\"in a comment\")\n    \"println!(\\\"in a string\\\")\"\n}\n";
    let findings = analyze_source("crates/x/src/other.rs", masked, &cfg);
    assert!(hits(&findings, "no-print").is_empty(), "{findings:?}");
    let allowed = "fn f() {\n    // analyze: allow(no-print) -- operator-facing table\n    println!(\"report\");\n}\n";
    let findings = analyze_source("crates/x/src/other.rs", allowed, &cfg);
    assert!(hits(&findings, "no-print").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- output format

#[test]
fn findings_render_as_path_line_rule_message() {
    let findings = analyze_source(
        "crates/x/src/other.rs",
        "fn f() { println!(\"x\"); }\n",
        &fixture_config(),
    );
    let c = hits(&findings, "no-print");
    assert_eq!(c.len(), 1);
    let rendered = c[0].to_string();
    assert!(
        rendered.starts_with("crates/x/src/other.rs:1: [no-print] "),
        "diagnostic format `path:line: [rule] message`, got: {rendered}"
    );
}

//! The workspace must lint clean under its own audit policy — the same
//! gate CI's `analyze` job enforces, runnable as a plain test.

use std::path::Path;

use pecan_analyze::{analyze_workspace, find_workspace_root, Config};

#[test]
fn workspace_has_zero_findings_under_the_default_policy() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest_dir).expect("workspace root above crates/analyze");
    let findings = analyze_workspace(&root, &Config::workspace_default())
        .expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "pecan-analyze found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn default_policy_files_all_exist() {
    // A fence around a file that moved is a fence around nothing: every
    // path the policy names must exist so refactors can't silently
    // un-audit a module.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
    let c = Config::workspace_default();
    for path in c
        .unsafe_allowed
        .iter()
        .chain(&c.relaxed_audited)
        .chain(&c.hot_path)
        .chain(&c.print_exempt)
    {
        assert!(root.join(path).is_file(), "policy names a missing file: {path}");
    }
}

//! The rule catalogue. Every rule walks the token stream of a
//! [`SourceFile`] — never raw text — so nothing fires inside comments,
//! strings, or char literals, and `unwrap_or_else` never matches a rule
//! looking for `unwrap`.
//!
//! | id                   | scope                         | silenced by |
//! |----------------------|-------------------------------|-------------|
//! | `unsafe-containment` | all files + crate roots       | config only |
//! | `safety-comment`     | every `unsafe` token          | `// SAFETY:` within the window |
//! | `atomic-ordering`    | lib code: `SeqCst` everywhere, `Relaxed` in audited files | `// ordering:` within the window |
//! | `hot-path-panic`     | designated hot-path modules   | `// analyze: allow(hot-path-panic) -- reason` |
//! | `no-print`           | lib code outside the logger   | `// analyze: allow(no-print) -- reason` |
//!
//! See `docs/static-analysis.md` for the full catalogue with rationale.

use crate::config::Config;
use crate::source::{Role, SourceFile};

/// One diagnostic: `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`unsafe-containment`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Runs every per-file rule on `file`. Crate-root attribute checks are
/// included (they are per-file too: a crate root knows from the config
/// whether its crate carries audited unsafe).
pub fn check_file(file: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    if config.excluded(&file.path) {
        return findings;
    }
    unsafe_containment(file, config, &mut findings);
    safety_comment(file, config, &mut findings);
    atomic_ordering(file, config, &mut findings);
    hot_path_panic(file, config, &mut findings);
    no_print(file, config, &mut findings);
    findings
}

fn finding(file: &SourceFile, line: u32, rule: &'static str, message: String) -> Finding {
    Finding { path: file.path.clone(), line, rule, message }
}

/// The crate directory (`crates/serve/`, or `""` for the workspace-root
/// facade) of a workspace-relative source path.
fn crate_dir(path: &str) -> &str {
    match path.find("src/") {
        Some(at) => &path[..at],
        None => path,
    }
}

/// `unsafe-containment`: `unsafe` may only appear in the audited modules
/// listed in the config, and every crate root must pin the policy as an
/// attribute — `#![forbid(unsafe_code)]` for unsafe-free crates,
/// `#![deny(unsafe_op_in_unsafe_fn)]` for crates holding audited unsafe.
/// There is deliberately **no** per-site allow comment for this rule:
/// moving the fence is a config (i.e. reviewed-policy) change.
fn unsafe_containment(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    let allowed_file = config.unsafe_allowed.iter().any(|p| p == &file.path);
    if !allowed_file {
        for &i in &file.code_token_indices() {
            let t = &file.tokens[i];
            if file.text_of(t) == "unsafe" {
                findings.push(finding(
                    file,
                    t.line,
                    "unsafe-containment",
                    format!(
                        "`unsafe` outside the audited modules — move this into one of the \
                         allowed files or change the audit policy (config), not the code: \
                         {:?}",
                        config.unsafe_allowed
                    ),
                ));
            }
        }
    }

    // Crate-root attribute pinning.
    if file.path.ends_with("src/lib.rs") {
        let dir = crate_dir(&file.path);
        let crate_has_unsafe = config.unsafe_allowed.iter().any(|p| crate_dir(p) == dir);
        if crate_has_unsafe {
            if !file.has_inner_attr("deny", "unsafe_op_in_unsafe_fn") {
                findings.push(finding(
                    file,
                    1,
                    "unsafe-containment",
                    "crate holds audited unsafe but its root lacks \
                     `#![deny(unsafe_op_in_unsafe_fn)]`"
                        .to_string(),
                ));
            }
        } else if !file.has_inner_attr("forbid", "unsafe_code") {
            findings.push(finding(
                file,
                1,
                "unsafe-containment",
                "unsafe-free crate must pin `#![forbid(unsafe_code)]` at its root".to_string(),
            ));
        }
    }
}

/// `safety-comment`: every `unsafe` token (block, fn, impl, trait) needs
/// a `// SAFETY:` comment ending within the lookback window above it (or
/// trailing on the same line), stating the invariant that makes it sound.
fn safety_comment(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    for &i in &file.code_token_indices() {
        let t = &file.tokens[i];
        if file.text_of(t) != "unsafe" {
            continue;
        }
        if file.has_comment_near(t.line, config.lookback, "SAFETY:") {
            continue;
        }
        if file.allowed("safety-comment", t.line, config.lookback) {
            continue;
        }
        findings.push(finding(
            file,
            t.line,
            "safety-comment",
            "`unsafe` without an immediately preceding `// SAFETY:` comment stating the \
             invariant"
                .to_string(),
        ));
    }
}

/// `atomic-ordering`: every `Ordering::SeqCst` in library code needs an
/// `// ordering:` justification (SeqCst is almost always either a
/// placeholder for \"I didn't think about it\" or downgradeable); in the
/// audited lock-free files, every `Relaxed` must likewise carry an
/// `// ordering:` comment naming its pairing site.
fn atomic_ordering(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    if file.role != Role::Lib {
        return;
    }
    let relaxed_audited = config.relaxed_audited.iter().any(|p| p == &file.path);
    for &i in &file.code_token_indices() {
        let t = &file.tokens[i];
        let text = file.text_of(t);
        let (which, demand) = match text {
            "SeqCst" => ("SeqCst", "a justification (or a downgrade to Acquire/Release/Relaxed)"),
            "Relaxed" if relaxed_audited => {
                ("Relaxed", "a comment naming its pairing site in the publish protocol")
            }
            _ => continue,
        };
        if file.in_test_code(t.line) {
            continue;
        }
        if file.has_comment_near(t.line, config.lookback, "ordering:") {
            continue;
        }
        if file.allowed("atomic-ordering", t.line, config.lookback) {
            continue;
        }
        findings.push(finding(
            file,
            t.line,
            "atomic-ordering",
            format!("`Ordering::{which}` needs an `// ordering:` comment with {demand}"),
        ));
    }
}

const PANIC_MACROS: &[&str] =
    &["panic", "todo", "unimplemented", "unreachable", "assert", "assert_eq", "assert_ne"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// `hot-path-panic`: in the designated serving-hot-path modules, no
/// `unwrap`/`expect` calls and no panicking macros outside
/// `#[cfg(test)]`. A panic there takes a scheduler worker, the engine,
/// or the whole event loop down mid-request. (`debug_assert*` stays
/// legal — it compiles out of release builds.)
fn hot_path_panic(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    if !config.hot_path.iter().any(|p| p == &file.path) {
        return;
    }
    let code = file.code_token_indices();
    for (pos, &i) in code.iter().enumerate() {
        let t = &file.tokens[i];
        let text = file.text_of(t);
        let next = code.get(pos + 1).map(|&j| file.text_of(&file.tokens[j]));
        let prev = pos.checked_sub(1).map(|p| file.text_of(&file.tokens[code[p]]));
        let hit = if PANIC_METHODS.contains(&text) && prev == Some(".") {
            format!("`.{text}()` can panic")
        } else if PANIC_MACROS.contains(&text) && next == Some("!") {
            format!("`{text}!` panics")
        } else {
            continue;
        };
        if file.in_test_code(t.line) {
            continue;
        }
        if file.allowed("hot-path-panic", t.line, config.lookback) {
            continue;
        }
        findings.push(finding(
            file,
            t.line,
            "hot-path-panic",
            format!("{hit} on a serving hot path — return a typed error instead"),
        ));
    }
}

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// `no-print`: library code must not write ad-hoc text to stdout/stderr —
/// that's the logfmt logger's job (leveled, filtered, machine-parsable).
/// Binaries, tests, benches and examples own their terminals and are
/// exempt.
fn no_print(file: &SourceFile, config: &Config, findings: &mut Vec<Finding>) {
    if file.role != Role::Lib {
        return;
    }
    if config.print_exempt.iter().any(|p| file.path.starts_with(p.as_str())) {
        return;
    }
    let code = file.code_token_indices();
    for (pos, &i) in code.iter().enumerate() {
        let t = &file.tokens[i];
        let text = file.text_of(t);
        if !PRINT_MACROS.contains(&text) {
            continue;
        }
        if code.get(pos + 1).map(|&j| file.text_of(&file.tokens[j])) != Some("!") {
            continue;
        }
        if file.in_test_code(t.line) {
            continue;
        }
        if file.allowed("no-print", t.line, config.lookback) {
            continue;
        }
        findings.push(finding(
            file,
            t.line,
            "no-print",
            format!(
                "`{text}!` in library code — log through `pecan_obs::log_*!` (or move this \
                 into a bin target)"
            ),
        ));
    }
}

//! A lexed source file plus the derived context rules need: its role in
//! the crate layout, `#[cfg(test)]`/`#[test]` regions, and the comment
//! lookups behind justification comments and allowlisting.

use crate::lexer::{lex, Token, TokenKind};

/// Where a file sits in the Cargo layout — rules scope themselves by
/// role (e.g. `no-print` only bites library code, never binaries or
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library source (`src/**` except `src/bin/**`).
    Lib,
    /// Binary target source (`src/bin/**` or `src/main.rs`).
    Bin,
    /// Integration test (`tests/**`).
    Test,
    /// Benchmark (`benches/**`).
    Bench,
    /// Example (`examples/**`).
    Example,
}

impl Role {
    /// Derives the role from a workspace-relative path (forward slashes).
    pub fn of(rel_path: &str) -> Role {
        if rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs") {
            Role::Bin
        } else if rel_path.contains("/tests/") || rel_path.starts_with("tests/") {
            Role::Test
        } else if rel_path.contains("/benches/") || rel_path.starts_with("benches/") {
            Role::Bench
        } else if rel_path.contains("/examples/") || rel_path.starts_with("examples/") {
            Role::Example
        } else {
            Role::Lib
        }
    }
}

/// One file ready for rule checks: text, tokens, role and test regions.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (the diagnostics key).
    pub path: String,
    /// Full text.
    pub text: String,
    /// Token stream, comments included.
    pub tokens: Vec<Token>,
    /// Layout role.
    pub role: Role,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` or
    /// `#[test]` items.
    test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `text` and computes the derived context.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into();
        let text = text.into();
        let tokens = lex(&text);
        let role = Role::of(&path);
        let test_regions = find_test_regions(&text, &tokens);
        SourceFile { path, text, tokens, role, test_regions }
    }

    /// Token text helper.
    pub fn text_of(&self, t: &Token) -> &str {
        t.text(&self.text)
    }

    /// Is `line` inside a `#[cfg(test)]` module/item or a `#[test]` fn?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Comment tokens (line or block), in source order.
    pub fn comments(&self) -> impl Iterator<Item = &Token> {
        self.tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// Logical comment blocks: each run of line comments on consecutive
    /// lines merged into one (so a wrapped `// SAFETY: …` paragraph is a
    /// single comment), block comments standing alone. Returns
    /// `(start_line, end_line, text)` per block in source order.
    pub fn comment_blocks(&self) -> Vec<(u32, u32, String)> {
        let mut blocks: Vec<(u32, u32, String)> = Vec::new();
        for t in self.comments() {
            let text = self.text_of(t);
            match blocks.last_mut() {
                Some((_, end, buf)) if t.kind == TokenKind::LineComment && t.line == *end + 1 => {
                    *end = t.end_line;
                    buf.push('\n');
                    buf.push_str(text);
                }
                _ => blocks.push((t.line, t.end_line, text.to_string())),
            }
        }
        blocks
    }

    /// Does a comment block containing `needle` end on `line` itself
    /// (trailing comment) or within the `lookback` lines directly above?
    ///
    /// This is the justification-comment primitive: `// SAFETY: …` and
    /// `// ordering: …` checks both ride on it. The window is measured
    /// from the *end* of the block, so a long wrapped justification still
    /// covers the site right below it; it tolerates an attribute or a
    /// statement head in between, but an unrelated comment farther up
    /// never counts.
    pub fn has_comment_near(&self, line: u32, lookback: u32, needle: &str) -> bool {
        self.comment_blocks().iter().any(|(_, end, text)| {
            let in_window = *end == line || (*end < line && line - end <= lookback);
            in_window && text.contains(needle)
        })
    }

    /// Is there a well-formed allowlist comment for `rule` covering
    /// `line`? The syntax is
    ///
    /// ```text
    /// // analyze: allow(rule-id) -- reason the violation is intended
    /// ```
    ///
    /// on the flagged line itself or within `lookback` lines above. The
    /// reason is mandatory: an allow without ` -- <reason>` does not
    /// silence anything.
    pub fn allowed(&self, rule: &str, line: u32, lookback: u32) -> bool {
        let tag = format!("analyze: allow({rule})");
        self.comment_blocks().iter().any(|(_, end, text)| {
            let in_window = *end == line || (*end < line && line - end <= lookback);
            if !in_window {
                return false;
            }
            match text.find(&tag) {
                Some(at) => {
                    let rest = &text[at + tag.len()..];
                    match rest.find("--") {
                        Some(dash) => !rest[dash + 2..].trim().is_empty(),
                        None => false,
                    }
                }
                None => false,
            }
        })
    }

    /// Does the file carry the inner attribute `#![outer(inner)]` (e.g.
    /// `forbid(unsafe_code)`)? Token-level: survives any formatting and
    /// ignores occurrences in comments or strings.
    pub fn has_inner_attr(&self, outer: &str, inner: &str) -> bool {
        let sig = ["#", "!", "[", outer, "(", inner, ")", "]"];
        let code: Vec<&Token> = self
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        code.windows(sig.len())
            .any(|w| w.iter().zip(&sig).all(|(t, want)| self.text_of(t) == *want))
    }

    /// Indices (into `self.tokens`) of non-comment tokens, in order —
    /// the stream rules match token patterns against.
    pub fn code_token_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| {
                !matches!(self.tokens[i].kind, TokenKind::LineComment | TokenKind::BlockComment)
            })
            .collect()
    }
}

/// Computes line regions covered by `#[cfg(test)]` / `#[test]` items.
///
/// Strategy: find the attribute in the token stream, then scan forward
/// for the item it decorates. The region runs from the attribute to the
/// matching close brace of the item's body (or to the `;` of a braceless
/// item). Brace matching happens on tokens, so braces inside strings and
/// comments cannot desynchronize it.
fn find_test_regions(text: &str, tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        match test_attr_at(text, &code, i) {
            Some((attr_end, is_test)) => {
                if is_test {
                    let start_line = code[i].line;
                    let end_line = item_end_line(text, &code, attr_end);
                    regions.push((start_line, end_line));
                }
                i = attr_end;
            }
            None => i += 1,
        }
    }
    regions
}

/// If `code[i..]` starts an outer attribute `#[…]`, returns the index one
/// past its closing `]` and whether it marks test-only code: `#[test]`,
/// `#[cfg(test)]`, or a `cfg` combinator mentioning `test` such as
/// `#[cfg(all(test, unix))]`.
fn test_attr_at(text: &str, code: &[&Token], i: usize) -> Option<(usize, bool)> {
    if code[i].text(text) != "#" || code.get(i + 1).map(|t| t.text(text)) != Some("[") {
        return None;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut names: Vec<&str> = Vec::new();
    while j < code.len() {
        let t = code[j].text(text);
        match t {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if code[j].kind == TokenKind::Ident {
                    names.push(t);
                }
            }
        }
        j += 1;
    }
    let is_test = match names.first() {
        Some(&"test") => names.len() == 1,
        Some(&"cfg") => names.contains(&"test"),
        _ => false,
    };
    Some((j + 1, is_test))
}

/// Line where the item starting at `code[from]` ends: skips further
/// attributes naturally (`[`/`]` are not braces), then runs to the
/// matching `}` of the first brace block — or to a top-level `;` for
/// braceless items like `#[cfg(test)] mod tests;`.
fn item_end_line(text: &str, code: &[&Token], from: usize) -> u32 {
    let mut depth = 0usize;
    let mut entered = false;
    let mut k = from;
    while k < code.len() {
        let t = code[k];
        if t.kind == TokenKind::Punct {
            match t.text(text) {
                "{" => {
                    depth += 1;
                    entered = true;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        return t.end_line;
                    }
                }
                ";" if !entered => return t.end_line,
                _ => {}
            }
        }
        k += 1;
    }
    code.last().map_or(0, |t| t.end_line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_from_paths() {
        assert_eq!(Role::of("crates/serve/src/engine.rs"), Role::Lib);
        assert_eq!(Role::of("crates/serve/src/bin/serve.rs"), Role::Bin);
        assert_eq!(Role::of("crates/serve/tests/http_e2e.rs"), Role::Test);
        assert_eq!(Role::of("crates/bench/benches/matmul.rs"), Role::Bench);
        assert_eq!(Role::of("examples/serving.rs"), Role::Example);
        assert_eq!(Role::of("src/lib.rs"), Role::Lib);
        assert_eq!(Role::of("tests/smoke.rs"), Role::Test);
    }

    #[test]
    fn cfg_test_module_region_covers_its_braces() {
        let src = "fn live() { let x = \"}\"; }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() {}\n\
                       #[test]\n\
                       fn t() { assert!(true); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(6));
        assert!(f.in_test_code(7));
        assert!(!f.in_test_code(8));
    }

    #[test]
    fn test_fn_outside_test_module_is_covered() {
        let src = "fn live() {}\n#[test]\nfn standalone() {\n  work();\n}\nfn live2() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_all_test_counts_and_cfg_unix_does_not() {
        let src = "#[cfg(all(test, unix))]\nmod a { fn x() {} }\n\
                   #[cfg(unix)]\nmod b { fn y() {} }\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(4));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse helper::*;\nfn live() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn allow_comment_requires_rule_and_reason() {
        let src = "\
            // analyze: allow(no-print) -- operator-facing progress output\n\
            println!(\"a\");\n\
            // analyze: allow(no-print)\n\
            println!(\"b\");\n\
            println!(\"c\"); // analyze: allow(no-print) -- trailing form\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.allowed("no-print", 2, 3), "reasoned allow silences");
        assert!(!f.allowed("no-print", 4, 1), "reason-less allow is inert");
        assert!(f.allowed("no-print", 5, 3), "trailing allow silences");
        assert!(!f.allowed("hot-path-panic", 2, 3), "rule id must match");
    }

    #[test]
    fn inner_attr_detection_ignores_comments_and_strings() {
        let real = SourceFile::new("a.rs", "#![forbid(unsafe_code)]\nfn x() {}");
        assert!(real.has_inner_attr("forbid", "unsafe_code"));
        let fake = SourceFile::new(
            "b.rs",
            "// #![forbid(unsafe_code)]\nlet s = \"#![forbid(unsafe_code)]\";",
        );
        assert!(!fake.has_inner_attr("forbid", "unsafe_code"));
        let spaced = SourceFile::new("c.rs", "#! [ forbid ( unsafe_code ) ]");
        assert!(spaced.has_inner_attr("forbid", "unsafe_code"));
    }

    #[test]
    fn comment_near_windows() {
        let src = "// SAFETY: the invariant\n#[cfg(x)]\nunsafe fn f() {}\n\n\n\nunsafe fn g() {}\n";
        let f = SourceFile::new("a.rs", src);
        assert!(f.has_comment_near(3, 3, "SAFETY:"), "attr between comment and site is fine");
        assert!(!f.has_comment_near(7, 3, "SAFETY:"), "stale comment far above never counts");
    }

    #[test]
    fn wrapped_comment_paragraphs_count_as_one_block() {
        // The needle is on the FIRST of four wrapped lines; the window is
        // measured from the block's last line, so a site 4 lines below
        // the block end is still covered.
        let src = "\
            // ordering: Relaxed — a justification\n\
            // that wraps over\n\
            // several lines\n\
            // before the code.\n\
            a.store(1);\n\
            b.store(2);\n\
            c.store(3);\n\
            d.store(4);\n\n\n\n\n\
            e.store(5);\n";
        let f = SourceFile::new("a.rs", src);
        for line in 5..=8 {
            assert!(f.has_comment_near(line, 4, "ordering:"), "line {line} covered");
        }
        assert!(!f.has_comment_near(13, 4, "ordering:"), "far site not covered");
        // A gap splits blocks: needle-less block below doesn't inherit.
        let gapped = SourceFile::new("b.rs", "// ordering: x\n\n// unrelated\n\nf();\n");
        assert!(f.has_comment_near(5, 4, "ordering:"));
        assert!(!gapped.has_comment_near(5, 1, "ordering:"), "gap breaks the block");
    }
}

//! A small but real Rust lexer: enough of the token grammar that rules
//! never fire on text inside comments, string/raw-string literals, or
//! char/byte literals — and that comment tokens survive with their line
//! numbers, because two rules (`safety-comment`, `atomic-ordering`) are
//! *about* comments.
//!
//! What it understands:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** … */`)
//! - string literals with escapes (`"a \" b"`), byte strings (`b"…"`),
//!   raw strings with any hash depth (`r#"…"#`, `br##"…"##`)
//! - char and byte literals (`'a'`, `'\''`, `b'\xff'`), disambiguated
//!   from lifetimes (`'static`)
//! - identifiers/keywords (one token each — `unwrap_or_else` never
//!   matches a rule looking for `unwrap`), raw identifiers (`r#fn`),
//!   numbers (including `0x_ff`, `1_000.5e-3`, `1..=2` stays three
//!   tokens), and single-character punctuation
//!
//! It does **not** build a syntax tree; rules work on the token stream
//! plus line numbers, which is exactly the right altitude for lint rules
//! that key on single tokens and their comment context.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `SeqCst`, `unwrap`, `r#fn`).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Number literal, including suffixes and float forms.
    Number,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` (incl. `///` and `//!` doc comments), up to the newline.
    LineComment,
    /// `/* … */` (incl. doc block comments), nesting handled.
    BlockComment,
    /// One punctuation character (`{`, `.`, `!`, `#`, …).
    Punct,
}

/// One lexed token: kind, byte range into the source, and line span
/// (1-based; `line == end_line` except for multi-line strings/comments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based line of the last byte.
    pub end_line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into tokens, comments included. Whitespace is dropped.
/// Never panics: malformed input (unterminated strings/comments) lexes
/// into a final token that runs to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: u32) {
        self.tokens.push(Token { kind, start, end: self.pos, line: start_line, end_line: self.line });
    }

    fn run(mut self, src: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            let start = self.pos;
            let start_line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, start_line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment(start, start_line);
                }
                b'"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Str, start, start_line);
                }
                b'\'' => self.char_or_lifetime(start, start_line),
                b'b' | b'r' if self.string_prefix() => {
                    // `b"…"`, `r"…"`, `r#"…"#`, `br"…"`, `br#"…"#`,
                    // `b'…'`. Consume the prefix letters, then the body.
                    let raw = self.consume_prefix();
                    if self.peek(0) == b'\'' {
                        // b'…' byte literal.
                        self.bump();
                        self.char_body();
                        self.push(TokenKind::Char, start, start_line);
                    } else if raw {
                        self.raw_string_body();
                        self.push(TokenKind::Str, start, start_line);
                    } else {
                        self.bump(); // opening quote
                        self.string_body();
                        self.push(TokenKind::Str, start, start_line);
                    }
                }
                b'r' if self.peek(1) == b'#' && is_ident_start(self.peek(2)) => {
                    // Raw identifier `r#fn` — but NOT `r#"…"` (handled
                    // above) and not `r#0`.
                    self.bump();
                    self.bump();
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, start_line);
                }
                _ if is_ident_start(c) => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, start_line);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, start_line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, start_line);
                }
            }
        }
        debug_assert!(self.tokens.iter().all(|t| t.end <= src.len()));
        self.tokens
    }

    /// Does the cursor sit on a `b`/`r`/`br`/`rb`-prefixed string or byte
    /// literal (as opposed to an identifier starting with those letters)?
    fn string_prefix(&self) -> bool {
        match self.peek(0) {
            b'r' => {
                // r"…" or r#…# where the hashes lead to a quote.
                if self.peek(1) == b'"' {
                    return true;
                }
                let mut i = 1;
                while self.peek(i) == b'#' {
                    i += 1;
                }
                i > 1 && self.peek(i) == b'"'
            }
            b'b' => match self.peek(1) {
                b'"' | b'\'' => true,
                b'r' => {
                    if self.peek(2) == b'"' {
                        return true;
                    }
                    let mut i = 2;
                    while self.peek(i) == b'#' {
                        i += 1;
                    }
                    i > 2 && self.peek(i) == b'"'
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Consumes `b`/`r`/`br` prefix letters; returns whether the literal
    /// is raw (an `r` was present). Leaves the cursor on `#` or `"` or
    /// `'`.
    fn consume_prefix(&mut self) -> bool {
        let mut raw = false;
        loop {
            match self.peek(0) {
                b'r' => {
                    raw = true;
                    self.bump();
                }
                b'b' => self.bump(),
                _ => return raw,
            }
        }
    }

    /// Body of a normal (escaped) string; cursor is past the opening
    /// quote. Consumes through the closing quote.
    fn string_body(&mut self) {
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump(); // the escaped byte, incl. \" and \\
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Body of a raw string; cursor is on the first `#` or the quote.
    /// Consumes `#…#"` … `"#…#` with matching hash depth.
    fn raw_string_body(&mut self) {
        let mut hashes = 0;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == b'"' {
            self.bump();
        }
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let mut i = 1;
                while i <= hashes && self.peek(i) == b'#' {
                    i += 1;
                }
                if i == hashes + 1 {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// Body of a char/byte literal; cursor is past the opening `'`.
    fn char_body(&mut self) {
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'` starts either a char literal or a lifetime. A lifetime is `'`
    /// followed by an identifier with **no** closing quote right after
    /// (`'a'` is a char, `'a,` is a lifetime).
    fn char_or_lifetime(&mut self, start: usize, start_line: u32) {
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            // Could still be a multi-byte char like '\u{…}'? No — those
            // start with a backslash. `'ab'` is not valid Rust; treat the
            // ident run as a lifetime.
            let mut i = 1;
            while is_ident_continue(self.peek(i)) {
                i += 1;
            }
            if self.peek(i) != b'\'' {
                self.bump(); // the quote
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, start, start_line);
                return;
            }
        }
        self.bump(); // the quote
        self.char_body();
        self.push(TokenKind::Char, start, start_line);
    }

    /// Number literal: integer/float, radix prefixes, `_` separators,
    /// type suffixes, exponents. Stops before `..` so ranges stay ranges.
    fn number(&mut self) {
        self.bump(); // first digit
        while self.pos < self.src.len() {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                // Exponent sign: `1e-5` / `2.5E+10`.
                let prev = self.src[self.pos];
                self.bump();
                if (prev == b'e' || prev == b'E')
                    && (self.peek(0) == b'+' || self.peek(0) == b'-')
                    && self.peek(1).is_ascii_digit()
                {
                    self.bump();
                }
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` but not `1..2` (peek(1) is `.`) or `1.method()`.
                self.bump();
            } else {
                return;
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Nested block comment, cursor on the opening `/`.
impl Lexer<'_> {
    fn block_comment(&mut self, start: usize, start_line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, start, start_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_are_whole_tokens() {
        let ks = kinds("a.unwrap_or_else(x)");
        assert_eq!(ks[2], (TokenKind::Ident, "unwrap_or_else".into()));
        assert!(!ks.iter().any(|(_, t)| t == "unwrap"));
    }

    #[test]
    fn line_comment_swallows_string_quote() {
        let ks = kinds("let x = 1; // \"unsafe\" in a comment\nlet y;");
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::LineComment && t.contains("unsafe")));
        assert!(!ks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn slashes_inside_strings_are_not_comments() {
        let ks = kinds(r#"let url = "http://x // not a comment"; done"#);
        assert!(ks.iter().all(|(k, _)| *k != TokenKind::LineComment));
        assert!(ks.iter().any(|(k, _)| *k == TokenKind::Str));
        assert_eq!(ks.last().unwrap().1, "done");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let ks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].0, TokenKind::BlockComment);
        assert_eq!(ks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r###"let s = r#"contains "quotes" and unsafe"#; tail"###;
        let ks = kinds(src);
        let s = ks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert!(s.1.contains("unsafe"));
        assert_eq!(ks.last().unwrap().1, "tail");
        assert!(!ks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let ks = kinds(r##"let a = b"bytes"; let b = br#"raw "bytes""#; end"##);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(ks.last().unwrap().1, "end");
    }

    #[test]
    fn char_byte_and_lifetime_disambiguation() {
        let ks = kinds(r"fn f<'a>(x: &'a u8) { let c = 'x'; let q = '\''; let b = b'\n'; }");
        let lifetimes: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 3);
    }

    #[test]
    fn static_lifetime_vs_char() {
        let ks = kinds("&'static str; 's'");
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'s'"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let ks = kinds(r#"let s = "a \" b \\"; next"#);
        let strings: Vec<_> = ks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strings.len(), 1);
        assert_eq!(ks.last().unwrap().1, "next");
    }

    #[test]
    fn numbers_stay_single_tokens_and_ranges_split() {
        let ks = kinds("0x_ff 1_000.5e-3 1..=2 3.max(4)");
        let nums: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokenKind::Number).map(|(_, t)| t.clone()).collect();
        assert_eq!(nums, vec!["0x_ff", "1_000.5e-3", "1", "2", "3", "4"]);
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ks = kinds("let r#fn = 1; r#\"raw\"#");
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("raw")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"multi\nline\" c";
        let toks = lex(src);
        let block = toks.iter().find(|t| t.kind == TokenKind::BlockComment).unwrap();
        assert_eq!((block.line, block.end_line), (2, 3));
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!((s.line, s.end_line), (4, 5));
        let c = toks.iter().find(|t| t.kind == TokenKind::Ident && t.text(src) == "c").unwrap();
        assert_eq!(c.line, 5);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"never closed", "/* never closed", "r#\"never", "b'", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }
}

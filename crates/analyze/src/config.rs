//! Rule-engine configuration: which files may hold `unsafe`, which are
//! serving hot paths, which `Relaxed` sites are part of an audited
//! lock-free protocol, and what gets excluded.
//!
//! The built-in [`Config::workspace_default`] encodes this workspace's
//! audit decisions and is what `analyze --workspace` runs with. The same
//! settings can be rendered to a conf file (`analyze --print-config`),
//! edited, and fed back with `--config`, so downstream forks can move
//! the fences without patching the binary.
//!
//! # File format
//!
//! Line-based, `#` comments, one `[rule-id]` section per rule, repeated
//! `key = value` pairs accumulate:
//!
//! ```text
//! lookback = 4
//! [unsafe-containment]
//! allow = crates/serve/src/http/sys.rs
//! [hot-path-panic]
//! file = crates/serve/src/scheduler.rs
//! ```

/// Everything the rules need to know about the workspace's audit policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Justification/allow comments must end within this many lines above
    /// the flagged line (trailing comments always count).
    pub lookback: u32,
    /// Path prefixes excluded from every rule (vendored code the
    /// workspace does not audit).
    pub exclude: Vec<String>,
    /// Files allowed to contain `unsafe` (the audited modules).
    pub unsafe_allowed: Vec<String>,
    /// Files whose `Ordering::Relaxed` sites belong to a hand-rolled
    /// lock-free protocol and must each name their pairing site in an
    /// `// ordering:` comment.
    pub relaxed_audited: Vec<String>,
    /// The designated serving-hot-path modules: no panicking constructs
    /// outside `#[cfg(test)]`.
    pub hot_path: Vec<String>,
    /// Library files exempt from `no-print` (the logfmt logger itself).
    pub print_exempt: Vec<String>,
}

impl Config {
    /// An empty config: no allowances anywhere, lookback 4.
    pub fn empty() -> Config {
        Config {
            lookback: 4,
            exclude: Vec::new(),
            unsafe_allowed: Vec::new(),
            relaxed_audited: Vec::new(),
            hot_path: Vec::new(),
            print_exempt: Vec::new(),
        }
    }

    /// The audit policy of this workspace — the single source of truth
    /// that CI enforces. See `docs/static-analysis.md` for the rationale
    /// behind each entry.
    pub fn workspace_default() -> Config {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        Config {
            lookback: 4,
            // Vendored stand-ins for crates.io packages (offline build
            // environment); they mirror external APIs and print bench
            // reports by design. Not part of the audited surface.
            exclude: s(&["shims/"]),
            // The audited unsafe islands: raw syscalls (epoll/eventfd/
            // mmap, thread CPU clock), the span-name pointer round trip,
            // the counting GlobalAlloc, and the (future-SIMD) GEMM
            // microkernel. Everything else: #![forbid(unsafe_code)].
            unsafe_allowed: s(&[
                "crates/serve/src/http/sys.rs",
                "crates/serve/src/mapped.rs",
                "crates/obs/src/clock.rs",
                "crates/obs/src/alloc.rs",
                "crates/obs/src/span.rs",
                "crates/tensor/src/gemm/kernel.rs",
            ]),
            // The seqlock rings and histogram publish paths: every
            // Relaxed here is a deliberate protocol decision and must
            // name its pairing site.
            relaxed_audited: s(&[
                "crates/obs/src/span.rs",
                "crates/obs/src/hist.rs",
                "crates/serve/src/obs/recorder.rs",
            ]),
            // Scheduler submit, engine infer, event-loop poll, span
            // record, flight-recorder record: a panic here takes down a
            // worker or the connection tier mid-request.
            hot_path: s(&[
                "crates/serve/src/scheduler.rs",
                "crates/serve/src/engine.rs",
                "crates/serve/src/http/event_loop.rs",
                "crates/obs/src/span.rs",
                "crates/obs/src/hist.rs",
                "crates/serve/src/obs/recorder.rs",
            ]),
            // The logfmt logger owns stderr; everything else must log
            // through it.
            print_exempt: s(&["crates/obs/src/log.rs"]),
        }
    }

    /// Parses the conf-file format described in the module docs.
    ///
    /// # Errors
    ///
    /// A `line N: <problem>` message for unknown sections, unknown keys,
    /// or lines that are neither `[section]`, `key = value`, comment nor
    /// blank.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::empty();
        let mut section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                let name = name.trim();
                match name {
                    "unsafe-containment" | "atomic-ordering" | "hot-path-panic" | "no-print"
                    | "exclude" => section = Some(name.to_string()),
                    other => return Err(format!("line {n}: unknown section [{other}]")),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {n}: expected `key = value`, got `{line}`"));
            };
            let (key, value) = (key.trim(), value.trim().to_string());
            if value.is_empty() {
                return Err(format!("line {n}: empty value for `{key}`"));
            }
            match (section.as_deref(), key) {
                (None, "lookback") => match value.parse() {
                    Ok(v) => config.lookback = v,
                    Err(_) => return Err(format!("line {n}: lookback must be a number")),
                },
                (Some("exclude"), "path") => config.exclude.push(value),
                (Some("unsafe-containment"), "allow") => config.unsafe_allowed.push(value),
                (Some("atomic-ordering"), "relaxed-audit") => config.relaxed_audited.push(value),
                (Some("hot-path-panic"), "file") => config.hot_path.push(value),
                (Some("no-print"), "exempt") => config.print_exempt.push(value),
                (sec, key) => {
                    let place = sec.map_or("top level".to_string(), |s| format!("[{s}]"));
                    return Err(format!("line {n}: unknown key `{key}` in {place}"));
                }
            }
        }
        Ok(config)
    }

    /// Renders the config in the format [`Config::parse`] reads:
    /// `parse(render(c)) == c` for any config.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# pecan-analyze configuration (see docs/static-analysis.md)\n");
        out.push_str(&format!("lookback = {}\n", self.lookback));
        out.push_str("\n[exclude]\n");
        for p in &self.exclude {
            out.push_str(&format!("path = {p}\n"));
        }
        out.push_str("\n[unsafe-containment]\n");
        for p in &self.unsafe_allowed {
            out.push_str(&format!("allow = {p}\n"));
        }
        out.push_str("\n[atomic-ordering]\n");
        for p in &self.relaxed_audited {
            out.push_str(&format!("relaxed-audit = {p}\n"));
        }
        out.push_str("\n[hot-path-panic]\n");
        for p in &self.hot_path {
            out.push_str(&format!("file = {p}\n"));
        }
        out.push_str("\n[no-print]\n");
        for p in &self.print_exempt {
            out.push_str(&format!("exempt = {p}\n"));
        }
        out
    }

    /// Is `path` (workspace-relative, forward slashes) excluded entirely?
    pub fn excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_through_render_and_parse() {
        let d = Config::workspace_default();
        let parsed = Config::parse(&d.render()).expect("rendered config parses");
        assert_eq!(parsed, d);
    }

    #[test]
    fn parse_rejects_unknown_sections_keys_and_garbage() {
        assert!(Config::parse("[not-a-rule]\n").unwrap_err().contains("unknown section"));
        assert!(Config::parse("[no-print]\nallow = x\n").unwrap_err().contains("unknown key"));
        assert!(Config::parse("just words\n").unwrap_err().contains("key = value"));
        assert!(Config::parse("lookback = many\n").unwrap_err().contains("number"));
        assert!(Config::parse("[no-print]\nexempt =\n").unwrap_err().contains("empty value"));
    }

    #[test]
    fn comments_blanks_and_accumulation() {
        let c = Config::parse(
            "# header\n\nlookback = 2\n[hot-path-panic]\nfile = a.rs\n# mid\nfile = b.rs\n",
        )
        .unwrap();
        assert_eq!(c.lookback, 2);
        assert_eq!(c.hot_path, vec!["a.rs", "b.rs"]);
    }

    #[test]
    fn excluded_is_prefix_based() {
        let c = Config::workspace_default();
        assert!(c.excluded("shims/rand/src/lib.rs"));
        assert!(!c.excluded("crates/obs/src/lib.rs"));
    }
}

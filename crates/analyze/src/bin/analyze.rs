//! CLI for the workspace lint engine.
//!
//! ```text
//! analyze --workspace              # lint the whole workspace, exit 1 on findings
//! analyze --workspace --config F  # same, with a custom policy file
//! analyze --print-config           # dump the built-in policy in --config format
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pecan_analyze::{analyze_workspace, find_workspace_root, Config};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("analyze: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut workspace = false;
    let mut print_config = false;
    let mut config_path: Option<PathBuf> = None;
    let mut root_override: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--print-config" => print_config = true,
            "--config" => {
                let v = args.next().ok_or("--config needs a path")?;
                config_path = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                root_override = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: analyze --workspace [--config FILE] [--root DIR] | --print-config\n\
                     \n\
                     Lints every .rs file under the workspace root with the pecan audit\n\
                     policy. Exits 0 on a clean pass, 1 on findings, 2 on usage/IO errors.\n\
                     See docs/static-analysis.md for the rule catalogue."
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let config = match &config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Config::workspace_default(),
    };

    if print_config {
        print!("{}", config.render());
        return Ok(ExitCode::SUCCESS);
    }
    if !workspace {
        return Err("nothing to do: pass --workspace (or --print-config)".to_string());
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = match root_override {
        Some(r) => r,
        None => find_workspace_root(&cwd)
            .ok_or("no workspace root (Cargo.toml with [workspace]) above the current dir")?,
    };

    let findings = analyze_workspace(&root, &config)?;
    if findings.is_empty() {
        println!("analyze: clean — 0 findings");
        return Ok(ExitCode::SUCCESS);
    }
    for f in &findings {
        println!("{f}");
    }
    println!("analyze: {} finding(s)", findings.len());
    Ok(ExitCode::FAILURE)
}

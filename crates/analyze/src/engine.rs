//! Workspace walker + rule driver: find every `.rs` file, lex it, run
//! the rule catalogue, and report deterministic, sorted diagnostics.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::rules::{self, Finding};
use crate::source::SourceFile;

/// Directories never descended into (build output, VCS metadata).
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Analyzes one in-memory source file. `rel_path` must be
/// workspace-relative with forward slashes — it drives role detection
/// and the config's path matching. This is the entry point fixture
/// tests use.
pub fn analyze_source(rel_path: &str, text: &str, config: &Config) -> Vec<Finding> {
    let file = SourceFile::new(rel_path.to_string(), text.to_string());
    rules::check_file(&file, config)
}

/// Walks `root`, analyzes every `.rs` file, and returns all findings
/// sorted by path, then line, then rule id.
///
/// # Errors
///
/// I/O errors from the walk; unreadable files (non-UTF-8, races) are
/// reported as errors rather than silently skipped — a lint pass that
/// skips files lies about coverage.
pub fn analyze_workspace(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        if config.excluded(&rel) {
            continue;
        }
        let text = fs::read_to_string(path)
            .map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
        findings.extend(analyze_source(&rel, &text, config));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    Ok(findings)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize to forward slashes so config paths match on any host.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("{}: cannot read dir: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: walk error: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

//! `pecan-analyze` — the workspace's own static-analysis engine.
//!
//! A std-only lint pass purpose-built for this codebase: a real Rust
//! lexer (comments, strings, raw strings, char/byte literals — rules
//! never fire inside text) feeding a small rule catalogue that machine-
//! checks the workspace's memory-safety and concurrency audit policy:
//!
//! * `unsafe-containment` — `unsafe` only in the audited modules;
//!   every other crate pins `#![forbid(unsafe_code)]`.
//! * `safety-comment` — every `unsafe` carries a `// SAFETY:` invariant.
//! * `atomic-ordering` — `SeqCst` must be justified or downgraded;
//!   audited `Relaxed` sites name their pairing site.
//! * `hot-path-panic` — no panicking constructs on serving hot paths.
//! * `no-print` — library code logs through the logfmt logger, not
//!   stdout/stderr.
//!
//! Run it with `cargo run -p pecan-analyze -- --workspace`; CI requires
//! zero findings. `docs/static-analysis.md` is the user-facing manual.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use config::Config;
pub use engine::{analyze_source, analyze_workspace, find_workspace_root};
pub use rules::Finding;

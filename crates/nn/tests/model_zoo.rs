//! Shape, parameter-count and epoch-propagation tests across the whole
//! model zoo at reduced widths.

use pecan_autograd::Var;
use pecan_nn::{models, Layer, StandardBuilder};
use pecan_tensor::Tensor;

type BuildFn = Box<dyn FnOnce(&mut StandardBuilder) -> pecan_nn::Sequential>;

#[test]
fn every_model_maps_input_to_logits() {
    let cases: Vec<(&str, BuildFn, Vec<usize>, usize)> = vec![
        (
            "lenet",
            Box::new(|b: &mut StandardBuilder| models::lenet5_modified(b).unwrap()),
            vec![2, 1, 28, 28],
            10,
        ),
        (
            "vgg_small",
            Box::new(|b: &mut StandardBuilder| {
                models::vgg_small(
                    b,
                    models::VggSmallConfig { num_classes: 7, width_divisor: 16, input_size: 16 },
                )
                .unwrap()
            }),
            vec![2, 3, 16, 16],
            7,
        ),
        (
            "resnet20",
            Box::new(|b: &mut StandardBuilder| models::resnet20(b, 5, 4).unwrap()),
            vec![2, 3, 16, 16],
            5,
        ),
        (
            "resnet32",
            Box::new(|b: &mut StandardBuilder| models::resnet32(b, 3, 4).unwrap()),
            vec![1, 3, 16, 16],
            3,
        ),
        (
            "convmixer",
            Box::new(|b: &mut StandardBuilder| {
                models::convmixer(
                    b,
                    models::ConvMixerConfig {
                        dim: 16,
                        depth: 2,
                        kernel: 5,
                        patch_size: 4,
                        num_classes: 9,
                    },
                )
                .unwrap()
            }),
            vec![2, 3, 16, 16],
            9,
        ),
    ];
    for (name, build, input, classes) in cases {
        let mut builder = StandardBuilder::from_seed(13);
        let mut net = build(&mut builder);
        let x = Var::constant(Tensor::zeros(&input));
        let y = net.forward(&x, false).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(y.value().dims(), &[input[0], classes], "{name} logits shape");
        assert!(!net.parameters().is_empty(), "{name} has parameters");
    }
}

#[test]
fn resnet_parameter_count_scales_with_depth() {
    let mut b20 = StandardBuilder::from_seed(1);
    let mut b32 = StandardBuilder::from_seed(1);
    let p20 = models::resnet20(&mut b20, 10, 4).unwrap().parameters().len();
    let p32 = models::resnet32(&mut b32, 10, 4).unwrap().parameters().len();
    // 6n+2 conv/fc layers plus 2 BN params per conv: strictly more for n=5
    assert!(p32 > p20, "resnet32 {p32} vs resnet20 {p20}");
}

#[test]
fn train_mode_changes_batchnorm_behaviour() {
    let mut b = StandardBuilder::from_seed(5);
    let mut net = models::vgg_small(
        &mut b,
        models::VggSmallConfig { num_classes: 4, width_divisor: 32, input_size: 16 },
    )
    .unwrap();
    let x = Var::constant(Tensor::full(&[4, 3, 16, 16], 0.7));
    // training forward normalises with batch stats (constant input → zeros
    // after BN); eval forward uses running stats (initially mean 0/var 1)
    let y_train = net.forward(&x, true).unwrap();
    let y_eval = net.forward(&x, false).unwrap();
    assert!(
        y_train.value().max_abs_diff(&y_eval.value()) > 1e-6,
        "train and eval paths should differ on a fresh network"
    );
}

#[test]
fn set_epoch_reaches_nested_blocks() {
    // Standard layers ignore epochs, but the call must traverse blocks
    // without panicking (PECAN layers rely on this plumbing).
    let mut b = StandardBuilder::from_seed(6);
    let mut net = models::resnet20(&mut b, 10, 4).unwrap();
    net.set_epoch(5, 10);
    let mut cm = StandardBuilder::from_seed(7);
    let mut mixer = models::convmixer(
        &mut cm,
        models::ConvMixerConfig { dim: 8, depth: 2, kernel: 3, patch_size: 2, num_classes: 4 },
    )
    .unwrap();
    mixer.set_epoch(0, 1);
}

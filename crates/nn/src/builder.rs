use crate::{Conv2d, Layer, Linear};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Factory for the two layer kinds PECAN replaces.
///
/// All model-zoo constructors in [`crate::models`] request their
/// convolutions and fully-connected layers through this trait, so the same
/// topology can be instantiated as a baseline CNN (via [`StandardBuilder`])
/// or as a PECAN network (via the builder in `pecan-core`, which swaps in
/// PQ + lookup layers configured per Tables A2/A3).
///
/// `layer_index` increments over every conv/linear requested, letting
/// builders apply per-layer codebook settings.
pub trait LayerBuilder {
    /// Builds the `layer_index`-th convolution of the model.
    fn conv2d(
        &mut self,
        layer_index: usize,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Box<dyn Layer>;

    /// Builds the `layer_index`-th fully-connected layer of the model.
    fn linear(&mut self, layer_index: usize, in_features: usize, out_features: usize)
        -> Box<dyn Layer>;
}

/// [`LayerBuilder`] producing ordinary [`Conv2d`]/[`Linear`] layers — the
/// "Baseline" rows of the paper's tables.
///
/// # Example
///
/// ```
/// use pecan_nn::{LayerBuilder, StandardBuilder};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut b = StandardBuilder::new(&mut rng);
/// let conv = b.conv2d(0, 3, 16, 3, 1, 1);
/// assert_eq!(conv.name(), "Conv2d");
/// ```
pub struct StandardBuilder {
    rng: StdRng,
}

impl StandardBuilder {
    /// Creates a builder seeding its own RNG from the caller's.
    pub fn new<R: Rng>(rng: &mut R) -> Self {
        Self { rng: StdRng::seed_from_u64(rng.gen()) }
    }

    /// Creates a builder with a fixed seed (reproducible models).
    pub fn from_seed(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl LayerBuilder for StandardBuilder {
    fn conv2d(
        &mut self,
        _layer_index: usize,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Box<dyn Layer> {
        Box::new(Conv2d::new(&mut self.rng, c_in, c_out, kernel, stride, padding, false))
    }

    fn linear(
        &mut self,
        _layer_index: usize,
        in_features: usize,
        out_features: usize,
    ) -> Box<dyn Layer> {
        Box::new(Linear::new(&mut self.rng, in_features, out_features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_builder_is_reproducible() {
        let mut a = StandardBuilder::from_seed(1);
        let mut b = StandardBuilder::from_seed(1);
        let ca = a.conv2d(0, 1, 2, 3, 1, 0);
        let cb = b.conv2d(0, 1, 2, 3, 1, 0);
        let wa = ca.parameters()[0].to_tensor();
        let wb = cb.parameters()[0].to_tensor();
        assert_eq!(wa.data(), wb.data());
    }
}

use pecan_autograd::Var;
use pecan_tensor::ShapeError;
use std::any::Any;

/// A differentiable network layer.
///
/// Layers own their parameters as [`Var`]s and may keep internal state
/// (BatchNorm running statistics, PECAN epoch schedules). `forward` takes
/// `&mut self` precisely so that such state can be updated during training.
pub trait Layer {
    /// Runs the layer. `train` selects training behaviour (batch statistics,
    /// annealed gradients); inference uses frozen state.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the input shape is incompatible.
    fn forward(&mut self, input: &Var, train: bool) -> Result<Var, ShapeError>;

    /// All trainable parameters, used to populate optimizers.
    fn parameters(&self) -> Vec<Var>;

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Informs the layer of training progress (zero-based `epoch` out of
    /// `total`). PECAN-D layers use this for the epoch-aware sign-gradient
    /// annealing of Eq. (6); everything else ignores it.
    fn set_epoch(&mut self, _epoch: usize, _total: usize) {}

    /// Runtime introspection hook (model conversion walks layer trees to
    /// replace convolutions with PECAN equivalents).
    fn as_any(&self) -> &dyn Any;

    /// Mutable runtime introspection hook.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

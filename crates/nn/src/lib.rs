//! Neural-network layers and the PECAN paper's model zoo.
//!
//! This crate supplies the conventional CNN substrate that PECAN both
//! *replaces* (its convolutions become PQ + table lookup) and *competes
//! against* (the "Baseline" rows of Tables 2–4). The same architecture
//! definitions serve both: every model constructor receives a
//! [`LayerBuilder`], so the `pecan-core` crate can instantiate the identical
//! topology with PECAN layers swapped in for convolutions and linears.
//!
//! Models implemented (paper §4):
//! * modified LeNet-5 (Table A1) — MNIST
//! * VGG-Small — CIFAR-10/100
//! * ResNet-20 / ResNet-32 — CIFAR-10/100
//! * modified ConvMixer (depth 8, k = 5) — Tiny-ImageNet (Table A4)
//!
//! # Example
//!
//! ```
//! use pecan_nn::{models, Layer, StandardBuilder};
//! use pecan_autograd::Var;
//! use pecan_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), pecan_tensor::ShapeError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut builder = StandardBuilder::new(&mut rng);
//! let mut lenet = models::lenet5_modified(&mut builder)?;
//! let x = Var::constant(Tensor::zeros(&[1, 1, 28, 28]));
//! let logits = lenet.forward(&x, false)?;
//! assert_eq!(logits.value().dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod builder;
mod layer;
mod layers;
pub mod models;
mod trainer;

pub use builder::{LayerBuilder, StandardBuilder};
pub use layer::Layer;
pub use layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu, Sequential,
};
pub use trainer::{accuracy, train_epoch, Batch, EpochStats};

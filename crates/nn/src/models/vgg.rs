use crate::{BatchNorm2d, Flatten, LayerBuilder, MaxPool2d, Relu, Sequential};
use pecan_tensor::ShapeError;

/// Configuration for [`vgg_small`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VggSmallConfig {
    /// Number of output classes (10 for CIFAR-10, 100 for CIFAR-100).
    pub num_classes: usize,
    /// Divides every channel width (1 = paper scale 128/256/512; larger
    /// values give the reduced-scale variants trainable on CPU).
    pub width_divisor: usize,
    /// Spatial input size (32 for CIFAR).
    pub input_size: usize,
}

impl Default for VggSmallConfig {
    fn default() -> Self {
        Self { num_classes: 10, width_divisor: 1, input_size: 32 }
    }
}

impl VggSmallConfig {
    /// Channel widths of the six conv layers after scaling.
    pub fn widths(&self) -> [usize; 6] {
        let d = self.width_divisor.max(1);
        [128, 128, 256, 256, 512, 512].map(|c: usize| (c / d).max(4))
    }

    /// Flattened feature count entering the classifier.
    pub fn fc_in(&self) -> usize {
        let side = self.input_size / 8; // three 2×2 pools
        self.widths()[5] * side * side
    }
}

/// VGG-Small: six 3×3 convolutions (two per resolution, BN+ReLU after
/// each), three 2×2 max-pools and a single fully-connected classifier —
/// the simplified VGGNet of §4.2.
///
/// Layer indices for per-layer PECAN configs (Table A3): convs are `0..=5`,
/// the classifier is `6`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `input_size` is not divisible by 8.
///
/// # Example
///
/// ```
/// use pecan_nn::{models, models::VggSmallConfig, Layer, StandardBuilder};
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let mut b = StandardBuilder::from_seed(0);
/// let cfg = VggSmallConfig { width_divisor: 16, ..Default::default() };
/// let net = models::vgg_small(&mut b, cfg)?;
/// assert!(net.len() > 20);
/// # Ok(())
/// # }
/// ```
pub fn vgg_small(
    builder: &mut dyn LayerBuilder,
    config: VggSmallConfig,
) -> Result<Sequential, ShapeError> {
    if config.input_size % 8 != 0 || config.input_size == 0 {
        return Err(ShapeError::new(format!(
            "vgg_small input size {} must be a positive multiple of 8",
            config.input_size
        )));
    }
    let w = config.widths();
    let mut net = Sequential::new();
    let mut c_in = 3;
    for (i, &c_out) in w.iter().enumerate() {
        net.push(builder.conv2d(i, c_in, c_out, 3, 1, 1));
        net.push(Box::new(BatchNorm2d::new(c_out)));
        net.push(Box::new(Relu));
        if i % 2 == 1 {
            net.push(Box::new(MaxPool2d::new(2, 2)));
        }
        c_in = c_out;
    }
    net.push(Box::new(Flatten));
    net.push(builder.linear(6, config.fc_in(), config.num_classes));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, StandardBuilder};
    use pecan_autograd::Var;
    use pecan_tensor::Tensor;

    #[test]
    fn vgg_small_shapes_flow_to_logits() {
        let mut b = StandardBuilder::from_seed(5);
        let cfg = VggSmallConfig { num_classes: 10, width_divisor: 32, input_size: 32 };
        let mut net = vgg_small(&mut b, cfg).unwrap();
        let x = Var::constant(Tensor::zeros(&[1, 3, 32, 32]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.value().dims(), &[1, 10]);
    }

    #[test]
    fn widths_scale_with_divisor() {
        let cfg = VggSmallConfig { width_divisor: 4, ..Default::default() };
        assert_eq!(cfg.widths(), [32, 32, 64, 64, 128, 128]);
        let paper = VggSmallConfig::default();
        assert_eq!(paper.widths(), [128, 128, 256, 256, 512, 512]);
        assert_eq!(paper.fc_in(), 512 * 16);
    }

    #[test]
    fn rejects_indivisible_input() {
        let mut b = StandardBuilder::from_seed(5);
        let cfg = VggSmallConfig { input_size: 30, ..Default::default() };
        assert!(vgg_small(&mut b, cfg).is_err());
    }
}

//! The paper's model zoo (§4): every constructor takes a
//! [`crate::LayerBuilder`] so the identical topology can be built with
//! baseline or PECAN layers.

mod convmixer;
mod lenet;
mod resnet;
mod vgg;

pub use convmixer::{convmixer, ConvMixerConfig};
pub use lenet::lenet5_modified;
pub use resnet::{resnet, resnet20, resnet32, BasicBlock};
pub use vgg::{vgg_small, VggSmallConfig};

use crate::{Flatten, LayerBuilder, MaxPool2d, Relu, Sequential};
use pecan_tensor::ShapeError;

/// The modified LeNet-5 of Table A1: 3×3 kernels, two conv+pool stages and
/// three fully-connected layers, for 28×28 single-channel input.
///
/// Layer indices (for per-layer PECAN configs, Table A2):
/// `0` CONV1 (1→8), `1` CONV2 (8→16), `2` FC1 (400→128), `3` FC2 (128→64),
/// `4` FC3 (64→10).
///
/// # Errors
///
/// Never fails with the fixed architecture; the `Result` mirrors the other
/// model constructors.
///
/// # Example
///
/// ```
/// use pecan_nn::{models, Layer, StandardBuilder};
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let mut b = StandardBuilder::from_seed(0);
/// let net = models::lenet5_modified(&mut b)?;
/// assert_eq!(net.len(), 12);
/// # Ok(())
/// # }
/// ```
pub fn lenet5_modified(builder: &mut dyn LayerBuilder) -> Result<Sequential, ShapeError> {
    let mut net = Sequential::new();
    net.push(builder.conv2d(0, 1, 8, 3, 1, 0)); // [8, 26, 26]
    net.push(Box::new(Relu));
    net.push(Box::new(MaxPool2d::new(2, 2))); // [8, 13, 13]
    net.push(builder.conv2d(1, 8, 16, 3, 1, 0)); // [16, 11, 11]
    net.push(Box::new(Relu));
    net.push(Box::new(MaxPool2d::new(2, 2))); // [16, 5, 5]
    net.push(Box::new(Flatten)); // 400
    net.push(builder.linear(2, 400, 128));
    net.push(Box::new(Relu));
    net.push(builder.linear(3, 128, 64));
    net.push(Box::new(Relu));
    net.push(builder.linear(4, 64, 10));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, StandardBuilder};
    use pecan_autograd::Var;
    use pecan_tensor::Tensor;

    #[test]
    fn lenet_produces_ten_logits_on_mnist_shape() {
        let mut b = StandardBuilder::from_seed(3);
        let mut net = lenet5_modified(&mut b).unwrap();
        let x = Var::constant(Tensor::zeros(&[2, 1, 28, 28]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.value().dims(), &[2, 10]);
    }

    #[test]
    fn lenet_has_five_parameterised_layers() {
        let mut b = StandardBuilder::from_seed(3);
        let net = lenet5_modified(&mut b).unwrap();
        // conv (no bias) ×2 → 2 params; linear ×3 → 6 params
        assert_eq!(net.parameters().len(), 8);
    }
}

use crate::{BatchNorm2d, GlobalAvgPool, Layer, LayerBuilder, Relu, Sequential};
use pecan_autograd::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};
use std::any::Any;

/// Option-A ResNet shortcut: stride-2 spatial subsampling plus zero-padded
/// channels, parameter-free (He et al.'s CIFAR configuration — this keeps
/// the op counts at the 40.55M/68.86M the paper reports for ResNet-20/32).
struct ShortcutAOp {
    input_dims: Vec<usize>,
    stride: usize,
    c_out: usize,
}

impl BackwardOp for ShortcutAOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        let (n_b, c_in, h, w) =
            (self.input_dims[0], self.input_dims[1], self.input_dims[2], self.input_dims[3]);
        let (h_o, w_o) = (h / self.stride, w / self.stride);
        let mut dx = Tensor::zeros(&self.input_dims);
        for n in 0..n_b {
            for c in 0..c_in.min(self.c_out) {
                for i in 0..h_o {
                    for j in 0..w_o {
                        let g = grad_out.at(&[n, c, i, j]);
                        let idx = ((n * c_in + c) * h + i * self.stride) * w + j * self.stride;
                        dx.data_mut()[idx] += g;
                    }
                }
            }
        }
        vec![Some(dx)]
    }
    fn name(&self) -> &'static str {
        "shortcut_a"
    }
}

fn shortcut_a(x: &Var, c_out: usize, stride: usize) -> Result<Var, ShapeError> {
    let input = x.value();
    input.shape().expect_rank(4)?;
    let dims = input.dims().to_vec();
    let (n_b, c_in, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    if h % stride != 0 || w % stride != 0 {
        return Err(ShapeError::new(format!(
            "shortcut_a: {h}×{w} not divisible by stride {stride}"
        )));
    }
    let (h_o, w_o) = (h / stride, w / stride);
    let mut value = Tensor::zeros(&[n_b, c_out, h_o, w_o]);
    for n in 0..n_b {
        for c in 0..c_in.min(c_out) {
            for i in 0..h_o {
                for j in 0..w_o {
                    let v = input.at(&[n, c, i * stride, j * stride]);
                    value.set(&[n, c, i, j], v);
                }
            }
        }
    }
    drop(input);
    Ok(Var::from_op(
        value,
        vec![x.clone()],
        Box::new(ShortcutAOp { input_dims: dims, stride, c_out }),
    ))
}

/// A two-convolution residual block (`conv-BN-ReLU-conv-BN` plus shortcut,
/// final ReLU), the repeating unit of ResNet-20/32.
pub struct BasicBlock {
    conv1: Box<dyn Layer>,
    bn1: BatchNorm2d,
    conv2: Box<dyn Layer>,
    bn2: BatchNorm2d,
    stride: usize,
    c_in: usize,
    c_out: usize,
}

impl BasicBlock {
    /// Builds a block whose convolutions come from `builder` with layer
    /// indices `index` and `index + 1`.
    pub fn new(
        builder: &mut dyn LayerBuilder,
        index: usize,
        c_in: usize,
        c_out: usize,
        stride: usize,
    ) -> Self {
        Self {
            conv1: builder.conv2d(index, c_in, c_out, 3, stride, 1),
            bn1: BatchNorm2d::new(c_out),
            conv2: builder.conv2d(index + 1, c_out, c_out, 3, 1, 1),
            bn2: BatchNorm2d::new(c_out),
            stride,
            c_in,
            c_out,
        }
    }

    /// The two convolution layers (for conversion/inspection).
    pub fn convs(&self) -> (&dyn Layer, &dyn Layer) {
        (self.conv1.as_ref(), self.conv2.as_ref())
    }

    /// Mutable access to the two convolution layers.
    pub fn convs_mut(&mut self) -> (&mut Box<dyn Layer>, &mut Box<dyn Layer>) {
        (&mut self.conv1, &mut self.conv2)
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, input: &Var, train: bool) -> Result<Var, ShapeError> {
        let y = self.conv1.forward(input, train)?;
        let y = self.bn1.forward(&y, train)?.relu();
        let y = self.conv2.forward(&y, train)?;
        let y = self.bn2.forward(&y, train)?;
        let shortcut = if self.stride != 1 || self.c_in != self.c_out {
            shortcut_a(input, self.c_out, self.stride)?
        } else {
            input.clone()
        };
        Ok(y.add(&shortcut)?.relu())
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.conv1.parameters();
        p.extend(self.bn1.parameters());
        p.extend(self.conv2.parameters());
        p.extend(self.bn2.parameters());
        p
    }

    fn name(&self) -> &'static str {
        "BasicBlock"
    }

    fn set_epoch(&mut self, epoch: usize, total: usize) {
        self.conv1.set_epoch(epoch, total);
        self.conv2.set_epoch(epoch, total);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// CIFAR-style ResNet with `6n + 2` layers: an input convolution, three
/// stages of `n` [`BasicBlock`]s at widths 16/32/64 (divided by
/// `width_divisor`), global average pooling and a linear classifier.
///
/// Layer indices: conv0 is `0`, block convs follow in forward order, the
/// classifier is last (`6n + 1`).
///
/// # Errors
///
/// Returns [`ShapeError`] only on impossible configurations (zero blocks).
pub fn resnet(
    builder: &mut dyn LayerBuilder,
    blocks_per_stage: usize,
    num_classes: usize,
    width_divisor: usize,
) -> Result<Sequential, ShapeError> {
    if blocks_per_stage == 0 {
        return Err(ShapeError::new("resnet needs at least one block per stage"));
    }
    let d = width_divisor.max(1);
    let widths = [16usize, 32, 64].map(|w| (w / d).max(4));
    let mut net = Sequential::new();
    let mut index = 0;
    net.push(builder.conv2d(index, 3, widths[0], 3, 1, 1));
    index += 1;
    net.push(Box::new(BatchNorm2d::new(widths[0])));
    net.push(Box::new(Relu));
    let mut c_in = widths[0];
    for (stage, &w) in widths.iter().enumerate() {
        for b in 0..blocks_per_stage {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            net.push(Box::new(BasicBlock::new(builder, index, c_in, w, stride)));
            index += 2;
            c_in = w;
        }
    }
    net.push(Box::new(GlobalAvgPool));
    net.push(builder.linear(index, widths[2], num_classes));
    Ok(net)
}

/// ResNet-20 (`n = 3`).
///
/// # Errors
///
/// See [`resnet`].
pub fn resnet20(
    builder: &mut dyn LayerBuilder,
    num_classes: usize,
    width_divisor: usize,
) -> Result<Sequential, ShapeError> {
    resnet(builder, 3, num_classes, width_divisor)
}

/// ResNet-32 (`n = 5`).
///
/// # Errors
///
/// See [`resnet`].
pub fn resnet32(
    builder: &mut dyn LayerBuilder,
    num_classes: usize,
    width_divisor: usize,
) -> Result<Sequential, ShapeError> {
    resnet(builder, 5, num_classes, width_divisor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StandardBuilder;
    use pecan_autograd::Var;

    #[test]
    fn resnet20_forward_shape() {
        let mut b = StandardBuilder::from_seed(1);
        let mut net = resnet20(&mut b, 10, 4).unwrap();
        let x = Var::constant(Tensor::zeros(&[2, 3, 16, 16]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.value().dims(), &[2, 10]);
    }

    #[test]
    fn resnet_has_expected_layer_count() {
        // 6n+2 parameterised layers: 1 + 6n convs + 1 fc
        let mut b = StandardBuilder::from_seed(1);
        let net = resnet(&mut b, 3, 10, 4).unwrap();
        // Sequential: conv, bn, relu, 9 blocks, gap, fc = 14 entries
        assert_eq!(net.len(), 14);
    }

    #[test]
    fn shortcut_a_subsamples_and_pads() {
        let x = Var::parameter(Tensor::from_vec(
            (0..16).map(|v| v as f32).collect(),
            &[1, 1, 4, 4],
        ).unwrap());
        let y = shortcut_a(&x, 2, 2).unwrap();
        assert_eq!(y.value().dims(), &[1, 2, 2, 2]);
        // channel 0 = strided samples, channel 1 = zeros
        assert_eq!(y.value().at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(y.value().at(&[0, 0, 1, 1]), 10.0);
        assert_eq!(y.value().at(&[0, 1, 0, 0]), 0.0);
        // gradient flows only to sampled positions of channel 0
        y.sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(g.at(&[0, 0, 0, 1]), 0.0);
        assert_eq!(g.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn downsampling_block_halves_resolution() {
        let mut b = StandardBuilder::from_seed(2);
        let mut block = BasicBlock::new(&mut b, 0, 4, 8, 2);
        let x = Var::constant(Tensor::zeros(&[1, 4, 8, 8]));
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.value().dims(), &[1, 8, 4, 4]);
        assert_eq!(block.parameters().len(), 2 + 4); // 2 convs + 2 BNs (γ,β)
    }
}

use crate::{BatchNorm2d, GlobalAvgPool, Layer, LayerBuilder, Relu, Sequential};
use pecan_autograd::Var;
use pecan_tensor::ShapeError;
use std::any::Any;

/// Configuration for the modified ConvMixer of Table A4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvMixerConfig {
    /// Hidden width (channel count after patch embedding; paper: 256).
    pub dim: usize,
    /// Number of mixer blocks (paper: 8).
    pub depth: usize,
    /// Spatial kernel of the mixing convolution (paper: 5).
    pub kernel: usize,
    /// Patch-embedding kernel/stride (paper: 4 on 64×64 input).
    pub patch_size: usize,
    /// Number of output classes (200 for Tiny-ImageNet).
    pub num_classes: usize,
}

impl Default for ConvMixerConfig {
    fn default() -> Self {
        Self { dim: 256, depth: 8, kernel: 5, patch_size: 4, num_classes: 200 }
    }
}

/// One modified ConvMixer block: the paper replaces each depthwise +
/// pointwise pair with a single **conventional** `k×k` convolution
/// (Appendix D), wrapped in the usual residual + ReLU + BatchNorm. With
/// `dim = 256`, `k = 5` and 16×16 maps this reproduces the 3.36G baseline
/// MACs of Table A4 exactly.
pub struct MixerBlock {
    conv: Box<dyn Layer>,
    bn: BatchNorm2d,
}

impl MixerBlock {
    fn new(builder: &mut dyn LayerBuilder, index: usize, dim: usize, kernel: usize) -> Self {
        Self {
            conv: builder.conv2d(index, dim, dim, kernel, 1, kernel / 2),
            bn: BatchNorm2d::new(dim),
        }
    }
}

impl Layer for MixerBlock {
    fn forward(&mut self, input: &Var, train: bool) -> Result<Var, ShapeError> {
        let y = self.conv.forward(input, train)?.relu();
        let y = self.bn.forward(&y, train)?;
        y.add(input) // residual
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.conv.parameters();
        p.extend(self.bn.parameters());
        p
    }

    fn name(&self) -> &'static str {
        "MixerBlock"
    }

    fn set_epoch(&mut self, epoch: usize, total: usize) {
        self.conv.set_epoch(epoch, total);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The modified ConvMixer of Appendix D: patch-embedding convolution
/// (index `0`, kept **uncompressed** in the paper), `depth` mixer blocks
/// each holding one conventional `k×k` convolution (indices `1..=depth`),
/// global average pooling and a classifier (index `depth + 1`, also kept
/// uncompressed).
///
/// # Errors
///
/// Returns [`ShapeError`] on zero-sized configuration.
pub fn convmixer(
    builder: &mut dyn LayerBuilder,
    config: ConvMixerConfig,
) -> Result<Sequential, ShapeError> {
    if config.dim == 0 || config.depth == 0 || config.kernel == 0 || config.patch_size == 0 {
        return Err(ShapeError::new("convmixer config extents must be non-zero"));
    }
    let mut net = Sequential::new();
    let mut index = 0;
    net.push(builder.conv2d(index, 3, config.dim, config.patch_size, config.patch_size, 0));
    index += 1;
    net.push(Box::new(Relu));
    net.push(Box::new(BatchNorm2d::new(config.dim)));
    for _ in 0..config.depth {
        net.push(Box::new(MixerBlock::new(builder, index, config.dim, config.kernel)));
        index += 1;
    }
    net.push(Box::new(GlobalAvgPool));
    net.push(builder.linear(index, config.dim, config.num_classes));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StandardBuilder;
    use pecan_tensor::Tensor;

    #[test]
    fn convmixer_forward_shape() {
        let mut b = StandardBuilder::from_seed(4);
        let cfg = ConvMixerConfig { dim: 8, depth: 2, kernel: 5, patch_size: 4, num_classes: 7 };
        let mut net = convmixer(&mut b, cfg).unwrap();
        let x = Var::constant(Tensor::zeros(&[1, 3, 16, 16]));
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.value().dims(), &[1, 7]);
    }

    #[test]
    fn convmixer_rejects_zero_config() {
        let mut b = StandardBuilder::from_seed(4);
        let cfg = ConvMixerConfig { dim: 0, ..Default::default() };
        assert!(convmixer(&mut b, cfg).is_err());
    }

    #[test]
    fn depth_scales_block_count() {
        let mut b = StandardBuilder::from_seed(4);
        let cfg = ConvMixerConfig { dim: 8, depth: 3, kernel: 3, patch_size: 2, num_classes: 4 };
        let net = convmixer(&mut b, cfg).unwrap();
        // conv, relu, bn, 3 blocks, gap, fc
        assert_eq!(net.len(), 8);
    }
}

use crate::Layer;
use pecan_autograd::{cross_entropy_logits, Optimizer, Var};
use pecan_tensor::{ShapeError, Tensor};

/// One training batch: images `[N, C, H, W]` and their integer labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input images, `[N, C, H, W]`.
    pub images: Tensor,
    /// Class labels, one per image.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Creates a batch after validating that labels match the batch axis.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `images` is not rank 4 or the label count
    /// differs from `N`.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Result<Self, ShapeError> {
        images.shape().expect_rank(4)?;
        if images.dims()[0] != labels.len() {
            return Err(ShapeError::new(format!(
                "batch of {} images with {} labels",
                images.dims()[0],
                labels.len()
            )));
        }
        Ok(Self { images, labels })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Loss/accuracy summary of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy over the epoch.
    pub loss: f32,
    /// Fraction of correctly classified training examples.
    pub accuracy: f32,
}

/// Runs one epoch of mini-batch training: forward, cross-entropy, backward,
/// optimizer step per batch.
///
/// # Errors
///
/// Returns [`ShapeError`] when the model rejects a batch shape.
pub fn train_epoch(
    model: &mut dyn Layer,
    optimizer: &mut dyn Optimizer,
    batches: &[Batch],
) -> Result<EpochStats, ShapeError> {
    let mut total_loss = 0.0;
    let mut correct = 0usize;
    let mut seen = 0usize;
    for batch in batches {
        optimizer.zero_grad();
        let x = Var::constant(batch.images.clone());
        let logits = model.forward(&x, true)?;
        let loss = cross_entropy_logits(&logits, &batch.labels)?;
        total_loss += loss.value().data()[0] * batch.len() as f32;
        correct += count_correct(&logits.value(), &batch.labels);
        seen += batch.len();
        loss.backward();
        optimizer.step();
    }
    Ok(EpochStats {
        loss: if seen == 0 { 0.0 } else { total_loss / seen as f32 },
        accuracy: if seen == 0 { 0.0 } else { correct as f32 / seen as f32 },
    })
}

/// Classification accuracy of `model` over `batches` (inference mode).
///
/// # Errors
///
/// Returns [`ShapeError`] when the model rejects a batch shape.
pub fn accuracy(model: &mut dyn Layer, batches: &[Batch]) -> Result<f32, ShapeError> {
    let mut correct = 0usize;
    let mut seen = 0usize;
    for batch in batches {
        let x = Var::constant(batch.images.clone());
        let logits = model.forward(&x, false)?;
        correct += count_correct(&logits.value(), &batch.labels);
        seen += batch.len();
    }
    Ok(if seen == 0 { 0.0 } else { correct as f32 / seen as f32 })
}

fn count_correct(logits: &Tensor, labels: &[usize]) -> usize {
    let mut correct = 0;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Flatten, LayerBuilder, Sequential, StandardBuilder};
    use pecan_autograd::Adam;

    #[test]
    fn batch_validates_shapes() {
        assert!(Batch::new(Tensor::zeros(&[2, 1, 4, 4]), vec![0, 1]).is_ok());
        assert!(Batch::new(Tensor::zeros(&[2, 1, 4, 4]), vec![0]).is_err());
        assert!(Batch::new(Tensor::zeros(&[2, 4]), vec![0, 1]).is_err());
    }

    #[test]
    fn training_separable_blobs_reaches_high_accuracy() {
        // two trivially separable classes encoded in pixel intensity
        let mut batches = Vec::new();
        for b in 0..4 {
            let mut images = Tensor::zeros(&[8, 1, 4, 4]);
            let mut labels = Vec::new();
            for i in 0..8 {
                let class = (b + i) % 2;
                let v = if class == 0 { -1.0 } else { 1.0 };
                for px in 0..16 {
                    images.data_mut()[i * 16 + px] = v + (px as f32) * 1e-3;
                }
                labels.push(class);
            }
            batches.push(Batch::new(images, labels).unwrap());
        }
        let mut builder = StandardBuilder::from_seed(11);
        let mut net = Sequential::new();
        net.push(Box::new(Flatten));
        net.push(builder.linear(0, 16, 2));
        let mut opt = Adam::new(net.parameters(), 0.05);
        let mut last = EpochStats { loss: f32::INFINITY, accuracy: 0.0 };
        for _ in 0..20 {
            last = train_epoch(&mut net, &mut opt, &batches).unwrap();
        }
        assert!(last.accuracy > 0.95, "train accuracy {}", last.accuracy);
        let acc = accuracy(&mut net, &batches).unwrap();
        assert!(acc > 0.95, "eval accuracy {acc}");
    }

    #[test]
    fn empty_batch_list_reports_zero() {
        let mut builder = StandardBuilder::from_seed(0);
        let mut net = Sequential::new();
        net.push(Box::new(Flatten));
        net.push(builder.linear(0, 4, 2));
        let mut opt = Adam::new(net.parameters(), 0.01);
        let stats = train_epoch(&mut net, &mut opt, &[]).unwrap();
        assert_eq!(stats.loss, 0.0);
        assert_eq!(accuracy(&mut net, &[]).unwrap(), 0.0);
    }
}

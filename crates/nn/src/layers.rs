use crate::Layer;
use pecan_autograd::Var;
use pecan_tensor::{Conv2dGeometry, ShapeError, Tensor};
use rand::Rng;
use std::any::Any;

/// Standard 2-D convolution with flattened filter matrix `[cout, cin·k²]`
/// (the `F` of Fig. 1(b)) and optional bias.
#[derive(Debug)]
pub struct Conv2d {
    weight: Var,
    bias: Option<Var>,
    c_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a He-initialised convolution.
    pub fn new<R: Rng>(
        rng: &mut R,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
    ) -> Self {
        let fan_in = c_in * kernel * kernel;
        let weight = Var::parameter(pecan_tensor::he_normal(rng, &[c_out, fan_in], fan_in));
        let bias = bias.then(|| Var::parameter(Tensor::zeros(&[c_out])));
        Self { c_in, c_out, kernel, stride, padding, weight, bias }
    }

    /// Creates a convolution from an existing flattened weight matrix
    /// (used when converting trained models).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `weight` is not `[c_out, c_in·k²]`.
    pub fn from_weight(
        weight: Tensor,
        bias: Option<Tensor>,
        c_in: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, ShapeError> {
        weight.shape().expect_rank(2)?;
        let c_out = weight.dims()[0];
        if weight.dims()[1] != c_in * kernel * kernel {
            return Err(ShapeError::new(format!(
                "conv weight {:?} does not match cin {c_in}, k {kernel}",
                weight.dims()
            )));
        }
        Ok(Self {
            c_in,
            c_out,
            kernel,
            stride,
            padding,
            weight: Var::parameter(weight),
            bias: bias.map(Var::parameter),
        })
    }

    /// The flattened filter matrix `[cout, cin·k²]`.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The bias vector, if present.
    pub fn bias(&self) -> Option<&Var> {
        self.bias.as_ref()
    }

    /// `(c_in, c_out, kernel, stride, padding)`.
    pub fn config(&self) -> (usize, usize, usize, usize, usize) {
        (self.c_in, self.c_out, self.kernel, self.stride, self.padding)
    }

    /// The geometry this layer produces for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the kernel does not fit.
    pub fn geometry(&self, h: usize, w: usize) -> Result<Conv2dGeometry, ShapeError> {
        Conv2dGeometry::new(self.c_in, h, w, self.kernel, self.stride, self.padding)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        let dims = input.value().dims().to_vec();
        if dims.len() != 4 || dims[1] != self.c_in {
            return Err(ShapeError::new(format!(
                "Conv2d({}, {}) got input {:?}",
                self.c_in, self.c_out, dims
            )));
        }
        let geom = self.geometry(dims[2], dims[3])?;
        input.conv2d(&self.weight, self.bias.as_ref(), &geom)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Fully-connected layer `y = x·Wᵀ + b`.
#[derive(Debug)]
pub struct Linear {
    weight: Var,
    bias: Var,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a Xavier-initialised linear layer.
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        let weight = Var::parameter(pecan_tensor::xavier_uniform(
            rng,
            &[out_features, in_features],
            in_features,
            out_features,
        ));
        let bias = Var::parameter(Tensor::zeros(&[out_features]));
        Self { weight, bias, in_features, out_features }
    }

    /// Creates a linear layer from existing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on inconsistent shapes.
    pub fn from_weight(weight: Tensor, bias: Tensor) -> Result<Self, ShapeError> {
        weight.shape().expect_rank(2)?;
        bias.shape().expect_rank(1)?;
        let (out_features, in_features) = (weight.dims()[0], weight.dims()[1]);
        if bias.len() != out_features {
            return Err(ShapeError::new("linear bias does not match weight rows"));
        }
        Ok(Self {
            weight: Var::parameter(weight),
            bias: Var::parameter(bias),
            in_features,
            out_features,
        })
    }

    /// The weight matrix `[out, in]`.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Var {
        &self.bias
    }

    /// `(in_features, out_features)`.
    pub fn features(&self) -> (usize, usize) {
        (self.in_features, self.out_features)
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        input.linear(&self.weight, &self.bias)
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// 2-D batch normalisation with running statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` with momentum 0.1.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Var::parameter(Tensor::ones(&[channels])),
            beta: Var::parameter(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    /// Current running mean (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Current running variance (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Var, train: bool) -> Result<Var, ShapeError> {
        if train {
            let (out, stats) = input.batch_norm2d_train(&self.gamma, &self.beta, self.eps)?;
            for c in 0..self.channels {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * stats.mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * stats.var[c];
            }
            Ok(out)
        } else {
            input.batch_norm2d_eval(
                &self.gamma,
                &self.beta,
                &self.running_mean,
                &self.running_var,
                self.eps,
            )
        }
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu;

impl Layer for Relu {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        Ok(input.relu())
    }
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "ReLU"
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Max pooling with a square window.
#[derive(Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer with `kernel` window and `stride` step.
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self { kernel, stride }
    }

    /// Window size (model compilers replicate the layer from this).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Step between windows.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        input.max_pool2d(self.kernel, self.stride)
    }
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Global average pooling `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        input.global_avg_pool()
    }
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Flattens `[N, ...]` to `[N, rest]` for the conv → FC transition.
#[derive(Debug, Default)]
pub struct Flatten;

impl Layer for Flatten {
    fn forward(&mut self, input: &Var, _train: bool) -> Result<Var, ShapeError> {
        input.flatten_batch()
    }
    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
    fn name(&self) -> &'static str {
        "Flatten"
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An ordered pipeline of layers.
///
/// # Example
///
/// ```
/// use pecan_nn::{Layer, Relu, Sequential};
/// use pecan_autograd::Var;
/// use pecan_tensor::Tensor;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let mut net = Sequential::new();
/// net.push(Box::new(Relu));
/// let y = net.forward(&Var::constant(Tensor::from_slice(&[-1.0, 2.0])), false)?;
/// assert_eq!(y.value().data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow of the contained layers (model conversion walks this).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable borrow of the contained layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Var, train: bool) -> Result<Var, ShapeError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn set_epoch(&mut self, epoch: usize, total: usize) {
        for layer in &mut self.layers {
            layer.set_epoch(epoch, total);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv2d_forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, 3, 8, 3, 1, 1, true);
        let x = Var::constant(Tensor::zeros(&[2, 3, 16, 16]));
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.value().dims(), &[2, 8, 16, 16]);
        assert_eq!(conv.parameters().len(), 2);
    }

    #[test]
    fn conv2d_rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, 3, 8, 3, 1, 1, false);
        let x = Var::constant(Tensor::zeros(&[2, 4, 16, 16]));
        assert!(conv.forward(&x, true).is_err());
    }

    #[test]
    fn linear_forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut fc = Linear::new(&mut rng, 10, 4);
        let x = Var::constant(Tensor::zeros(&[3, 10]));
        let y = fc.forward(&x, true).unwrap();
        assert_eq!(y.value().dims(), &[3, 4]);
        assert_eq!(fc.features(), (10, 4));
    }

    #[test]
    fn batchnorm_tracks_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        let x = Var::constant(Tensor::full(&[4, 2, 3, 3], 10.0));
        let _ = bn.forward(&x, true).unwrap();
        // running mean moved toward 10 from 0 with momentum 0.1
        assert!((bn.running_mean()[0] - 1.0).abs() < 1e-5);
        // eval mode uses running stats, no panic with batch of 1
        let x1 = Var::constant(Tensor::full(&[1, 2, 3, 3], 10.0));
        let y = bn.forward(&x1, false).unwrap();
        assert_eq!(y.value().dims(), &[1, 2, 3, 3]);
    }

    #[test]
    fn sequential_composes_and_collects_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new();
        net.push(Box::new(Conv2d::new(&mut rng, 1, 2, 3, 1, 1, true)));
        net.push(Box::new(Relu));
        net.push(Box::new(MaxPool2d::new(2, 2)));
        net.push(Box::new(Flatten));
        net.push(Box::new(Linear::new(&mut rng, 2 * 2 * 2, 5)));
        let x = Var::constant(Tensor::zeros(&[1, 1, 4, 4]));
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.value().dims(), &[1, 5]);
        assert_eq!(net.parameters().len(), 4); // conv w+b, fc w+b
        assert_eq!(net.len(), 5);
    }

    #[test]
    fn global_avg_pool_layer() {
        let mut gap = GlobalAvgPool;
        let x = Var::constant(Tensor::ones(&[2, 3, 4, 4]));
        let y = gap.forward(&x, false).unwrap();
        assert_eq!(y.value().dims(), &[2, 3]);
        assert!(y.value().data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }
}

//! Property-based tests for the PQ assignment machinery.

use pecan_autograd::Var;
use pecan_pq::{
    assign_distance_ste, dot_scores, hard_assign, l1_scores, one_hot_matrix, sign_approx,
    soft_assign_angle,
};
use pecan_tensor::Tensor;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).expect("sized by construction"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hard_assignment_minimizes_l1_distance(c in matrix(4, 6), x in matrix(4, 5)) {
        let scores = l1_scores(&c, &x).unwrap();
        let idx = hard_assign(&scores).unwrap();
        for (i, &winner) in idx.iter().enumerate() {
            // the winning prototype's distance is <= every other prototype's
            let win_dist = -scores.get2(winner, i);
            for m in 0..6 {
                prop_assert!(win_dist <= -scores.get2(m, i) + 1e-4);
            }
        }
    }

    #[test]
    fn l1_scores_are_nonpositive_and_zero_iff_equal(c in matrix(3, 4)) {
        // use the codebook's own columns as features: the diagonal must be 0
        let scores = l1_scores(&c, &c).unwrap();
        for m in 0..4 {
            for i in 0..4 {
                prop_assert!(scores.get2(m, i) <= 1e-6);
            }
            prop_assert!(scores.get2(m, m).abs() < 1e-5);
        }
    }

    #[test]
    fn matching_own_prototype_selects_itself(c in matrix(5, 3)) {
        // feeding prototype m as the feature column must select m (unless
        // two prototypes coincide, which the strategy makes measure-zero)
        let scores = l1_scores(&c, &c).unwrap();
        let idx = hard_assign(&scores).unwrap();
        for (i, &k) in idx.iter().enumerate() {
            // allow ties only when the tied prototypes are identical
            if k != i {
                let mut same = true;
                for r in 0..5 {
                    if (c.get2(r, k) - c.get2(r, i)).abs() > 1e-6 {
                        same = false;
                    }
                }
                prop_assert!(same, "column {i} matched different prototype {k}");
            }
        }
    }

    #[test]
    fn one_hot_columns_sum_to_one(idx in proptest::collection::vec(0usize..7, 1..20)) {
        let m = one_hot_matrix(&idx, 7).unwrap();
        let sums = m.sum_columns().unwrap();
        prop_assert!(sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-6));
    }

    #[test]
    fn soft_angle_assignment_is_stochastic_matrix(c in matrix(4, 5), x in matrix(4, 3)) {
        let k = soft_assign_angle(&Var::constant(c), &Var::constant(x), 1.0).unwrap();
        let v = k.to_tensor();
        for i in 0..3 {
            let z: f32 = (0..5).map(|m| v.get2(m, i)).sum();
            prop_assert!((z - 1.0).abs() < 1e-4);
            for m in 0..5 {
                prop_assert!(v.get2(m, i) >= 0.0);
            }
        }
    }

    #[test]
    fn ste_output_is_exactly_one_hot(c in matrix(3, 4), x in matrix(3, 6)) {
        let k = assign_distance_ste(&Var::parameter(c), &Var::constant(x), 0.5, 2.0).unwrap();
        let v = k.to_tensor();
        for i in 0..6 {
            let col: Vec<f32> = (0..4).map(|m| v.get2(m, i)).collect();
            let ones = col.iter().filter(|&&e| e == 1.0).count();
            let zeros = col.iter().filter(|&&e| e == 0.0).count();
            prop_assert_eq!(ones, 1);
            prop_assert_eq!(zeros, 3);
        }
    }

    #[test]
    fn sign_approx_is_odd_and_bounded(x in -10.0f32..10.0, a in 0.5f32..60.0) {
        let y = sign_approx(x, a);
        prop_assert!(y.abs() <= 1.0);
        prop_assert!((sign_approx(-x, a) + y).abs() < 1e-5);
        // monotone in x
        prop_assert!(sign_approx(x + 0.1, a) >= y - 1e-6);
    }

    #[test]
    fn dot_and_l1_rankings_agree_for_unit_norm_prototypes(x in matrix(3, 2)) {
        // For prototypes forming an orthonormal-ish basis, the top dot-product
        // prototype for a feature equal to one of them matches the top L1
        // prototype — sanity that the two similarity spaces are consistent.
        let c = Tensor::eye(3);
        let scores_dot = dot_scores(&c, &c).unwrap();
        let scores_l1 = l1_scores(&c, &c).unwrap();
        let _ = x;
        prop_assert_eq!(
            hard_assign(&scores_dot).unwrap(),
            hard_assign(&scores_l1).unwrap()
        );
    }
}

use pecan_tensor::{ShapeError, Tensor};
use rand::Rng;

/// Initialises a `[d, p]` codebook by running Lloyd's k-means on the columns
/// of `samples` (`[d, n]`).
///
/// The paper trains prototypes from random initialisation; k-means over a
/// batch of real im2col columns is the classical PQ initialisation (Jégou et
/// al.) and converges noticeably faster in the uni-optimization setting, so
/// we expose it as an opt-in.
///
/// # Errors
///
/// Returns [`ShapeError`] when `samples` is not rank 2, holds fewer columns
/// than `p`, or `p == 0`.
///
/// # Example
///
/// ```
/// use pecan_tensor::Tensor;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // two obvious clusters on a line
/// let samples = Tensor::from_vec(vec![0.0, 0.1, 5.0, 5.1], &[1, 4])?;
/// let cb = pecan_pq::kmeans_codebook(&mut rng, &samples, 2, 10)?;
/// let mut centers: Vec<f32> = cb.data().to_vec();
/// centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// assert!((centers[0] - 0.05).abs() < 0.01 && (centers[1] - 5.05).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn kmeans_codebook<R: Rng>(
    rng: &mut R,
    samples: &Tensor,
    p: usize,
    iterations: usize,
) -> Result<Tensor, ShapeError> {
    samples.shape().expect_rank(2)?;
    let (d, n) = (samples.dims()[0], samples.dims()[1]);
    if p == 0 {
        return Err(ShapeError::new("k-means needs at least one centroid"));
    }
    if n < p {
        return Err(ShapeError::new(format!(
            "k-means needs at least {p} samples, got {n}"
        )));
    }

    // Initialise with p distinct random columns.
    let mut chosen: Vec<usize> = Vec::with_capacity(p);
    while chosen.len() < p {
        let c = rng.gen_range(0..n);
        if !chosen.contains(&c) {
            chosen.push(c);
        }
    }
    let mut centroids = Tensor::zeros(&[d, p]);
    for (m, &col) in chosen.iter().enumerate() {
        for k in 0..d {
            centroids.set2(k, m, samples.get2(k, col));
        }
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..iterations {
        // Assignment step (L2).
        for i in 0..n {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for m in 0..p {
                let mut dist = 0.0;
                for k in 0..d {
                    let diff = samples.get2(k, i) - centroids.get2(k, m);
                    dist += diff * diff;
                }
                if dist < best_d {
                    best_d = dist;
                    best = m;
                }
            }
            assignment[i] = best;
        }
        // Update step.
        let mut sums = vec![0.0f32; d * p];
        let mut counts = vec![0usize; p];
        for i in 0..n {
            let m = assignment[i];
            counts[m] += 1;
            for k in 0..d {
                sums[k * p + m] += samples.get2(k, i);
            }
        }
        for m in 0..p {
            if counts[m] == 0 {
                // Re-seed empty clusters from a random sample.
                let col = rng.gen_range(0..n);
                for k in 0..d {
                    centroids.set2(k, m, samples.get2(k, col));
                }
            } else {
                for k in 0..d {
                    centroids.set2(k, m, sums[k * p + m] / counts[m] as f32);
                }
            }
        }
    }
    Ok(centroids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_well_separated_clusters() {
        let mut rng = StdRng::seed_from_u64(7);
        // 3 clusters in 2-D around (0,0), (10,0), (0,10)
        let mut data = Vec::new();
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let n_per = 20;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &(cx, cy) in &centers {
            for i in 0..n_per {
                xs.push(cx + (i as f32 % 5.0) * 0.01);
                ys.push(cy + (i as f32 % 7.0) * 0.01);
            }
        }
        data.extend(xs);
        data.extend(ys);
        let samples = Tensor::from_vec(data, &[2, 3 * n_per]).unwrap();
        let cb = kmeans_codebook(&mut rng, &samples, 3, 25).unwrap();
        // every true center should be within 0.1 of some centroid
        for &(cx, cy) in &centers {
            let mut best = f32::INFINITY;
            for m in 0..3 {
                let dx = cb.get2(0, m) - cx;
                let dy = cb.get2(1, m) - cy;
                best = best.min((dx * dx + dy * dy).sqrt());
            }
            assert!(best < 0.1, "center ({cx},{cy}) not recovered: {best}");
        }
    }

    #[test]
    fn validates_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Tensor::zeros(&[2, 3]);
        assert!(kmeans_codebook(&mut rng, &s, 0, 5).is_err());
        assert!(kmeans_codebook(&mut rng, &s, 4, 5).is_err());
        assert!(kmeans_codebook(&mut rng, &Tensor::zeros(&[4]), 2, 5).is_err());
    }

    #[test]
    fn centroid_count_matches_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = Tensor::from_vec((0..40).map(|v| v as f32).collect(), &[4, 10]).unwrap();
        let cb = kmeans_codebook(&mut rng, &s, 5, 8).unwrap();
        assert_eq!(cb.dims(), &[4, 5]);
    }
}

use pecan_autograd::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

/// The epoch-annealed slope `a = exp(4·e/E)` of Eq. (6).
///
/// Early in training (`e/E → 0`) the slope is ≈ 1 and the surrogate
/// gradient `tanh(a·x)` is smooth; by the final epoch (`a = e⁴ ≈ 54.6`) it
/// is close to the true `sign` function.
///
/// # Example
///
/// ```
/// let early = pecan_pq::anneal_slope(0, 300);
/// let late = pecan_pq::anneal_slope(299, 300);
/// assert!(early < 1.1 && late > 50.0);
/// ```
pub fn anneal_slope(epoch: usize, total_epochs: usize) -> f32 {
    let frac = if total_epochs == 0 {
        1.0
    } else {
        epoch as f32 / total_epochs as f32
    };
    (4.0 * frac).exp()
}

/// Smooth surrogate for `sign(x)`: `tanh(a·x)` (right-hand side of Eq. 6).
pub fn sign_approx(x: f32, slope: f32) -> f32 {
    (slope * x).tanh()
}

/// Samples `tanh(exp(4·frac)·x)` over `xs` for each training-progress
/// fraction in `fracs` — exactly the families of curves plotted in Fig. 3.
pub fn sign_approx_series(fracs: &[f32], xs: &[f32]) -> Vec<Vec<f32>> {
    fracs
        .iter()
        .map(|&f| {
            let a = (4.0 * f).exp();
            xs.iter().map(|&x| sign_approx(x, a)).collect()
        })
        .collect()
}

struct StraightThroughOp;

impl BackwardOp for StraightThroughOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        vec![Some(grad_out.clone())]
    }
    fn name(&self) -> &'static str {
        "straight_through"
    }
}

/// Eq. (5): forwards the discrete value `hard` while letting gradients flow
/// into the relaxed `soft` node unchanged —
/// `K̃(τ≠0) − sg(K̃(τ≠0) − K̃(τ=0))`.
///
/// # Errors
///
/// Returns [`ShapeError`] when `hard`'s shape differs from `soft`'s.
///
/// # Example
///
/// ```
/// use pecan_autograd::Var;
/// use pecan_pq::straight_through;
/// use pecan_tensor::Tensor;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// let soft = Var::parameter(Tensor::from_slice(&[0.3, 0.7]));
/// let hard = Tensor::from_slice(&[0.0, 1.0]);
/// let y = straight_through(&soft, hard)?;
/// assert_eq!(y.value().data(), &[0.0, 1.0]); // forward: hard
/// y.backward();
/// assert_eq!(soft.grad().expect("grad").data(), &[1.0, 1.0]); // backward: identity
/// # Ok(())
/// # }
/// ```
pub fn straight_through(soft: &Var, hard: Tensor) -> Result<Var, ShapeError> {
    if soft.value().dims() != hard.dims() {
        return Err(ShapeError::new(format!(
            "straight-through shapes differ: soft {:?} vs hard {:?}",
            soft.value().dims(),
            hard.dims()
        )));
    }
    Ok(Var::from_op(hard, vec![soft.clone()], Box::new(StraightThroughOp)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_grows_exponentially_with_progress() {
        assert!((anneal_slope(0, 100) - 1.0).abs() < 0.05);
        let mid = anneal_slope(50, 100);
        assert!((mid - (2.0f32).exp()).abs() < 0.1);
        assert!(anneal_slope(100, 100) > 54.0);
        // degenerate schedule still returns a finite slope
        assert!(anneal_slope(5, 0).is_finite());
    }

    #[test]
    fn sign_approx_limits() {
        // steep slope ≈ sign
        assert!((sign_approx(0.5, 100.0) - 1.0).abs() < 1e-4);
        assert!((sign_approx(-0.5, 100.0) + 1.0).abs() < 1e-4);
        assert_eq!(sign_approx(0.0, 100.0), 0.0);
        // shallow slope is smooth: well below saturation
        assert!(sign_approx(0.5, 1.0) < 0.5);
    }

    #[test]
    fn series_has_one_row_per_fraction() {
        let xs: Vec<f32> = (-10..=10).map(|i| i as f32 / 10.0).collect();
        let series = sign_approx_series(&[0.02, 0.25, 0.5, 0.75, 1.0], &xs);
        assert_eq!(series.len(), 5);
        assert!(series.iter().all(|row| row.len() == xs.len()));
        // later fractions are steeper at the same x > 0
        let x_idx = 13; // x = 0.3
        for w in series.windows(2) {
            assert!(w[0][x_idx] <= w[1][x_idx] + 1e-6);
        }
    }

    #[test]
    fn straight_through_rejects_mismatched_shapes() {
        let soft = Var::parameter(Tensor::zeros(&[2, 2]));
        assert!(straight_through(&soft, Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn straight_through_composes_with_downstream_ops() {
        // gradient of sum(hard ⊙ w) flows to soft as w
        let soft = Var::parameter(Tensor::from_slice(&[0.1, 0.9]));
        let hard = Tensor::from_slice(&[0.0, 1.0]);
        let w = Var::constant(Tensor::from_slice(&[3.0, 5.0]));
        let y = straight_through(&soft, hard).unwrap();
        y.mul(&w).unwrap().sum_all().backward();
        assert_eq!(soft.grad().unwrap().data(), &[3.0, 5.0]);
    }
}

use crate::{sign_approx, straight_through};
use pecan_autograd::{BackwardOp, Var};
use pecan_tensor::{ShapeError, Tensor};

/// Angle similarity scores `C(j)ᵀ·X(j)` between every prototype (column of
/// `codebook`, `[d, p]`) and every feature sub-vector (column of `x`,
/// `[d, cols]`), producing `[p, cols]` — the attention logits of Eq. (2).
///
/// # Errors
///
/// Returns [`ShapeError`] on rank or dimension mismatch.
pub fn dot_scores(codebook: &Tensor, x: &Tensor) -> Result<Tensor, ShapeError> {
    codebook.matmul_tn(x)
}

/// Distance similarity scores `−‖X(j)ᵢ − C(j)ₘ‖₁` for every prototype and
/// sub-vector, producing `[p, cols]` — the template-matching metric of
/// Eq. (3). Involves only subtractions and absolute values.
///
/// # Errors
///
/// Returns [`ShapeError`] on rank or dimension mismatch.
pub fn l1_scores(codebook: &Tensor, x: &Tensor) -> Result<Tensor, ShapeError> {
    codebook.shape().expect_rank(2)?;
    x.shape().expect_rank(2)?;
    let (d, p) = (codebook.dims()[0], codebook.dims()[1]);
    let (d2, cols) = (x.dims()[0], x.dims()[1]);
    if d != d2 {
        return Err(ShapeError::new(format!(
            "l1_scores: codebook dim {d} vs feature dim {d2}"
        )));
    }
    let mut scores = Tensor::zeros(&[p, cols]);
    for m in 0..p {
        for i in 0..cols {
            let mut dist = 0.0;
            for k in 0..d {
                dist += (x.get2(k, i) - codebook.get2(k, m)).abs();
            }
            scores.set2(m, i, -dist);
        }
    }
    Ok(scores)
}

/// Hard assignment: per column of `scores` `[p, cols]`, the index of the
/// best-scoring prototype (`argmax` of Eq. 3).
///
/// # Errors
///
/// Returns [`ShapeError`] if `scores` is not rank 2.
pub fn hard_assign(scores: &Tensor) -> Result<Vec<usize>, ShapeError> {
    scores.argmax_per_column()
}

/// Builds the one-hot assignment matrix `[p, cols]` from per-column indices.
///
/// # Errors
///
/// Returns [`ShapeError`] if any index is `>= p`.
pub fn one_hot_matrix(indices: &[usize], p: usize) -> Result<Tensor, ShapeError> {
    if let Some(&bad) = indices.iter().find(|&&k| k >= p) {
        return Err(ShapeError::new(format!(
            "one-hot index {bad} out of range for {p} prototypes"
        )));
    }
    let mut m = Tensor::zeros(&[p, indices.len()]);
    for (i, &k) in indices.iter().enumerate() {
        m.set2(k, i, 1.0);
    }
    Ok(m)
}

/// PECAN-A soft assignment (Eq. 2): `K(j) = softmax(C(j)ᵀ·X(j) / τ)` as a
/// differentiable graph node. Gradients flow into both the codebook and the
/// features through the dot product.
///
/// # Errors
///
/// Returns [`ShapeError`] on dimension mismatch or non-positive `tau`.
pub fn soft_assign_angle(codebook: &Var, x: &Var, tau: f32) -> Result<Var, ShapeError> {
    codebook.transpose2()?.matmul(x)?.softmax_columns(tau)
}

struct L1ScoresOp {
    codebook: Tensor, // [d, p]
    x: Tensor,        // [d, cols]
    slope: f32,
}

impl BackwardOp for L1ScoresOp {
    fn backward(&self, grad_out: &Tensor) -> Vec<Option<Tensor>> {
        // score[m, i] = −Σ_k |x[k, i] − c[k, m]|
        // ∂score/∂c[k, m] =  sgn(x − c) ≈ tanh(a·(x − c))   (Eq. 6)
        // ∂score/∂x[k, i] = −sgn(x − c) ≈ −tanh(a·(x − c))
        let (d, p) = (self.codebook.dims()[0], self.codebook.dims()[1]);
        let cols = self.x.dims()[1];
        let mut dc = Tensor::zeros(&[d, p]);
        let mut dx = Tensor::zeros(&[d, cols]);
        for m in 0..p {
            for i in 0..cols {
                let g = grad_out.get2(m, i);
                if g == 0.0 {
                    continue;
                }
                for k in 0..d {
                    let s = sign_approx(self.x.get2(k, i) - self.codebook.get2(k, m), self.slope);
                    dc.set2(k, m, dc.get2(k, m) + g * s);
                    dx.set2(k, i, dx.get2(k, i) - g * s);
                }
            }
        }
        vec![Some(dc), Some(dx)]
    }
    fn name(&self) -> &'static str {
        "l1_scores"
    }
}

/// Differentiable L1 score node (PECAN-D forward distances) whose backward
/// pass uses the epoch-annealed `tanh` surrogate of Eq. (6) with the given
/// `slope` (`a = exp(4·e/E)`, see [`crate::anneal_slope`]).
///
/// # Errors
///
/// Returns [`ShapeError`] on dimension mismatch.
pub fn l1_scores_var(codebook: &Var, x: &Var, slope: f32) -> Result<Var, ShapeError> {
    let c_t = codebook.to_tensor();
    let x_t = x.to_tensor();
    let value = l1_scores(&c_t, &x_t)?;
    Ok(Var::from_op(
        value,
        vec![codebook.clone(), x.clone()],
        Box::new(L1ScoresOp { codebook: c_t, x: x_t, slope }),
    ))
}

/// PECAN-D relaxed assignment (Eq. 4): `softmax(−‖X−C‖₁ / τ)` — the
/// Laplacian-kernel proportion the paper trains through.
///
/// # Errors
///
/// Returns [`ShapeError`] on dimension mismatch or non-positive `tau`.
pub fn soft_assign_distance(
    codebook: &Var,
    x: &Var,
    tau: f32,
    slope: f32,
) -> Result<Var, ShapeError> {
    l1_scores_var(codebook, x, slope)?.softmax_columns(tau)
}

/// The full PECAN-D assignment of Eq. (3)–(5): **forward** uses the hard
/// one-hot argmax; **backward** flows through the τ-relaxed softmax via the
/// straight-through estimator, with the L1 sign gradient annealed by
/// `slope`.
///
/// # Errors
///
/// Returns [`ShapeError`] on dimension mismatch or non-positive `tau`.
///
/// # Example
///
/// ```
/// use pecan_autograd::Var;
/// use pecan_pq::assign_distance_ste;
/// use pecan_tensor::Tensor;
///
/// # fn main() -> Result<(), pecan_tensor::ShapeError> {
/// // one feature column equal to prototype 1
/// let c = Var::parameter(Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[2, 2])?);
/// let x = Var::constant(Tensor::from_vec(vec![1.0, 1.0], &[2, 1])?);
/// let k = assign_distance_ste(&c, &x, 0.5, 1.0)?;
/// assert_eq!(k.value().data(), &[0.0, 1.0]); // hard one-hot on prototype 1
/// # Ok(())
/// # }
/// ```
pub fn assign_distance_ste(
    codebook: &Var,
    x: &Var,
    tau: f32,
    slope: f32,
) -> Result<Var, ShapeError> {
    let scores = l1_scores_var(codebook, x, slope)?;
    let soft = scores.softmax_columns(tau)?;
    let hard_idx = hard_assign(&scores.value())?;
    let hard = one_hot_matrix(&hard_idx, codebook.value().dims()[1])?;
    straight_through(&soft, hard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codebook_2x3() -> Tensor {
        // prototypes: [0,0], [1,1], [-1,2] as columns of [d=2, p=3]
        Tensor::from_vec(vec![0.0, 1.0, -1.0, 0.0, 1.0, 2.0], &[2, 3]).unwrap()
    }

    #[test]
    fn l1_scores_match_manual_distances() {
        let c = codebook_2x3();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[2, 1]).unwrap(); // one column [1,1]
        let s = l1_scores(&c, &x).unwrap();
        assert_eq!(s.dims(), &[3, 1]);
        assert_eq!(s.get2(0, 0), -2.0); // |1|+|1|
        assert_eq!(s.get2(1, 0), 0.0);
        assert_eq!(s.get2(2, 0), -3.0); // |1+1|+|1-2|
        assert_eq!(hard_assign(&s).unwrap(), vec![1]);
    }

    #[test]
    fn dot_scores_match_matmul() {
        let c = codebook_2x3();
        let x = Tensor::from_vec(vec![2.0, 0.5, -1.0, 3.0], &[2, 2]).unwrap();
        let s = dot_scores(&c, &x).unwrap();
        let expect = c.transpose2().unwrap().matmul(&x).unwrap();
        assert!(s.max_abs_diff(&expect) < 1e-6);
    }

    #[test]
    fn one_hot_matrix_validates_range() {
        let m = one_hot_matrix(&[1, 0, 2], 3).unwrap();
        assert_eq!(m.dims(), &[3, 3]);
        assert_eq!(m.get2(1, 0), 1.0);
        assert_eq!(m.sum(), 3.0);
        assert!(one_hot_matrix(&[3], 3).is_err());
    }

    #[test]
    fn soft_assign_angle_is_a_distribution_and_differentiable() {
        let c = Var::parameter(codebook_2x3());
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap());
        let k = soft_assign_angle(&c, &x, 1.0).unwrap();
        let v = k.value();
        for i in 0..2 {
            let z: f32 = (0..3).map(|m| v.get2(m, i)).sum();
            assert!((z - 1.0).abs() < 1e-5);
        }
        drop(v);
        k.sum_all().backward();
        // softmax columns sum to 1 regardless of logits, so the gradient of
        // their sum w.r.t. parameters is ~0; both parents still get a slot
        assert!(c.grad().is_some());
        assert!(x.grad().is_some());
    }

    #[test]
    fn ste_forward_is_hard_backward_is_soft() {
        let c = Var::parameter(codebook_2x3());
        let x = Var::constant(Tensor::from_vec(vec![0.9, 1.1], &[2, 1]).unwrap());
        let k = assign_distance_ste(&c, &x, 0.5, 1.0).unwrap();
        assert_eq!(k.value().data(), &[0.0, 1.0, 0.0]);
        // weight the output so gradients are informative
        let w = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap());
        k.mul(&w).unwrap().sum_all().backward();
        let g = c.grad().expect("codebook receives gradient through STE");
        assert!(g.data().iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn l1_scores_gradient_matches_finite_difference_at_steep_slope() {
        // with a steep slope the surrogate ≈ true sign, so FD on the actual
        // L1 objective must agree (away from kinks)
        let c0 = Tensor::from_vec(vec![0.3, -0.2, 0.8, 0.5], &[2, 2]).unwrap();
        let x0 = Tensor::from_vec(vec![1.0, -1.0], &[2, 1]).unwrap();
        let slope = 200.0;
        let c = Var::parameter(c0.clone());
        let x = Var::constant(x0.clone());
        let s = l1_scores_var(&c, &x, slope).unwrap();
        s.sum_all().backward();
        let g = c.grad().unwrap();
        let eps = 5e-3;
        for idx in 0..4 {
            let mut plus = c0.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = c0.clone();
            minus.data_mut()[idx] -= eps;
            let f = |ct: &Tensor| l1_scores(ct, &x0).unwrap().sum();
            let fd = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                (fd - g.data()[idx]).abs() < 0.05,
                "idx {idx}: fd {fd} vs analytic {}",
                g.data()[idx]
            );
        }
    }

    #[test]
    fn shape_mismatches_error() {
        let c = codebook_2x3();
        assert!(l1_scores(&c, &Tensor::zeros(&[3, 1])).is_err());
        assert!(dot_scores(&c, &Tensor::zeros(&[3, 1])).is_err());
    }
}

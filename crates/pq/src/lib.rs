//! Product-quantization core of the PECAN reproduction.
//!
//! Implements §3 of the paper: codebooks of learnable prototypes assigned to
//! groups of im2col sub-vectors, the two similarity measures (angle/dot
//! product for PECAN-A, L1 distance for PECAN-D), the temperature-relaxed
//! soft assignment of Eq. (4), the straight-through estimator of Eq. (5) and
//! the epoch-annealed `tanh` approximation of the sign gradient of Eq. (6).
//!
//! Two API levels:
//!
//! * **tensor level** ([`dot_scores`], [`l1_scores`], [`hard_assign`]) —
//!   allocation-light kernels used by the inference engine and the CAM
//!   simulator;
//! * **autograd level** ([`Codebook`] + [`soft_assign_angle`],
//!   [`assign_distance_ste`]) — differentiable graph ops used during
//!   end-to-end training.
//!
//! # Example
//!
//! ```
//! use pecan_pq::{GroupSpec, PqConfig};
//!
//! # fn main() -> Result<(), pecan_tensor::ShapeError> {
//! // 16 input channels, 3×3 kernels quantized with d = k² = 9 prototypes
//! let cfg = PqConfig::for_rows(16 * 9, 8, 9, 1.0)?;
//! assert_eq!(cfg.groups(), 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod assign;
mod codebook;
mod config;
mod kmeans;
mod stats;
mod ste;

pub use assign::{
    assign_distance_ste, dot_scores, hard_assign, l1_scores, l1_scores_var, one_hot_matrix,
    soft_assign_angle, soft_assign_distance,
};
pub use codebook::Codebook;
pub use config::{GroupSpec, PqConfig};
pub use kmeans::kmeans_codebook;
pub use stats::UsageStats;
pub use ste::{anneal_slope, sign_approx, sign_approx_series, straight_through};

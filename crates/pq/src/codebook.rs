use crate::PqConfig;
use pecan_autograd::Var;
use pecan_tensor::{ShapeError, Tensor};
use rand::Rng;

/// A layer's set of trainable codebooks: one `[d, p]` matrix per group,
/// column `m` being prototype `C(j)_m` (§3, Fig. 1(c)).
///
/// Prototypes are autograd parameters so both training strategies work:
/// co-optimization (weights + prototypes) and uni-optimization (prototypes
/// only, weights frozen) — §4.4.2.
pub struct Codebook {
    groups: Vec<Var>,
    config: PqConfig,
}

impl Codebook {
    /// Random-uniform initialisation in `[-bound, bound]` where
    /// `bound = 1/sqrt(d)` (same scale as the unit-variance features it
    /// matches against).
    pub fn random<R: Rng>(rng: &mut R, config: PqConfig) -> Self {
        let bound = 1.0 / (config.dim() as f32).sqrt();
        let groups = (0..config.groups())
            .map(|_| {
                Var::parameter(pecan_tensor::uniform(
                    rng,
                    &[config.dim(), config.prototypes()],
                    -bound,
                    bound,
                ))
            })
            .collect();
        Self { groups, config }
    }

    /// Builds a codebook from explicit per-group prototype matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the group count or any matrix shape does
    /// not match `config`.
    pub fn from_groups(groups: Vec<Tensor>, config: PqConfig) -> Result<Self, ShapeError> {
        if groups.len() != config.groups() {
            return Err(ShapeError::new(format!(
                "expected {} codebook groups, got {}",
                config.groups(),
                groups.len()
            )));
        }
        for (j, g) in groups.iter().enumerate() {
            if g.dims() != [config.dim(), config.prototypes()] {
                return Err(ShapeError::new(format!(
                    "group {j} has shape {:?}, expected [{}, {}]",
                    g.dims(),
                    config.dim(),
                    config.prototypes()
                )));
            }
        }
        Ok(Self { groups: groups.into_iter().map(Var::parameter).collect(), config })
    }

    /// The configuration this codebook was built for.
    pub fn config(&self) -> &PqConfig {
        &self.config
    }

    /// The trainable `[d, p]` prototype matrix of group `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= groups`.
    pub fn group(&self, j: usize) -> &Var {
        &self.groups[j]
    }

    /// All groups in order.
    pub fn groups(&self) -> &[Var] {
        &self.groups
    }

    /// All trainable parameters (one per group).
    pub fn parameters(&self) -> Vec<Var> {
        self.groups.clone()
    }

    /// Snapshot of the prototypes as plain tensors (for the inference
    /// engine / CAM programming).
    pub fn to_tensors(&self) -> Vec<Tensor> {
        self.groups.iter().map(Var::to_tensor).collect()
    }

    /// Splits an im2col matrix `[D·d, cols]` into its `D` row-groups
    /// `[d, cols]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x` does not have `D·d` rows.
    pub fn split_rows(&self, x: &Tensor) -> Result<Vec<Tensor>, ShapeError> {
        x.shape().expect_rank(2)?;
        let (d, big_d) = (self.config.dim(), self.config.groups());
        if x.dims()[0] != d * big_d {
            return Err(ShapeError::new(format!(
                "feature matrix has {} rows, codebook covers {}",
                x.dims()[0],
                d * big_d
            )));
        }
        let cols = x.dims()[1];
        let mut out = Vec::with_capacity(big_d);
        for j in 0..big_d {
            let mut g = Tensor::zeros(&[d, cols]);
            for r in 0..d {
                g.row_mut(r).copy_from_slice(x.row(j * d + r));
            }
            out.push(g);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> PqConfig {
        PqConfig::for_rows(18, 4, 9, 1.0).unwrap()
    }

    #[test]
    fn random_codebook_has_right_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cb = Codebook::random(&mut rng, cfg());
        assert_eq!(cb.groups().len(), 2);
        assert_eq!(cb.group(0).value().dims(), &[9, 4]);
        assert_eq!(cb.parameters().len(), 2);
    }

    #[test]
    fn from_groups_validates() {
        let ok = vec![Tensor::zeros(&[9, 4]), Tensor::zeros(&[9, 4])];
        assert!(Codebook::from_groups(ok, cfg()).is_ok());
        let wrong_count = vec![Tensor::zeros(&[9, 4])];
        assert!(Codebook::from_groups(wrong_count, cfg()).is_err());
        let wrong_shape = vec![Tensor::zeros(&[9, 4]), Tensor::zeros(&[4, 9])];
        assert!(Codebook::from_groups(wrong_shape, cfg()).is_err());
    }

    #[test]
    fn split_rows_partitions_contiguously() {
        let mut rng = StdRng::seed_from_u64(1);
        let cb = Codebook::random(&mut rng, cfg());
        let x = Tensor::from_vec((0..36).map(|v| v as f32).collect(), &[18, 2]).unwrap();
        let parts = cb.split_rows(&x).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].get2(0, 0), 0.0);
        assert_eq!(parts[1].get2(0, 0), 18.0);
        assert!(cb.split_rows(&Tensor::zeros(&[17, 2])).is_err());
    }
}

/// Prototype call-frequency accumulator — the measurement behind Fig. 6.
///
/// The paper observes that after training only a fraction of prototypes are
/// ever selected at inference (26 of 64 in ResNet-20 conv2), so the rest —
/// and their lookup-table entries — can be pruned with no accuracy impact.
/// `UsageStats` records, per group, how often each prototype wins the
/// similarity search.
///
/// # Example
///
/// ```
/// let mut stats = pecan_pq::UsageStats::new(1, 4);
/// stats.record(0, 2);
/// stats.record(0, 2);
/// stats.record(0, 1);
/// assert_eq!(stats.counts(0), &[0, 1, 2, 0]);
/// assert_eq!(stats.used(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageStats {
    counts: Vec<Vec<u64>>,
    prototypes: usize,
}

impl UsageStats {
    /// Creates an all-zero accumulator for `groups` codebooks of
    /// `prototypes` entries each.
    pub fn new(groups: usize, prototypes: usize) -> Self {
        Self { counts: vec![vec![0; prototypes]; groups], prototypes }
    }

    /// Number of groups tracked.
    pub fn groups(&self) -> usize {
        self.counts.len()
    }

    /// Prototypes per group.
    pub fn prototypes(&self) -> usize {
        self.prototypes
    }

    /// Records one selection of prototype `index` in group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` or `index` is out of range.
    pub fn record(&mut self, group: usize, index: usize) {
        self.counts[group][index] += 1;
    }

    /// Records a whole batch of assignments for one group.
    ///
    /// # Panics
    ///
    /// Panics if `group` or any index is out of range.
    pub fn record_all(&mut self, group: usize, indices: &[usize]) {
        for &i in indices {
            self.counts[group][i] += 1;
        }
    }

    /// Raw counts of group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn counts(&self, group: usize) -> &[u64] {
        &self.counts[group]
    }

    /// How many prototypes of `group` were selected at least once.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn used(&self, group: usize) -> usize {
        self.counts[group].iter().filter(|&&c| c > 0).count()
    }

    /// Indices of never-used prototypes in `group` (pruning candidates).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn unused(&self, group: usize) -> Vec<usize> {
        self.counts[group]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fraction of (group, prototype) cells with non-zero usage — the
    /// sparsity statistic of Fig. 6.
    pub fn utilization(&self) -> f32 {
        let total: usize = self.counts.len() * self.prototypes;
        if total == 0 {
            return 0.0;
        }
        let used: usize = (0..self.counts.len()).map(|g| self.used(g)).sum();
        used as f32 / total as f32
    }

    /// Accumulates another run's statistics.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn merge(&mut self, other: &UsageStats) {
        assert_eq!(self.counts.len(), other.counts.len(), "group count mismatch");
        assert_eq!(self.prototypes, other.prototypes, "prototype count mismatch");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (a, &b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_usage() {
        let mut s = UsageStats::new(2, 3);
        s.record_all(0, &[0, 0, 2]);
        s.record(1, 1);
        assert_eq!(s.counts(0), &[2, 0, 1]);
        assert_eq!(s.used(0), 2);
        assert_eq!(s.unused(0), vec![1]);
        assert_eq!(s.used(1), 1);
        // utilization: (2 + 1) / 6
        assert!((s.utilization() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = UsageStats::new(1, 2);
        a.record(0, 0);
        let mut b = UsageStats::new(1, 2);
        b.record(0, 0);
        b.record(0, 1);
        a.merge(&b);
        assert_eq!(a.counts(0), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "group count mismatch")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = UsageStats::new(1, 2);
        let b = UsageStats::new(2, 2);
        a.merge(&b);
    }

    #[test]
    fn empty_stats_have_zero_utilization() {
        assert_eq!(UsageStats::new(0, 0).utilization(), 0.0);
    }
}

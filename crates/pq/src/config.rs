use pecan_tensor::ShapeError;

/// How one layer's im2col rows are split into codebook groups.
///
/// The flattened feature matrix has `rows = cin·k²` rows; PECAN splits them
/// into `D` contiguous groups of dimension `d` (`D·d = rows`), each with its
/// own codebook of `p` prototypes (§3, Table 1 uses this general form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupSpec {
    /// Number of groups `D`.
    pub groups: usize,
    /// Sub-vector dimension `d`.
    pub dim: usize,
}

impl GroupSpec {
    /// Splits `rows` into groups of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] unless `dim` divides `rows` exactly.
    pub fn for_rows(rows: usize, dim: usize) -> Result<Self, ShapeError> {
        if dim == 0 || rows == 0 || rows % dim != 0 {
            return Err(ShapeError::new(format!(
                "cannot split {rows} rows into sub-vectors of dimension {dim}"
            )));
        }
        Ok(Self { groups: rows / dim, dim })
    }

    /// Total rows covered (`D·d`).
    pub fn rows(&self) -> usize {
        self.groups * self.dim
    }
}

/// Full PQ configuration of one PECAN layer: grouping, prototype count and
/// softmax temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PqConfig {
    spec: GroupSpec,
    prototypes: usize,
    tau: f32,
}

impl PqConfig {
    /// Creates a configuration for a layer whose im2col matrix has `rows`
    /// rows, with `prototypes` per codebook, sub-vector dimension `dim` and
    /// softmax temperature `tau` (the paper uses τ = 1 for PECAN-A and
    /// τ = 0.5 for PECAN-D).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `dim` does not divide `rows`, when
    /// `prototypes == 0`, or when `tau <= 0`.
    pub fn for_rows(
        rows: usize,
        prototypes: usize,
        dim: usize,
        tau: f32,
    ) -> Result<Self, ShapeError> {
        if prototypes == 0 {
            return Err(ShapeError::new("a codebook needs at least one prototype"));
        }
        if tau <= 0.0 || tau.is_nan() {
            return Err(ShapeError::new(format!("temperature must be positive, got {tau}")));
        }
        Ok(Self { spec: GroupSpec::for_rows(rows, dim)?, prototypes, tau })
    }

    /// Number of groups `D`.
    pub fn groups(&self) -> usize {
        self.spec.groups
    }

    /// Sub-vector dimension `d`.
    pub fn dim(&self) -> usize {
        self.spec.dim
    }

    /// Prototypes per codebook `p`.
    pub fn prototypes(&self) -> usize {
        self.prototypes
    }

    /// Softmax temperature `τ`.
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// The grouping part of the configuration.
    pub fn spec(&self) -> GroupSpec {
        self.spec
    }

    /// Total rows covered (`D·d`).
    pub fn rows(&self) -> usize {
        self.spec.rows()
    }

    /// Memory footprint of the prototypes in scalars: `D·d·p` (§3 storage
    /// component (i)).
    pub fn prototype_scalars(&self) -> usize {
        self.rows() * self.prototypes
    }

    /// Memory footprint of the lookup table in scalars for `c_out` outputs:
    /// `cout·D·p` (§3 storage component (ii)).
    pub fn lut_scalars(&self, c_out: usize) -> usize {
        c_out * self.groups() * self.prototypes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_spec_divides_rows() {
        let s = GroupSpec::for_rows(72, 9).unwrap();
        assert_eq!(s.groups, 8);
        assert_eq!(s.rows(), 72);
        assert!(GroupSpec::for_rows(72, 7).is_err());
        assert!(GroupSpec::for_rows(0, 3).is_err());
        assert!(GroupSpec::for_rows(8, 0).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(PqConfig::for_rows(9, 0, 9, 1.0).is_err());
        assert!(PqConfig::for_rows(9, 4, 9, 0.0).is_err());
        assert!(PqConfig::for_rows(9, 4, 9, f32::NAN).is_err());
        let c = PqConfig::for_rows(9, 4, 9, 1.0).unwrap();
        assert_eq!(c.groups(), 1);
        assert_eq!(c.prototypes(), 4);
    }

    #[test]
    fn storage_formulas_match_paper() {
        // LeNet CONV2 PECAN-D: p=64, D=8, d=9 (Table A2) — 72 rows
        let c = PqConfig::for_rows(72, 64, 9, 0.5).unwrap();
        assert_eq!(c.prototype_scalars(), 72 * 64);
        assert_eq!(c.lut_scalars(16), 16 * 8 * 64);
    }
}

//! Versioned, endian-stable binary model snapshots.
//!
//! A snapshot captures a compiled [`FrozenEngine`] exactly: per-stage
//! codebooks, precomputed `W·C` lookup tables and biases, all as
//! little-endian IEEE-754 bit patterns. Loading rebuilds the engine through
//! [`LayerLut::from_tables`] without any recomputation, so a reloaded
//! engine's outputs are **bit-identical** to the saved one's —
//! `tests/snapshot_roundtrip.rs` pins save→load→predict parity by property
//! test.
//!
//! # Format
//!
//! All integers little-endian; `f32` as raw LE bit patterns.
//!
//! ```text
//! magic        8 × u8   "PECANSNP"
//! version      u32      2 (current; 1 still read)
//! model name   u32 len + UTF-8 bytes     — version ≥ 2 only; 0 = unnamed
//! input rank   u32      then that many u32 dims
//! output rank  u32      then that many u32 dims
//! stage count  u32
//! stages…               tagged (u8), see below
//! checksum     u32      CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! **Version 2** (current) prepends a model-name header for multi-model
//! serving; everything after it is byte-identical to version 1, and
//! [`FrozenEngine::load_snapshot`] still reads version-1 files
//! bit-identically (they load with no name). Snapshots from *newer*
//! revisions are rejected with a typed
//! [`SnapshotError::UnsupportedVersion`]. To produce a file an old reader
//! can load, use [`FrozenEngine::snapshot_bytes_versioned`] with
//! version 1 (the name is dropped).
//!
//! Stage tags: `0` ReLU · `1` MaxPool (`kernel`, `stride` as u32) · `2`
//! GlobalAvgPool · `3` Flatten · `4` PECAN conv · `5` PECAN linear. PECAN
//! payloads carry `variant` (u8: 0 = Distance, 1 = Angle), `dim`,
//! `groups`, `prototypes` (u32), `tau` (f32), `c_out` (u32), a bias flag
//! (u8), conv-only geometry (`c_in`, `h_in`, `w_in`, `kernel`, `stride`,
//! `padding` as u32), then per group the `[d, p]` codebook and the
//! `[c_out, p]` table, then the bias when flagged.
//!
//! Every decoding failure is a typed [`SnapshotError`] — truncation,
//! flipped bits (checksum), foreign files (magic), future versions,
//! structural nonsense (with a *valid* checksum) and trailing bytes all
//! surface as errors, never panics.

use crate::engine::FrozenEngine;
use crate::error::SnapshotError;
use crate::stage::{
    FlattenStage, GlobalAvgPoolStage, LutConvStage, LutLinearStage, MaxPoolStage, ReluStage,
    Stage,
};
use pecan_cam::LookupTable;
use pecan_core::{LayerLut, PecanVariant};
use pecan_pq::PqConfig;
use pecan_tensor::{Conv2dGeometry, Tensor};
use std::fs;
use std::path::Path;

/// First eight bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PECANSNP";
/// Format revision this build writes and the highest it reads.
pub const SNAPSHOT_VERSION: u32 = 2;

const TAG_RELU: u8 = 0;
const TAG_MAXPOOL: u8 = 1;
const TAG_GAP: u8 = 2;
const TAG_FLATTEN: u8 = 3;
const TAG_CONV: u8 = 4;
const TAG_LINEAR: u8 = 5;

/// Longest accepted model-name header, in bytes.
const NAME_LIMIT: usize = 4096;

// ---------------------------------------------------------------- CRC-32

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the snapshot integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------- writer

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        // Shapes in this workspace are far below u32::MAX; keep the file
        // format fixed-width regardless of host pointer size.
        self.u32(u32::try_from(v).expect("snapshot dimension exceeds u32"));
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        for &v in vs {
            self.f32(v);
        }
    }
    fn dims(&mut self, dims: &[usize]) {
        self.usize(dims.len());
        for &d in dims {
            self.usize(d);
        }
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.bytes.len() - self.pos;
        if available < n {
            return Err(SnapshotError::Truncated { needed: n, available });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        Ok(self.u32()? as usize)
    }
    fn f32(&mut self) -> Result<f32, SnapshotError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, SnapshotError> {
        let b = self.take(n.checked_mul(4).ok_or_else(|| {
            SnapshotError::Corrupt("element count overflows".into())
        })?)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
    /// Bounded dimension list; `limit` guards against absurd declared sizes
    /// in a file whose checksum happens to validate.
    fn dims(&mut self, limit: usize) -> Result<Vec<usize>, SnapshotError> {
        let rank = self.usize()?;
        if rank == 0 || rank > 8 {
            return Err(SnapshotError::Corrupt(format!("shape rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = self.usize()?;
            if d == 0 || d > limit {
                return Err(SnapshotError::Corrupt(format!("dimension {d}")));
            }
            dims.push(d);
        }
        Ok(dims)
    }
    /// Length-prefixed UTF-8 model name; empty means unnamed.
    fn name(&mut self) -> Result<Option<String>, SnapshotError> {
        let len = self.usize()?;
        if len > NAME_LIMIT {
            return Err(SnapshotError::Corrupt(format!(
                "model name of {len} bytes exceeds the {NAME_LIMIT}-byte limit"
            )));
        }
        if len == 0 {
            return Ok(None);
        }
        let raw = self.take(len)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(Some(s.to_string())),
            Err(_) => Err(SnapshotError::Corrupt("model name is not UTF-8".into())),
        }
    }
}

/// Ceiling on any single declared dimension — far above every model in the
/// workspace, small enough that `rank · dim · 4` cannot wrap.
const DIM_LIMIT: usize = 1 << 24;

// ---------------------------------------------------------------- encode

fn write_pecan(w: &mut Writer, lut: &LayerLut, geom: Option<&Conv2dGeometry>) {
    let cfg = lut.config();
    w.u8(match lut.variant() {
        PecanVariant::Distance => 0,
        PecanVariant::Angle => 1,
    });
    w.usize(cfg.dim());
    w.usize(cfg.groups());
    w.usize(cfg.prototypes());
    w.f32(cfg.tau());
    w.usize(lut.outputs());
    w.u8(u8::from(lut.bias().is_some()));
    if let Some(g) = geom {
        w.usize(g.c_in());
        w.usize(g.h_in());
        w.usize(g.w_in());
        w.usize(g.kernel());
        w.usize(g.stride());
        w.usize(g.padding());
    }
    for (cb, table) in lut.codebooks().iter().zip(lut.luts()) {
        w.f32s(cb.data());
        w.f32s(table.table().data());
    }
    if let Some(b) = lut.bias() {
        w.f32s(b.data());
    }
}

fn read_pecan(
    r: &mut Reader<'_>,
    conv: bool,
) -> Result<(LayerLut, Option<Conv2dGeometry>), SnapshotError> {
    let variant = match r.u8()? {
        0 => PecanVariant::Distance,
        1 => PecanVariant::Angle,
        other => return Err(SnapshotError::Corrupt(format!("variant tag {other}"))),
    };
    let dim = r.usize()?;
    let groups = r.usize()?;
    let prototypes = r.usize()?;
    let tau = r.f32()?;
    let c_out = r.usize()?;
    let has_bias = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(SnapshotError::Corrupt(format!("bias flag {other}"))),
    };
    for (what, v) in
        [("dim", dim), ("groups", groups), ("prototypes", prototypes), ("c_out", c_out)]
    {
        if v == 0 || v > DIM_LIMIT {
            return Err(SnapshotError::Corrupt(format!("{what} = {v}")));
        }
    }
    let geom = if conv {
        let (c_in, h_in, w_in) = (r.usize()?, r.usize()?, r.usize()?);
        let (kernel, stride, padding) = (r.usize()?, r.usize()?, r.usize()?);
        Some(
            Conv2dGeometry::new(c_in, h_in, w_in, kernel, stride, padding)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
        )
    } else {
        None
    };
    let config = PqConfig::for_rows(groups * dim, prototypes, dim, tau)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    if let Some(g) = &geom {
        if g.patch_len() != config.rows() {
            return Err(SnapshotError::Corrupt(format!(
                "conv patch length {} does not match {} PQ rows",
                g.patch_len(),
                config.rows()
            )));
        }
    }
    let mut codebooks = Vec::with_capacity(groups);
    let mut tables = Vec::with_capacity(groups);
    for _ in 0..groups {
        let cb = Tensor::from_vec(r.f32s(dim * prototypes)?, &[dim, prototypes])
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let table = Tensor::from_vec(r.f32s(c_out * prototypes)?, &[c_out, prototypes])
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        codebooks.push(cb);
        tables.push(
            LookupTable::new(table).map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
        );
    }
    let bias = if has_bias {
        Some(Tensor::from_slice(&r.f32s(c_out)?))
    } else {
        None
    };
    let lut = LayerLut::from_tables(variant, config, &codebooks, tables, bias)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    Ok((lut, geom))
}

fn write_stage(w: &mut Writer, stage: &dyn Stage) {
    let any = stage.as_any();
    if any.downcast_ref::<ReluStage>().is_some() {
        w.u8(TAG_RELU);
    } else if let Some(pool) = any.downcast_ref::<MaxPoolStage>() {
        w.u8(TAG_MAXPOOL);
        w.usize(pool.kernel());
        w.usize(pool.stride());
    } else if any.downcast_ref::<GlobalAvgPoolStage>().is_some() {
        w.u8(TAG_GAP);
    } else if any.downcast_ref::<FlattenStage>().is_some() {
        w.u8(TAG_FLATTEN);
    } else if let Some(conv) = any.downcast_ref::<LutConvStage>() {
        w.u8(TAG_CONV);
        write_pecan(w, conv.lut_engine(), Some(conv.geometry()));
    } else if let Some(lin) = any.downcast_ref::<LutLinearStage>() {
        w.u8(TAG_LINEAR);
        write_pecan(w, lin.lut_engine(), None);
    } else {
        unreachable!("every compiled stage kind has a snapshot tag");
    }
}

impl FrozenEngine {
    /// Serializes the engine into the current snapshot byte format.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_bytes_versioned(SNAPSHOT_VERSION)
            .expect("the current version always encodes")
    }

    /// Serializes the engine as a specific format revision — version 1
    /// for files an old reader must load (drops the model name), version
    /// 2 for the current format.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`] for revisions this build
    /// does not write.
    pub fn snapshot_bytes_versioned(&self, version: u32) -> Result<Vec<u8>, SnapshotError> {
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.u32(version);
        if version >= 2 {
            let name = self.name().unwrap_or("");
            // Clamp over-long names on a char boundary — a mid-character
            // cut would write a header this build's own loader rejects.
            let mut end = name.len().min(NAME_LIMIT);
            while !name.is_char_boundary(end) {
                end -= 1;
            }
            let bytes = &name.as_bytes()[..end];
            w.usize(bytes.len());
            w.buf.extend_from_slice(bytes);
        }
        w.dims(&self.input_shape);
        w.dims(&self.output_shape);
        w.usize(self.stages.len());
        for stage in &self.stages {
            write_stage(&mut w, stage.as_ref());
        }
        let crc = crc32(&w.buf);
        w.u32(crc);
        Ok(w.buf)
    }

    /// Writes the snapshot to `path` (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be written.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        fs::write(path, self.snapshot_bytes())?;
        Ok(())
    }

    /// Decodes an engine from snapshot bytes (version 1 or 2).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant; see the module docs. The returned
    /// engine is bit-identical to the one that produced the bytes.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        const TRAILER: usize = 4;
        if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + TRAILER {
            return Err(SnapshotError::Truncated {
                needed: SNAPSHOT_MAGIC.len() + 4 + TRAILER,
                available: bytes.len(),
            });
        }
        if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = crc32(payload);
        // Version is checked before the checksum so a snapshot from a future
        // format revision reports *version*, not a spurious bit-rot error —
        // future revisions may checksum differently.
        let mut r = Reader { bytes: payload, pos: SNAPSHOT_MAGIC.len() };
        let version = r.u32()?;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let name = if version >= 2 { r.name()? } else { None };
        let input_shape = r.dims(DIM_LIMIT)?;
        let output_shape = r.dims(DIM_LIMIT)?;
        let n_stages = r.usize()?;
        if n_stages > 4096 {
            return Err(SnapshotError::Corrupt(format!("{n_stages} stages")));
        }
        let mut stages: Vec<Box<dyn Stage>> = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let stage: Box<dyn Stage> = match r.u8()? {
                TAG_RELU => Box::new(ReluStage),
                TAG_MAXPOOL => {
                    let kernel = r.usize()?;
                    let stride = r.usize()?;
                    if kernel > DIM_LIMIT {
                        return Err(SnapshotError::Corrupt(format!(
                            "pool window {kernel}/{stride}"
                        )));
                    }
                    Box::new(
                        MaxPoolStage::new(kernel, stride)
                            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
                    )
                }
                TAG_GAP => Box::new(GlobalAvgPoolStage),
                TAG_FLATTEN => Box::new(FlattenStage),
                TAG_CONV => {
                    let (lut, geom) = read_pecan(&mut r, true)?;
                    Box::new(
                        LutConvStage::new(
                            lut,
                            geom.expect("conv payload carries geometry"),
                        )
                        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
                    )
                }
                TAG_LINEAR => {
                    let (lut, _) = read_pecan(&mut r, false)?;
                    Box::new(LutLinearStage::new(lut))
                }
                other => {
                    return Err(SnapshotError::Corrupt(format!("stage tag {other}")))
                }
            };
            stages.push(stage);
        }
        if r.pos != payload.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after last stage",
                payload.len() - r.pos
            )));
        }
        FrozenEngine::from_parts(stages, input_shape, output_shape, name)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Reads a snapshot file written by [`FrozenEngine::save_snapshot`]
    /// (or any earlier format revision).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant; see the module docs.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot_bytes(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_bytes_start_with_magic_version_and_name() {
        let engine = crate::demo::mlp_engine(1);
        let bytes = engine.snapshot_bytes();
        assert_eq!(&bytes[..8], b"PECANSNP");
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), SNAPSHOT_VERSION);
        let name_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        assert_eq!(&bytes[16..16 + name_len], b"mlp");
    }

    #[test]
    fn oversized_names_clamp_on_a_char_boundary() {
        // 4095 ASCII bytes + a 2-byte char straddling the limit: the write
        // must clamp to 4095, and the snapshot must load back cleanly.
        let long = "a".repeat(NAME_LIMIT - 1) + "é";
        let engine = crate::demo::mlp_engine(1).with_name(long);
        let bytes = engine.snapshot_bytes();
        let name_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        assert_eq!(name_len, NAME_LIMIT - 1);
        let reloaded = FrozenEngine::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(reloaded.name(), Some("a".repeat(NAME_LIMIT - 1).as_str()));
    }

    #[test]
    fn version_1_encoding_drops_the_name() {
        let engine = crate::demo::mlp_engine(1);
        let v1 = engine.snapshot_bytes_versioned(1).unwrap();
        assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
        let loaded = FrozenEngine::from_snapshot_bytes(&v1).unwrap();
        assert_eq!(loaded.name(), None);
        assert!(matches!(
            engine.snapshot_bytes_versioned(SNAPSHOT_VERSION + 1),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }
}

//! Versioned, endian-stable binary model snapshots.
//!
//! A snapshot captures a compiled [`FrozenEngine`] exactly: per-stage
//! codebooks, precomputed `W·C` lookup tables and biases, all as
//! little-endian IEEE-754 bit patterns. Loading rebuilds the engine without
//! any recomputation, so a reloaded engine's outputs are **bit-identical**
//! to the saved one's — `tests/snapshot_roundtrip.rs` pins
//! save→load→predict parity by property test.
//!
//! The normative byte-level specification of all three format revisions
//! lives in [`docs/snapshot-format.md`] — this module doc is the summary.
//!
//! [`docs/snapshot-format.md`]: https://github.com/pecan/pecan/blob/main/docs/snapshot-format.md
//!
//! # Format
//!
//! All integers little-endian; `f32` as raw LE bit patterns.
//!
//! **Versions 1–2** are a single sequential stream with a trailing whole-file
//! CRC-32:
//!
//! ```text
//! magic        8 × u8   "PECANSNP"
//! version      u32      1 or 2
//! model name   u32 len + UTF-8 bytes     — version ≥ 2 only; 0 = unnamed
//! input rank   u32      then that many u32 dims
//! output rank  u32      then that many u32 dims
//! stage count  u32
//! stages…               tagged (u8), bulk f32 data inline
//! checksum     u32      CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! **Version 3** (current) splits the file into a self-checksummed header
//! and 64-byte-aligned bulk **sections** addressed by a directory, stored in
//! the engine's *runtime* layout (CAM rows `[p, d]`, tables `[cout, p]`)
//! so a loader can construct the engine over a borrowed byte buffer — e.g.
//! a memory-mapped file — with **no bulk copy**
//! ([`FrozenEngine::open_snapshot`]):
//!
//! ```text
//! magic          8 × u8   "PECANSNP"
//! version        u32      3
//! header_len     u32      bytes [0, header_len) are the header region
//! section count  u32
//! directory      count × { offset u64, byte_len u64, crc u32 }
//! model name     u32 len + UTF-8 bytes
//! input/output dims, stage count, stage descriptors
//!                         — as v2, except every bulk f32 blob is replaced
//!                           by the u32 index of its section
//! header CRC     u32      CRC-32 over bytes [0, header_len - 4)
//! zero padding            to the next 64-byte boundary
//! sections…               raw LE f32, each 64-byte aligned, zero-padded;
//!                         the file length is a multiple of 64
//! ```
//!
//! Every section carries its own CRC-32 in the directory: the copying
//! loader checks them all; the zero-copy loader checks the header eagerly
//! and leaves section verification to [`FrozenEngine::open_snapshot_verified`]
//! or the `snapshot-tool verify` command, so an open does not have to fault
//! in the bulk data (instant cold start).
//!
//! [`FrozenEngine::load_snapshot`] still reads version-1/2 files
//! bit-identically via the copying path. Snapshots from *newer* revisions
//! are rejected with a typed [`SnapshotError::UnsupportedVersion`]. To
//! produce a file an old reader can load, use
//! [`FrozenEngine::snapshot_bytes_versioned`] with version 1 or 2 (also
//! exposed as `snapshot-tool convert`).
//!
//! Stage tags: `0` ReLU · `1` MaxPool (`kernel`, `stride` as u32) · `2`
//! GlobalAvgPool · `3` Flatten · `4` PECAN conv · `5` PECAN linear. PECAN
//! payloads carry `variant` (u8: 0 = Distance, 1 = Angle), `dim`,
//! `groups`, `prototypes` (u32), `tau` (f32), `c_out` (u32), a bias flag
//! (u8), conv-only geometry (`c_in`, `h_in`, `w_in`, `kernel`, `stride`,
//! `padding` as u32), then per group the codebook and the `[c_out, p]`
//! table (v1/v2: inline `[d, p]` codebook bits; v3: section indices of the
//! `[p, d]` CAM rows and the table), then the bias when flagged.
//!
//! Every decoding failure is a typed [`SnapshotError`] — truncation,
//! flipped bits (checksum), foreign files (magic), future versions,
//! structural nonsense (with a *valid* checksum) and trailing bytes all
//! surface as errors, never panics.

use crate::engine::FrozenEngine;
use crate::error::SnapshotError;
use crate::stage::{
    FlattenStage, GlobalAvgPoolStage, LutConvStage, LutLinearStage, MaxPoolStage, ReluStage,
    Stage,
};
use pecan_cam::LookupTable;
use pecan_core::{LayerLut, PecanVariant};
use pecan_pq::PqConfig;
use pecan_tensor::{Conv2dGeometry, F32Source, Tensor};
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// First eight bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PECANSNP";
/// Format revision this build writes and the highest it reads.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Alignment of every v3 section (and of the v3 file length).
pub const SECTION_ALIGN: usize = 64;

const TAG_RELU: u8 = 0;
const TAG_MAXPOOL: u8 = 1;
const TAG_GAP: u8 = 2;
const TAG_FLATTEN: u8 = 3;
const TAG_CONV: u8 = 4;
const TAG_LINEAR: u8 = 5;

/// Longest accepted model-name header, in bytes.
const NAME_LIMIT: usize = 4096;

/// Ceiling on the v3 section count — far above any real model, small
/// enough that a corrupt header cannot demand a gigantic directory.
const SECTION_LIMIT: usize = 1 << 20;

// ---------------------------------------------------------------- CRC-32

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the snapshot integrity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

// ---------------------------------------------------------------- writer

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        // Shapes in this workspace are far below u32::MAX; keep the file
        // format fixed-width regardless of host pointer size.
        self.u32(u32::try_from(v).expect("snapshot dimension exceeds u32"));
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        for &v in vs {
            self.f32(v);
        }
    }
    fn dims(&mut self, dims: &[usize]) {
        self.usize(dims.len());
        for &d in dims {
            self.usize(d);
        }
    }
}

/// Collects the bulk payloads of a v3 snapshot while the stage descriptors
/// are encoded; the assembler lays them out aligned afterwards.
struct SectionWriter {
    payloads: Vec<Vec<u8>>,
}

impl SectionWriter {
    /// Encodes `data` as LE bytes and returns the new section's index.
    fn add(&mut self, data: &[f32]) -> usize {
        let mut buf = Vec::with_capacity(data.len() * 4);
        for &v in data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.payloads.push(buf);
        self.payloads.len() - 1
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.bytes.len() - self.pos;
        if available < n {
            return Err(SnapshotError::Truncated { needed: n, available });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("eight bytes")))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        Ok(self.u32()? as usize)
    }
    fn f32(&mut self) -> Result<f32, SnapshotError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, SnapshotError> {
        let b = self.take(n.checked_mul(4).ok_or_else(|| {
            SnapshotError::Corrupt("element count overflows".into())
        })?)?;
        Ok(decode_f32s(b))
    }
    /// Bounded dimension list; `limit` guards against absurd declared sizes
    /// in a file whose checksum happens to validate.
    fn dims(&mut self, limit: usize) -> Result<Vec<usize>, SnapshotError> {
        let rank = self.usize()?;
        if rank == 0 || rank > 8 {
            return Err(SnapshotError::Corrupt(format!("shape rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let d = self.usize()?;
            if d == 0 || d > limit {
                return Err(SnapshotError::Corrupt(format!("dimension {d}")));
            }
            dims.push(d);
        }
        Ok(dims)
    }
    /// Length-prefixed UTF-8 model name; empty means unnamed.
    fn name(&mut self) -> Result<Option<String>, SnapshotError> {
        let len = self.usize()?;
        if len > NAME_LIMIT {
            return Err(SnapshotError::Corrupt(format!(
                "model name of {len} bytes exceeds the {NAME_LIMIT}-byte limit"
            )));
        }
        if len == 0 {
            return Ok(None);
        }
        let raw = self.take(len)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(Some(s.to_string())),
            Err(_) => Err(SnapshotError::Corrupt("model name is not UTF-8".into())),
        }
    }
}

fn decode_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Ceiling on any single declared dimension — far above every model in the
/// workspace, small enough that `rank · dim · 4` cannot wrap.
const DIM_LIMIT: usize = 1 << 24;

// ---------------------------------------------------------------- encode

/// Encodes the PECAN scalar header shared by every format revision.
fn write_pecan_scalars(w: &mut Writer, lut: &LayerLut, geom: Option<&Conv2dGeometry>) {
    let cfg = lut.config();
    w.u8(match lut.variant() {
        PecanVariant::Distance => 0,
        PecanVariant::Angle => 1,
    });
    w.usize(cfg.dim());
    w.usize(cfg.groups());
    w.usize(cfg.prototypes());
    w.f32(cfg.tau());
    w.usize(lut.outputs());
    w.u8(u8::from(lut.bias().is_some()));
    if let Some(g) = geom {
        w.usize(g.c_in());
        w.usize(g.h_in());
        w.usize(g.w_in());
        w.usize(g.kernel());
        w.usize(g.stride());
        w.usize(g.padding());
    }
}

/// v1/v2 PECAN payload: scalars then inline `[d, p]` codebook and
/// `[cout, p]` table bits per group, then the bias.
fn write_pecan(w: &mut Writer, lut: &LayerLut, geom: Option<&Conv2dGeometry>) {
    write_pecan_scalars(w, lut, geom);
    for (cb, table) in lut.codebooks().iter().zip(lut.luts()) {
        w.f32s(cb.data());
        w.f32s(table.table().data());
    }
    if let Some(b) = lut.bias() {
        w.f32s(b.data());
    }
}

/// v3 PECAN payload: scalars then per group the section indices of the
/// `[p, d]` CAM rows and the `[cout, p]` table, then the bias section.
/// The runtime layout goes to disk unchanged — serialization is a byte
/// copy and zero-copy loading needs no transform.
fn write_pecan_v3(
    w: &mut Writer,
    sections: &mut SectionWriter,
    lut: &LayerLut,
    geom: Option<&Conv2dGeometry>,
) {
    write_pecan_scalars(w, lut, geom);
    for (rows, table) in lut.cam_rows().iter().zip(lut.luts()) {
        w.usize(sections.add(rows.data()));
        w.usize(sections.add(table.table().data()));
    }
    if let Some(b) = lut.bias() {
        w.usize(sections.add(b.data()));
    }
}

/// Reads the PECAN scalar header shared by every format revision and
/// derives the validated [`PqConfig`] (+ conv geometry).
#[allow(clippy::type_complexity)]
fn read_pecan_scalars(
    r: &mut Reader<'_>,
    conv: bool,
) -> Result<(PecanVariant, PqConfig, usize, bool, Option<Conv2dGeometry>), SnapshotError> {
    let variant = match r.u8()? {
        0 => PecanVariant::Distance,
        1 => PecanVariant::Angle,
        other => return Err(SnapshotError::Corrupt(format!("variant tag {other}"))),
    };
    let dim = r.usize()?;
    let groups = r.usize()?;
    let prototypes = r.usize()?;
    let tau = r.f32()?;
    let c_out = r.usize()?;
    let has_bias = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(SnapshotError::Corrupt(format!("bias flag {other}"))),
    };
    for (what, v) in
        [("dim", dim), ("groups", groups), ("prototypes", prototypes), ("c_out", c_out)]
    {
        if v == 0 || v > DIM_LIMIT {
            return Err(SnapshotError::Corrupt(format!("{what} = {v}")));
        }
    }
    let geom = if conv {
        let (c_in, h_in, w_in) = (r.usize()?, r.usize()?, r.usize()?);
        let (kernel, stride, padding) = (r.usize()?, r.usize()?, r.usize()?);
        Some(
            Conv2dGeometry::new(c_in, h_in, w_in, kernel, stride, padding)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
        )
    } else {
        None
    };
    let config = PqConfig::for_rows(groups * dim, prototypes, dim, tau)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    if let Some(g) = &geom {
        if g.patch_len() != config.rows() {
            return Err(SnapshotError::Corrupt(format!(
                "conv patch length {} does not match {} PQ rows",
                g.patch_len(),
                config.rows()
            )));
        }
    }
    Ok((variant, config, c_out, has_bias, geom))
}

fn read_pecan(
    r: &mut Reader<'_>,
    conv: bool,
) -> Result<(LayerLut, Option<Conv2dGeometry>), SnapshotError> {
    let (variant, config, c_out, has_bias, geom) = read_pecan_scalars(r, conv)?;
    let (dim, groups, prototypes) =
        (config.dim(), config.groups(), config.prototypes());
    let mut codebooks = Vec::with_capacity(groups);
    let mut tables = Vec::with_capacity(groups);
    for _ in 0..groups {
        let cb = Tensor::from_vec(r.f32s(dim * prototypes)?, &[dim, prototypes])
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let table = Tensor::from_vec(r.f32s(c_out * prototypes)?, &[c_out, prototypes])
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        codebooks.push(cb);
        tables.push(
            LookupTable::new(table).map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
        );
    }
    let bias = if has_bias {
        Some(Tensor::from_slice(&r.f32s(c_out)?))
    } else {
        None
    };
    let lut = LayerLut::from_tables(variant, config, &codebooks, tables, bias)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    Ok((lut, geom))
}

/// Section-materialization callback for v3 readers: maps a directory
/// index plus its expected shape to a [`Tensor`] (copying or zero-copy).
type Materialize<'a> = &'a dyn Fn(usize, &[usize]) -> Result<Tensor, SnapshotError>;

/// v3 PECAN reader: materializes each referenced section as a [`Tensor`]
/// through `materialize` (copying or zero-copy, the caller decides) and
/// builds the engine with [`LayerLut::from_borrowed_tables`] — no
/// transpose, no reshuffle.
fn read_pecan_v3(
    r: &mut Reader<'_>,
    conv: bool,
    materialize: Materialize<'_>,
) -> Result<(LayerLut, Option<Conv2dGeometry>), SnapshotError> {
    let (variant, config, c_out, has_bias, geom) = read_pecan_scalars(r, conv)?;
    let (dim, groups, prototypes) =
        (config.dim(), config.groups(), config.prototypes());
    let mut cams = Vec::with_capacity(groups);
    let mut tables = Vec::with_capacity(groups);
    for _ in 0..groups {
        let rows_idx = r.usize()?;
        let table_idx = r.usize()?;
        cams.push(materialize(rows_idx, &[prototypes, dim])?);
        tables.push(
            LookupTable::new(materialize(table_idx, &[c_out, prototypes])?)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
        );
    }
    let bias = if has_bias {
        let idx = r.usize()?;
        Some(materialize(idx, &[c_out])?)
    } else {
        None
    };
    let lut = LayerLut::from_borrowed_tables(variant, config, cams, tables, bias)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    Ok((lut, geom))
}

fn write_stage(w: &mut Writer, sections: Option<&mut SectionWriter>, stage: &dyn Stage) {
    let any = stage.as_any();
    if any.downcast_ref::<ReluStage>().is_some() {
        w.u8(TAG_RELU);
    } else if let Some(pool) = any.downcast_ref::<MaxPoolStage>() {
        w.u8(TAG_MAXPOOL);
        w.usize(pool.kernel());
        w.usize(pool.stride());
    } else if any.downcast_ref::<GlobalAvgPoolStage>().is_some() {
        w.u8(TAG_GAP);
    } else if any.downcast_ref::<FlattenStage>().is_some() {
        w.u8(TAG_FLATTEN);
    } else if let Some(conv) = any.downcast_ref::<LutConvStage>() {
        w.u8(TAG_CONV);
        match sections {
            Some(s) => write_pecan_v3(w, s, conv.lut_engine(), Some(conv.geometry())),
            None => write_pecan(w, conv.lut_engine(), Some(conv.geometry())),
        }
    } else if let Some(lin) = any.downcast_ref::<LutLinearStage>() {
        w.u8(TAG_LINEAR);
        match sections {
            Some(s) => write_pecan_v3(w, s, lin.lut_engine(), None),
            None => write_pecan(w, lin.lut_engine(), None),
        }
    } else {
        unreachable!("every compiled stage kind has a snapshot tag");
    }
}

// ------------------------------------------------------------ v3 sections

/// One entry of the v3 section directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Byte offset of the section from the start of the file (64-aligned).
    pub offset: u64,
    /// Unpadded payload length in bytes (a multiple of 4).
    pub byte_len: u64,
    /// CRC-32 (IEEE) over the unpadded payload.
    pub crc: u32,
}

/// Parses and validates the v3 header region: checks the header CRC,
/// reads the section directory, and returns the directory plus a reader
/// positioned at the model name (the tail).
fn read_v3_header(bytes: &[u8]) -> Result<(Vec<SectionInfo>, Reader<'_>), SnapshotError> {
    // magic(8) + version(4) + header_len(4) + count(4) + CRC(4)
    const MIN_HEADER: usize = 24;
    if bytes.len() < MIN_HEADER {
        return Err(SnapshotError::Truncated { needed: MIN_HEADER, available: bytes.len() });
    }
    let header_len =
        u32::from_le_bytes(bytes[12..16].try_into().expect("four bytes")) as usize;
    if header_len < MIN_HEADER || header_len > bytes.len() {
        return Err(SnapshotError::Corrupt(format!(
            "header length {header_len} outside file of {} bytes",
            bytes.len()
        )));
    }
    let stored = u32::from_le_bytes(
        bytes[header_len - 4..header_len].try_into().expect("four bytes"),
    );
    let computed = crc32(&bytes[..header_len - 4]);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let mut r = Reader { bytes: &bytes[..header_len - 4], pos: 16 };
    let count = r.usize()?;
    if count > SECTION_LIMIT {
        return Err(SnapshotError::Corrupt(format!("{count} sections")));
    }
    let mut dir = Vec::with_capacity(count);
    for i in 0..count {
        let offset = r.u64()?;
        let byte_len = r.u64()?;
        let crc = r.u32()?;
        let end = offset.checked_add(byte_len);
        if offset as usize % SECTION_ALIGN != 0
            || byte_len % 4 != 0
            || end.map_or(true, |e| e > bytes.len() as u64)
            || (offset as usize) < header_len
        {
            return Err(SnapshotError::Corrupt(format!(
                "section {i} spans [{offset}, {offset}+{byte_len}) in a file of {} bytes",
                bytes.len()
            )));
        }
        dir.push(SectionInfo { offset, byte_len, crc });
    }
    Ok((dir, r))
}

/// Decodes the v3 tail (name, shapes, stages) of an already-validated
/// header, materializing sections through `materialize`.
fn read_v3_engine(
    mut r: Reader<'_>,
    materialize: Materialize<'_>,
) -> Result<FrozenEngine, SnapshotError> {
    let name = r.name()?;
    let input_shape = r.dims(DIM_LIMIT)?;
    let output_shape = r.dims(DIM_LIMIT)?;
    let n_stages = r.usize()?;
    if n_stages > 4096 {
        return Err(SnapshotError::Corrupt(format!("{n_stages} stages")));
    }
    let mut stages: Vec<Box<dyn Stage>> = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let stage: Box<dyn Stage> = match r.u8()? {
            TAG_RELU => Box::new(ReluStage),
            TAG_MAXPOOL => {
                let kernel = r.usize()?;
                let stride = r.usize()?;
                if kernel > DIM_LIMIT {
                    return Err(SnapshotError::Corrupt(format!(
                        "pool window {kernel}/{stride}"
                    )));
                }
                Box::new(
                    MaxPoolStage::new(kernel, stride)
                        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
                )
            }
            TAG_GAP => Box::new(GlobalAvgPoolStage),
            TAG_FLATTEN => Box::new(FlattenStage),
            TAG_CONV => {
                let (lut, geom) = read_pecan_v3(&mut r, true, materialize)?;
                Box::new(
                    LutConvStage::new(lut, geom.expect("conv payload carries geometry"))
                        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
                )
            }
            TAG_LINEAR => {
                let (lut, _) = read_pecan_v3(&mut r, false, materialize)?;
                Box::new(LutLinearStage::new(lut))
            }
            other => return Err(SnapshotError::Corrupt(format!("stage tag {other}"))),
        };
        stages.push(stage);
    }
    if r.pos != r.bytes.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after last stage",
            r.bytes.len() - r.pos
        )));
    }
    FrozenEngine::from_parts(stages, input_shape, output_shape, name)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))
}

/// Looks `idx` up in `dir` and validates its payload length against the
/// expected tensor shape.
fn section_entry<'d>(
    dir: &'d [SectionInfo],
    idx: usize,
    dims: &[usize],
) -> Result<&'d SectionInfo, SnapshotError> {
    let entry = dir.get(idx).ok_or_else(|| {
        SnapshotError::Corrupt(format!("section index {idx} outside a {}-entry directory", dir.len()))
    })?;
    let want = dims.iter().product::<usize>() as u64 * 4;
    if entry.byte_len != want {
        return Err(SnapshotError::Corrupt(format!(
            "section {idx} holds {} bytes, shape {dims:?} needs {want}",
            entry.byte_len
        )));
    }
    Ok(entry)
}

/// Copying v3 loader: decodes every referenced section to the heap,
/// verifying its CRC. Used by [`FrozenEngine::from_snapshot_bytes`].
fn read_v3_copying(bytes: &[u8]) -> Result<FrozenEngine, SnapshotError> {
    let (dir, tail) = read_v3_header(bytes)?;
    let materialize = |idx: usize, dims: &[usize]| -> Result<Tensor, SnapshotError> {
        let e = section_entry(&dir, idx, dims)?;
        let payload = &bytes[e.offset as usize..(e.offset + e.byte_len) as usize];
        let computed = crc32(payload);
        if computed != e.crc {
            return Err(SnapshotError::ChecksumMismatch { stored: e.crc, computed });
        }
        Tensor::from_vec(decode_f32s(payload), dims)
            .map_err(|err| SnapshotError::Corrupt(err.to_string()))
    };
    read_v3_engine(tail, &materialize)
}

/// Zero-copy v3 loader: every bulk tensor is a borrowed window into
/// `owner`'s buffer. `bytes` must be the same buffer `owner.f32s()` views
/// (the caller guarantees it — e.g. both sides of one memory map).
/// Section CRCs are checked only when `verify_sections` is set; the header
/// CRC is always checked.
pub(crate) fn engine_from_shared(
    owner: &Arc<dyn F32Source>,
    bytes: &[u8],
    verify_sections: bool,
) -> Result<FrozenEngine, SnapshotError> {
    if bytes.len() != owner.f32s().len() * 4 {
        return Err(SnapshotError::Corrupt(format!(
            "shared source of {} scalars does not cover the {}-byte file",
            owner.f32s().len(),
            bytes.len()
        )));
    }
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(SnapshotError::Truncated {
            needed: SNAPSHOT_MAGIC.len() + 4,
            available: bytes.len(),
        });
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("four bytes"));
    if version != 3 {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let (dir, tail) = read_v3_header(bytes)?;
    let materialize = |idx: usize, dims: &[usize]| -> Result<Tensor, SnapshotError> {
        let e = section_entry(&dir, idx, dims)?;
        if verify_sections {
            let payload = &bytes[e.offset as usize..(e.offset + e.byte_len) as usize];
            let computed = crc32(payload);
            if computed != e.crc {
                return Err(SnapshotError::ChecksumMismatch { stored: e.crc, computed });
            }
        }
        Tensor::from_shared(Arc::clone(owner), e.offset as usize / 4, dims)
            .map_err(|err| SnapshotError::Corrupt(err.to_string()))
    };
    read_v3_engine(tail, &materialize)
}

// ------------------------------------------------------------ inspection

/// Structural metadata of a snapshot file, decoded without building the
/// engine — the `snapshot-tool info` view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format revision of the file.
    pub version: u32,
    /// Embedded model name (v2+).
    pub name: Option<String>,
    /// Declared per-sample input shape.
    pub input_shape: Vec<usize>,
    /// Declared per-sample output shape.
    pub output_shape: Vec<usize>,
    /// Declared stage count.
    pub stage_count: usize,
    /// Total file length in bytes.
    pub file_len: usize,
    /// v3 section directory (empty for v1/v2).
    pub sections: Vec<SectionInfo>,
}

/// Decodes a snapshot's structural metadata — version, name, shapes, stage
/// count and (v3) the section directory — verifying the header checksum
/// (v3) or the whole-file checksum (v1/v2) but not decoding stage payloads.
///
/// # Errors
///
/// Any [`SnapshotError`] variant; see the module docs.
pub fn inspect_snapshot_bytes(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(SnapshotError::Truncated {
            needed: SNAPSHOT_MAGIC.len() + 4,
            available: bytes.len(),
        });
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("four bytes"));
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    if version == 3 {
        let (sections, mut r) = read_v3_header(bytes)?;
        let name = r.name()?;
        let input_shape = r.dims(DIM_LIMIT)?;
        let output_shape = r.dims(DIM_LIMIT)?;
        let stage_count = r.usize()?;
        return Ok(SnapshotInfo {
            version,
            name,
            input_shape,
            output_shape,
            stage_count,
            file_len: bytes.len(),
            sections,
        });
    }
    const TRAILER: usize = 4;
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + TRAILER {
        return Err(SnapshotError::Truncated {
            needed: SNAPSHOT_MAGIC.len() + 4 + TRAILER,
            available: bytes.len(),
        });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER);
    let stored = u32::from_le_bytes(trailer.try_into().expect("four bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let mut r = Reader { bytes: payload, pos: SNAPSHOT_MAGIC.len() + 4 };
    let name = if version >= 2 { r.name()? } else { None };
    let input_shape = r.dims(DIM_LIMIT)?;
    let output_shape = r.dims(DIM_LIMIT)?;
    let stage_count = r.usize()?;
    Ok(SnapshotInfo {
        version,
        name,
        input_shape,
        output_shape,
        stage_count,
        file_len: bytes.len(),
        sections: Vec::new(),
    })
}

impl FrozenEngine {
    /// Serializes the engine into the current snapshot byte format.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_bytes_versioned(SNAPSHOT_VERSION)
            .expect("the current version always encodes")
    }

    /// Serializes the engine as a specific format revision — version 1
    /// for files the oldest reader can load (drops the model name),
    /// version 2 for the sequential named format, version 3 for the
    /// current section-directory format.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`] for revisions this build
    /// does not write.
    pub fn snapshot_bytes_versioned(&self, version: u32) -> Result<Vec<u8>, SnapshotError> {
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        if version == 3 {
            return Ok(self.snapshot_bytes_v3());
        }
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.u32(version);
        if version >= 2 {
            self.write_name(&mut w);
        }
        w.dims(&self.input_shape);
        w.dims(&self.output_shape);
        w.usize(self.stages.len());
        for stage in &self.stages {
            write_stage(&mut w, None, stage.as_ref());
        }
        let crc = crc32(&w.buf);
        w.u32(crc);
        Ok(w.buf)
    }

    /// Writes the length-prefixed model name, clamping over-long names on
    /// a char boundary — a mid-character cut would write a header this
    /// build's own loader rejects.
    fn write_name(&self, w: &mut Writer) {
        let name = self.name().unwrap_or("");
        let mut end = name.len().min(NAME_LIMIT);
        while !name.is_char_boundary(end) {
            end -= 1;
        }
        let bytes = &name.as_bytes()[..end];
        w.usize(bytes.len());
        w.buf.extend_from_slice(bytes);
    }

    /// Assembles the v3 layout: encode the tail while collecting section
    /// payloads, lay the sections out 64-aligned after the header, then
    /// stamp the directory and header CRC.
    fn snapshot_bytes_v3(&self) -> Vec<u8> {
        let mut tail = Writer { buf: Vec::new() };
        let mut sections = SectionWriter { payloads: Vec::new() };
        self.write_name(&mut tail);
        tail.dims(&self.input_shape);
        tail.dims(&self.output_shape);
        tail.usize(self.stages.len());
        for stage in &self.stages {
            write_stage(&mut tail, Some(&mut sections), stage.as_ref());
        }
        let n = sections.payloads.len();
        // magic(8) + version(4) + header_len(4) + count(4) + dir + tail + CRC(4)
        let header_len = 20 + n * 20 + tail.buf.len() + 4;
        let mut cursor = align_up(header_len);
        let mut dir = Vec::with_capacity(n);
        for p in &sections.payloads {
            dir.push(SectionInfo {
                offset: cursor as u64,
                byte_len: p.len() as u64,
                crc: crc32(p),
            });
            cursor = align_up(cursor + p.len());
        }
        let file_len = cursor.max(align_up(header_len));
        let mut w = Writer { buf: Vec::with_capacity(file_len) };
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.u32(3);
        w.usize(header_len);
        w.usize(n);
        for e in &dir {
            w.u64(e.offset);
            w.u64(e.byte_len);
            w.u32(e.crc);
        }
        w.buf.extend_from_slice(&tail.buf);
        let crc = crc32(&w.buf);
        w.u32(crc);
        debug_assert_eq!(w.buf.len(), header_len);
        for (e, p) in dir.iter().zip(&sections.payloads) {
            w.buf.resize(e.offset as usize, 0);
            w.buf.extend_from_slice(p);
        }
        w.buf.resize(file_len, 0);
        w.buf
    }

    /// Writes the snapshot to `path` (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be written.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        fs::write(path, self.snapshot_bytes())?;
        Ok(())
    }

    /// Decodes an engine from snapshot bytes (any supported version) via
    /// the copying path — every bulk section is decoded to the heap and
    /// its checksum verified.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant; see the module docs. The returned
    /// engine is bit-identical to the one that produced the bytes.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        const TRAILER: usize = 4;
        if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + TRAILER {
            return Err(SnapshotError::Truncated {
                needed: SNAPSHOT_MAGIC.len() + 4 + TRAILER,
                available: bytes.len(),
            });
        }
        if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        // Version is checked before any checksum so a snapshot from a future
        // format revision reports *version*, not a spurious bit-rot error —
        // future revisions may checksum differently.
        let version =
            u32::from_le_bytes(bytes[8..12].try_into().expect("four bytes"));
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        if version == 3 {
            return read_v3_copying(bytes);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = crc32(payload);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader { bytes: payload, pos: SNAPSHOT_MAGIC.len() + 4 };
        let name = if version >= 2 { r.name()? } else { None };
        let input_shape = r.dims(DIM_LIMIT)?;
        let output_shape = r.dims(DIM_LIMIT)?;
        let n_stages = r.usize()?;
        if n_stages > 4096 {
            return Err(SnapshotError::Corrupt(format!("{n_stages} stages")));
        }
        let mut stages: Vec<Box<dyn Stage>> = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let stage: Box<dyn Stage> = match r.u8()? {
                TAG_RELU => Box::new(ReluStage),
                TAG_MAXPOOL => {
                    let kernel = r.usize()?;
                    let stride = r.usize()?;
                    if kernel > DIM_LIMIT {
                        return Err(SnapshotError::Corrupt(format!(
                            "pool window {kernel}/{stride}"
                        )));
                    }
                    Box::new(
                        MaxPoolStage::new(kernel, stride)
                            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
                    )
                }
                TAG_GAP => Box::new(GlobalAvgPoolStage),
                TAG_FLATTEN => Box::new(FlattenStage),
                TAG_CONV => {
                    let (lut, geom) = read_pecan(&mut r, true)?;
                    Box::new(
                        LutConvStage::new(
                            lut,
                            geom.expect("conv payload carries geometry"),
                        )
                        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
                    )
                }
                TAG_LINEAR => {
                    let (lut, _) = read_pecan(&mut r, false)?;
                    Box::new(LutLinearStage::new(lut))
                }
                other => {
                    return Err(SnapshotError::Corrupt(format!("stage tag {other}")))
                }
            };
            stages.push(stage);
        }
        if r.pos != payload.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after last stage",
                payload.len() - r.pos
            )));
        }
        FrozenEngine::from_parts(stages, input_shape, output_shape, name)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Reads a snapshot file written by [`FrozenEngine::save_snapshot`]
    /// (or any earlier format revision) via the copying path.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant; see the module docs.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot_bytes(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_bytes_start_with_magic_and_version() {
        let engine = crate::demo::mlp_engine(1);
        let bytes = engine.snapshot_bytes();
        assert_eq!(&bytes[..8], b"PECANSNP");
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), SNAPSHOT_VERSION);
        // v2 places the name immediately after the version.
        let v2 = engine.snapshot_bytes_versioned(2).unwrap();
        let name_len = u32::from_le_bytes(v2[12..16].try_into().unwrap()) as usize;
        assert_eq!(&v2[16..16 + name_len], b"mlp");
    }

    #[test]
    fn v3_layout_is_aligned_and_self_describing() {
        let engine = crate::demo::mlp_engine(1);
        let bytes = engine.snapshot_bytes();
        assert_eq!(bytes.len() % SECTION_ALIGN, 0);
        let info = inspect_snapshot_bytes(&bytes).unwrap();
        assert_eq!(info.version, 3);
        assert_eq!(info.name.as_deref(), Some("mlp"));
        assert_eq!(info.stage_count, engine.stage_count());
        assert!(!info.sections.is_empty());
        for s in &info.sections {
            assert_eq!(s.offset as usize % SECTION_ALIGN, 0);
            assert_eq!(s.byte_len % 4, 0);
            let payload = &bytes[s.offset as usize..(s.offset + s.byte_len) as usize];
            assert_eq!(crc32(payload), s.crc);
        }
    }

    #[test]
    fn oversized_names_clamp_on_a_char_boundary() {
        // 4095 ASCII bytes + a 2-byte char straddling the limit: the write
        // must clamp to 4095, and the snapshot must load back cleanly.
        let long = "a".repeat(NAME_LIMIT - 1) + "é";
        let engine = crate::demo::mlp_engine(1).with_name(long);
        let bytes = engine.snapshot_bytes_versioned(2).unwrap();
        let name_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        assert_eq!(name_len, NAME_LIMIT - 1);
        let reloaded = FrozenEngine::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(reloaded.name(), Some("a".repeat(NAME_LIMIT - 1).as_str()));
        // v3 clamps identically.
        let v3 = reloaded.snapshot_bytes();
        let again = FrozenEngine::from_snapshot_bytes(&v3).unwrap();
        assert_eq!(again.name(), reloaded.name());
    }

    #[test]
    fn version_1_encoding_drops_the_name() {
        let engine = crate::demo::mlp_engine(1);
        let v1 = engine.snapshot_bytes_versioned(1).unwrap();
        assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
        let loaded = FrozenEngine::from_snapshot_bytes(&v1).unwrap();
        assert_eq!(loaded.name(), None);
        assert!(matches!(
            engine.snapshot_bytes_versioned(SNAPSHOT_VERSION + 1),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn v3_round_trips_bit_identically_from_shared_and_copying_paths() {
        let engine = crate::demo::lenet_engine(7);
        let bytes = engine.snapshot_bytes();
        let input = vec![0.125f32; engine.input_len()];
        let want = engine.predict(&input).unwrap();

        let copied = FrozenEngine::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(copied.predict(&input).unwrap(), want);

        // Zero-copy: build over an f32 view of the same bytes. The engine's
        // bulk tensors must be borrowed views, not heap copies.
        let scalars: Arc<dyn F32Source> = Arc::new(decode_f32s(&bytes));
        let shared = engine_from_shared(&scalars, &bytes, true).unwrap();
        assert_eq!(shared.predict(&input).unwrap(), want);
        let mut shared_tensors = 0;
        for stage in shared.stages() {
            if let Some(lut) = stage.lut() {
                for rows in lut.cam_rows() {
                    assert!(rows.is_shared(), "CAM rows must borrow the source");
                    shared_tensors += 1;
                }
                for t in lut.luts() {
                    assert!(t.table().is_shared(), "tables must borrow the source");
                    shared_tensors += 1;
                }
            }
        }
        assert!(shared_tensors > 0);
    }

    #[test]
    fn shared_load_detects_section_corruption_only_when_verifying() {
        let engine = crate::demo::mlp_engine(3);
        let mut bytes = engine.snapshot_bytes();
        let info = inspect_snapshot_bytes(&bytes).unwrap();
        let first = info.sections[0];
        bytes[first.offset as usize] ^= 0xFF;
        // Copying path always checks section CRCs.
        assert!(matches!(
            FrozenEngine::from_snapshot_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        let scalars: Arc<dyn F32Source> = Arc::new(decode_f32s(&bytes));
        assert!(matches!(
            engine_from_shared(&scalars, &bytes, true),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // The fast open skips section CRCs by design (the header still
        // validates) — corruption surfaces as different bits, not an error.
        assert!(engine_from_shared(&scalars, &bytes, false).is_ok());
    }
}

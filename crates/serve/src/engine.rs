//! The frozen inference engine: an immutable, `Arc`-shareable compiled
//! plan for Algorithm-1 serving.
//!
//! [`FrozenEngine::compile`] walks a trained [`Sequential`] model **once**,
//! precomputing everything inference needs: each PECAN layer becomes a
//! [`LayerLut`] (CAM prototypes + `W·C` product tables, line 3 of
//! Algorithm 1) and each convolution's im2col geometry is resolved against
//! the fixed input shape. After compilation no locks, no RNG and no
//! mutable state remain — [`FrozenEngine::predict_batch`] takes `&self`,
//! so any number of scheduler workers can serve from one shared engine
//! concurrently.
//!
//! Batching is the whole point: one `predict_batch` call concatenates the
//! im2col columns (conv) or feature vectors (linear) of every request in
//! the batch and runs them through [`LayerLut::forward_cols`] in a single
//! sweep, which feeds the lane-blocked `pecan-index` batch scanner wide
//! enough to vectorize. Because every engine in `pecan-index` answers each
//! query independently of its batch-mates (pinned by that crate's parity
//! proptests), batched outputs are **bit-identical** to running the same
//! requests one at a time — `tests/engine_parity.rs` pins this per
//! request, and the scheduler relies on it to mix traffic freely.

use crate::error::ServeError;
use pecan_core::{LayerLut, PecanConv2d, PecanLinear};
use pecan_nn::{Flatten, GlobalAvgPool, MaxPool2d, Relu, Sequential};
use pecan_tensor::{im2col, Conv2dGeometry, Tensor};

/// One compiled pipeline step.
///
/// PECAN stages carry their [`LayerLut`]; geometry-dependent stages carry
/// the metadata resolved at compile time.
#[derive(Debug)]
pub(crate) enum Stage {
    /// PECAN convolution: LUT engine plus the precomputed im2col geometry.
    Conv {
        /// Algorithm-1 engine for this layer.
        lut: LayerLut,
        /// im2col metadata, resolved once against the fixed input shape.
        geom: Conv2dGeometry,
    },
    /// PECAN fully-connected layer.
    Linear {
        /// Algorithm-1 engine for this layer.
        lut: LayerLut,
    },
    /// Elementwise `max(x, 0)`.
    Relu,
    /// Square-window max pooling.
    MaxPool {
        /// Window size.
        kernel: usize,
        /// Step between windows.
        stride: usize,
    },
    /// `[c, h, w] → [c]` mean over the spatial plane.
    GlobalAvgPool,
    /// Shape-only collapse to a vector.
    Flatten,
}

/// An immutable compiled inference plan for one PECAN model.
///
/// Build it with [`FrozenEngine::compile`] (from a live model) or
/// [`FrozenEngine::load_snapshot`](FrozenEngine::load_snapshot) (from a
/// serialized one), wrap it in an [`std::sync::Arc`], and serve: all
/// methods take `&self` and the type is `Send + Sync`.
///
/// # Example
///
/// ```
/// use pecan_serve::FrozenEngine;
///
/// let engine = pecan_serve::demo::mlp_engine(7);
/// let input = vec![0.25; engine.input_len()];
/// let single = engine.predict(&input).unwrap();
/// let batched = engine.predict_batch(&[input.clone(), input]).unwrap();
/// // batching never changes bits
/// assert_eq!(single, batched[0]);
/// assert_eq!(single, batched[1]);
/// ```
#[derive(Debug)]
pub struct FrozenEngine {
    pub(crate) stages: Vec<Stage>,
    pub(crate) input_shape: Vec<usize>,
    pub(crate) output_shape: Vec<usize>,
}

impl FrozenEngine {
    /// Compiles a trained model into a frozen serving plan.
    ///
    /// `input_shape` is the per-sample shape the engine will serve —
    /// `[c, h, w]` for convolutional models, `[features]` for MLPs. All
    /// geometry (im2col layouts, pooling windows, flatten sizes) is
    /// validated and resolved here, so `predict` can never fail on a
    /// well-sized input.
    ///
    /// Supported layers: [`PecanConv2d`], [`PecanLinear`], [`Relu`],
    /// [`MaxPool2d`], [`GlobalAvgPool`], [`Flatten`], and nested
    /// [`Sequential`]s of those.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] for any other layer (standard
    /// uncompressed convolutions, BatchNorm, custom blocks) and
    /// [`ServeError::BadInput`] / [`ServeError::Engine`] when `input_shape`
    /// does not thread through the model.
    pub fn compile(model: &Sequential, input_shape: &[usize]) -> Result<Self, ServeError> {
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(ServeError::BadInput(format!(
                "input shape {input_shape:?} must be non-empty with non-zero dims"
            )));
        }
        let mut stages = Vec::new();
        let mut shape = input_shape.to_vec();
        Self::compile_into(model, &mut stages, &mut shape)?;
        Ok(Self { stages, input_shape: input_shape.to_vec(), output_shape: shape })
    }

    fn compile_into(
        model: &Sequential,
        stages: &mut Vec<Stage>,
        shape: &mut Vec<usize>,
    ) -> Result<(), ServeError> {
        for layer in model.layers() {
            let any = layer.as_any();
            if let Some(conv) = any.downcast_ref::<PecanConv2d>() {
                let (c_in, _, _, _, _) = conv.conv_config();
                if shape.len() != 3 || shape[0] != c_in {
                    return Err(ServeError::BadInput(format!(
                        "PecanConv2d expects [{c_in}, h, w], pipeline carries {shape:?}"
                    )));
                }
                let geom = conv.geometry(shape[1], shape[2])?;
                let lut = LayerLut::from_conv(conv)?;
                *shape = vec![lut.outputs(), geom.h_out(), geom.w_out()];
                stages.push(Stage::Conv { lut, geom });
            } else if let Some(lin) = any.downcast_ref::<PecanLinear>() {
                let lut = LayerLut::from_linear(lin)?;
                let features = lut.config().rows();
                if shape.len() != 1 || shape[0] != features {
                    return Err(ServeError::BadInput(format!(
                        "PecanLinear expects [{features}], pipeline carries {shape:?}"
                    )));
                }
                *shape = vec![lut.outputs()];
                stages.push(Stage::Linear { lut });
            } else if any.downcast_ref::<Relu>().is_some() {
                stages.push(Stage::Relu);
            } else if let Some(pool) = any.downcast_ref::<MaxPool2d>() {
                let (kernel, stride) = (pool.kernel(), pool.stride());
                *shape = pooled_shape(shape, kernel, stride)?;
                stages.push(Stage::MaxPool { kernel, stride });
            } else if any.downcast_ref::<GlobalAvgPool>().is_some() {
                if shape.len() != 3 {
                    return Err(ServeError::BadInput(format!(
                        "GlobalAvgPool expects [c, h, w], pipeline carries {shape:?}"
                    )));
                }
                *shape = vec![shape[0]];
                stages.push(Stage::GlobalAvgPool);
            } else if any.downcast_ref::<Flatten>().is_some() {
                *shape = vec![shape.iter().product()];
                stages.push(Stage::Flatten);
            } else if let Some(seq) = any.downcast_ref::<Sequential>() {
                Self::compile_into(seq, stages, shape)?;
            } else {
                return Err(ServeError::Unsupported(format!(
                    "layer `{}` cannot be compiled into a frozen engine \
                     (only PECAN conv/linear, ReLU, max/global pooling and \
                     flatten are servable)",
                    layer.name()
                )));
            }
        }
        Ok(())
    }

    /// Rebuilds an engine from already-deserialized parts (snapshot
    /// loader), re-threading the per-sample shape through every stage so a
    /// structurally inconsistent pipeline is rejected here — `predict` on
    /// a constructed engine can then never index out of bounds.
    pub(crate) fn from_parts(
        stages: Vec<Stage>,
        input_shape: Vec<usize>,
        output_shape: Vec<usize>,
    ) -> Result<Self, ServeError> {
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(ServeError::BadInput(format!(
                "input shape {input_shape:?} must be non-empty with non-zero dims"
            )));
        }
        let mut shape = input_shape.clone();
        for (i, stage) in stages.iter().enumerate() {
            shape = match stage {
                Stage::Conv { lut, geom } => {
                    if shape != [geom.c_in(), geom.h_in(), geom.w_in()] {
                        return Err(ServeError::BadInput(format!(
                            "stage {i}: conv expects {:?}, pipeline carries {shape:?}",
                            [geom.c_in(), geom.h_in(), geom.w_in()]
                        )));
                    }
                    vec![lut.outputs(), geom.h_out(), geom.w_out()]
                }
                Stage::Linear { lut } => {
                    let features = lut.config().rows();
                    if shape != [features] {
                        return Err(ServeError::BadInput(format!(
                            "stage {i}: linear expects [{features}], pipeline carries {shape:?}"
                        )));
                    }
                    vec![lut.outputs()]
                }
                Stage::Relu => shape,
                Stage::MaxPool { kernel, stride } => pooled_shape(&shape, *kernel, *stride)?,
                Stage::GlobalAvgPool => {
                    if shape.len() != 3 {
                        return Err(ServeError::BadInput(format!(
                            "stage {i}: GlobalAvgPool expects [c, h, w], pipeline carries {shape:?}"
                        )));
                    }
                    vec![shape[0]]
                }
                Stage::Flatten => vec![shape.iter().product()],
            };
        }
        if shape != output_shape {
            return Err(ServeError::BadInput(format!(
                "pipeline produces {shape:?}, header declares {output_shape:?}"
            )));
        }
        Ok(Self { stages, input_shape, output_shape })
    }

    /// Per-sample input shape the engine was compiled for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Per-sample output shape.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Flattened input length one request must supply.
    pub fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Flattened output length one response carries.
    pub fn output_len(&self) -> usize {
        self.output_shape.iter().product()
    }

    /// Number of compiled stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total lookup-table memory across all PECAN stages, in scalars.
    pub fn lut_scalars(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Conv { lut, .. } | Stage::Linear { lut } => lut.lut_scalars(),
                _ => 0,
            })
            .sum()
    }

    /// Serves one request. Exactly equivalent to a batch of one.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when `input.len() != self.input_len()`.
    pub fn predict(&self, input: &[f32]) -> Result<Vec<f32>, ServeError> {
        let batch = [input.to_vec()];
        let mut out = self.predict_batch(&batch)?;
        Ok(out.pop().expect("batch of one yields one output"))
    }

    /// Serves a batch of requests in one sweep through the pipeline.
    ///
    /// Per-request outputs are **bit-identical** to calling
    /// [`FrozenEngine::predict`] on each input alone, for any batch size
    /// and any `PECAN_NUM_THREADS` — batching only changes wall-clock.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when any input has the wrong length. An
    /// empty batch returns an empty vector.
    pub fn predict_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        let want = self.input_len();
        for (i, x) in inputs.iter().enumerate() {
            if x.len() != want {
                return Err(ServeError::BadInput(format!(
                    "request {i} has {} values, engine expects {want}",
                    x.len()
                )));
            }
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut acts: Vec<Vec<f32>> = inputs.to_vec();
        let mut shape = self.input_shape.clone();
        for stage in &self.stages {
            match stage {
                Stage::Conv { lut, geom } => {
                    acts = run_conv(lut, geom, &acts)?;
                    shape = vec![lut.outputs(), geom.h_out(), geom.w_out()];
                }
                Stage::Linear { lut } => {
                    acts = run_linear(lut, &acts)?;
                    shape = vec![lut.outputs()];
                }
                Stage::Relu => {
                    for a in &mut acts {
                        for v in a.iter_mut() {
                            *v = v.max(0.0);
                        }
                    }
                }
                Stage::MaxPool { kernel, stride } => {
                    let out_shape = pooled_shape(&shape, *kernel, *stride)?;
                    for a in &mut acts {
                        *a = max_pool(a, &shape, *kernel, *stride);
                    }
                    shape = out_shape;
                }
                Stage::GlobalAvgPool => {
                    let (c, hw) = (shape[0], shape[1] * shape[2]);
                    for a in &mut acts {
                        *a = (0..c)
                            .map(|ch| {
                                let s: f32 = a[ch * hw..(ch + 1) * hw].iter().sum();
                                s / hw as f32
                            })
                            .collect();
                    }
                    shape = vec![c];
                }
                Stage::Flatten => {
                    shape = vec![shape.iter().product()];
                }
            }
        }
        Ok(acts)
    }
}

/// Output shape of a max-pool stage, validating the window fits.
fn pooled_shape(shape: &[usize], kernel: usize, stride: usize) -> Result<Vec<usize>, ServeError> {
    if shape.len() != 3 {
        return Err(ServeError::BadInput(format!(
            "MaxPool2d expects [c, h, w], pipeline carries {shape:?}"
        )));
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    if kernel == 0 || stride == 0 || kernel > h || kernel > w {
        return Err(ServeError::BadInput(format!(
            "max_pool2d: window {kernel}/stride {stride} does not fit {h}×{w}"
        )));
    }
    Ok(vec![c, (h - kernel) / stride + 1, (w - kernel) / stride + 1])
}

/// Max pooling over one `[c, h, w]` sample — the same scan order and
/// strict-greater/first-wins tie-break as the training path's
/// `Var::max_pool2d`, so engine outputs track the model bit-for-bit.
fn max_pool(src: &[f32], shape: &[usize], kernel: usize, stride: usize) -> Vec<f32> {
    let (c_n, h, w) = (shape[0], shape[1], shape[2]);
    let h_out = (h - kernel) / stride + 1;
    let w_out = (w - kernel) / stride + 1;
    let mut out = Vec::with_capacity(c_n * h_out * w_out);
    for c in 0..c_n {
        let base = c * h * w;
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let v = src[base + (oy * stride + ky) * w + (ox * stride + kx)];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out.push(best);
            }
        }
    }
    out
}

/// Runs one PECAN convolution over the whole batch: per-sample im2col
/// matrices are concatenated column-wise and answered by a single
/// [`LayerLut::forward_cols`] sweep, then split back per sample.
fn run_conv(
    lut: &LayerLut,
    geom: &Conv2dGeometry,
    acts: &[Vec<f32>],
) -> Result<Vec<Vec<f32>>, ServeError> {
    let n = geom.n_patches();
    let rows = geom.patch_len();
    let batch = acts.len();
    let mut cols = Tensor::zeros(&[rows, batch * n]);
    for (i, a) in acts.iter().enumerate() {
        let img = Tensor::from_vec(
            a.clone(),
            &[geom.c_in(), geom.h_in(), geom.w_in()],
        )?;
        let sample = im2col(&img, geom)?;
        for r in 0..rows {
            cols.row_mut(r)[i * n..(i + 1) * n].copy_from_slice(sample.row(r));
        }
    }
    let out = lut.forward_cols(&cols, None)?; // [c_out, batch·n]
    let c_out = lut.outputs();
    let mut result = Vec::with_capacity(batch);
    for i in 0..batch {
        let mut a = Vec::with_capacity(c_out * n);
        for o in 0..c_out {
            a.extend_from_slice(&out.row(o)[i * n..(i + 1) * n]);
        }
        result.push(a);
    }
    Ok(result)
}

/// Runs one PECAN linear layer over the whole batch as a `[features, b]`
/// column matrix through a single [`LayerLut::forward_cols`] sweep.
fn run_linear(lut: &LayerLut, acts: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
    let features = lut.config().rows();
    let batch = acts.len();
    let mut cols = Tensor::zeros(&[features, batch]);
    for (i, a) in acts.iter().enumerate() {
        for (k, &v) in a.iter().enumerate() {
            cols.set2(k, i, v);
        }
    }
    let out = lut.forward_cols(&cols, None)?; // [c_out, batch]
    let c_out = lut.outputs();
    Ok((0..batch)
        .map(|i| (0..c_out).map(|o| out.get2(o, i)).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pecan_core::{PecanBuilder, PecanVariant};
    use pecan_nn::models;

    #[test]
    fn compile_reports_shapes_and_memory() {
        let mut b = PecanBuilder::from_seed(1, PecanVariant::Distance);
        let net = models::lenet5_modified(&mut b).unwrap();
        let engine = FrozenEngine::compile(&net, &[1, 28, 28]).unwrap();
        assert_eq!(engine.input_shape(), &[1, 28, 28]);
        assert_eq!(engine.output_shape(), &[10]);
        assert_eq!(engine.input_len(), 784);
        assert_eq!(engine.output_len(), 10);
        assert_eq!(engine.stage_count(), 12);
        assert!(engine.lut_scalars() > 0);
    }

    #[test]
    fn compile_rejects_unsupported_and_misshapen_models() {
        use pecan_nn::StandardBuilder;
        let mut std_b = StandardBuilder::from_seed(2);
        let standard = models::lenet5_modified(&mut std_b).unwrap();
        match FrozenEngine::compile(&standard, &[1, 28, 28]) {
            Err(ServeError::Unsupported(msg)) => assert!(msg.contains("Conv2d")),
            other => panic!("expected Unsupported, got {other:?}"),
        }

        let mut b = PecanBuilder::from_seed(1, PecanVariant::Distance);
        let net = models::lenet5_modified(&mut b).unwrap();
        assert!(matches!(
            FrozenEngine::compile(&net, &[3, 28, 28]),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            FrozenEngine::compile(&net, &[]),
            Err(ServeError::BadInput(_))
        ));
    }

    #[test]
    fn predict_validates_input_length() {
        let engine = crate::demo::mlp_engine(3);
        assert!(matches!(
            engine.predict(&vec![0.0; engine.input_len() + 1]),
            Err(ServeError::BadInput(_))
        ));
        assert!(engine.predict_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenEngine>();
    }
}

//! The frozen inference engine: an immutable, `Arc`-shareable compiled
//! plan for Algorithm-1 serving.
//!
//! [`FrozenEngine::compile`] walks a trained [`Sequential`] model **once**,
//! compiling each layer into a [`Stage`] implementation: PECAN layers
//! become LUT stages (CAM prototypes + `W·C` product tables, line 3 of
//! Algorithm 1, with conv im2col geometry resolved against the fixed input
//! shape) and the plumbing layers become their batch-first counterparts.
//! After compilation no locks, no RNG and no mutable state remain — all
//! inference entry points take `&self`, so any number of scheduler workers
//! can serve from one shared engine concurrently.
//!
//! The pipeline is **batch-first end to end**: [`FrozenEngine::infer`]
//! takes the whole batch as one column-major [`InferBatch`] matrix and
//! every stage hands one matrix to the next — there is no per-sample
//! split/rejoin anywhere between stages. That keeps the lane-blocked
//! `pecan-index` scanners fed with matrices as wide as the batch through
//! *consecutive* table-lookup layers, which is where PQ-DNN serving
//! throughput comes from. Because every stage answers each column
//! independently of its batch-mates, batched outputs are **bit-identical**
//! to running the same requests one at a time — `tests/engine_parity.rs`
//! and `tests/batch_parity.rs` pin this per request, and the scheduler
//! relies on it to mix traffic freely.
//!
//! The sample-shaped [`FrozenEngine::predict`] /
//! [`FrozenEngine::predict_batch`] entry points remain as thin shims that
//! pack requests into an [`InferBatch`] at the boundary and unpack the
//! answer — same bits, one extra copy at each edge.

use crate::error::ServeError;
use crate::obs::StageObserver;
use crate::stage::{
    FlattenStage, GlobalAvgPoolStage, LutConvStage, LutLinearStage, MaxPoolStage, ReluStage,
    Stage,
};
use pecan_core::{InferBatch, LayerLut, PecanConv2d, PecanLinear};
use pecan_nn::{Flatten, GlobalAvgPool, MaxPool2d, Relu, Sequential};

/// An immutable compiled inference plan for one PECAN model.
///
/// Build it with [`FrozenEngine::compile`] (from a live model) or
/// [`FrozenEngine::load_snapshot`](FrozenEngine::load_snapshot) (from a
/// serialized one), wrap it in an [`std::sync::Arc`], and serve: all
/// methods take `&self` and the type is `Send + Sync`.
///
/// # Example
///
/// ```
/// use pecan_serve::FrozenEngine;
///
/// let engine = pecan_serve::demo::mlp_engine(7);
/// let input = vec![0.25; engine.input_len()];
/// let single = engine.predict(&input).unwrap();
/// let batched = engine.predict_batch(&[input.clone(), input]).unwrap();
/// // batching never changes bits
/// assert_eq!(single, batched[0]);
/// assert_eq!(single, batched[1]);
/// ```
#[derive(Debug)]
pub struct FrozenEngine {
    pub(crate) stages: Vec<Box<dyn Stage>>,
    pub(crate) input_shape: Vec<usize>,
    pub(crate) output_shape: Vec<usize>,
    pub(crate) name: Option<String>,
}

impl FrozenEngine {
    /// Compiles a trained model into a frozen serving plan.
    ///
    /// `input_shape` is the per-sample shape the engine will serve —
    /// `[c, h, w]` for convolutional models, `[features]` for MLPs. All
    /// geometry (im2col layouts, pooling windows, flatten sizes) is
    /// validated and resolved here, so `predict` can never fail on a
    /// well-sized input.
    ///
    /// Supported layers: [`PecanConv2d`], [`PecanLinear`], [`Relu`],
    /// [`MaxPool2d`], [`GlobalAvgPool`], [`Flatten`], and nested
    /// [`Sequential`]s of those.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] for any other layer (standard
    /// uncompressed convolutions, BatchNorm, custom blocks) and
    /// [`ServeError::BadInput`] / [`ServeError::Engine`] when `input_shape`
    /// does not thread through the model.
    pub fn compile(model: &Sequential, input_shape: &[usize]) -> Result<Self, ServeError> {
        let mut stages: Vec<Box<dyn Stage>> = Vec::new();
        let mut shape = input_shape.to_vec();
        Self::compile_into(model, &mut stages, &mut shape)?;
        Self::from_stages(stages, input_shape.to_vec(), None)
    }

    /// Walks the model, appending one compiled stage per layer while
    /// threading the running per-sample `shape` forward (conv geometry
    /// resolution needs the current `[c, h, w]`).
    fn compile_into(
        model: &Sequential,
        stages: &mut Vec<Box<dyn Stage>>,
        shape: &mut Vec<usize>,
    ) -> Result<(), ServeError> {
        for layer in model.layers() {
            let any = layer.as_any();
            let stage: Box<dyn Stage> = if let Some(conv) = any.downcast_ref::<PecanConv2d>() {
                let (c_in, _, _, _, _) = conv.conv_config();
                if shape.len() != 3 || shape[0] != c_in {
                    return Err(ServeError::BadInput(format!(
                        "PecanConv2d expects [{c_in}, h, w], pipeline carries {shape:?}"
                    )));
                }
                let geom = conv.geometry(shape[1], shape[2])?;
                Box::new(LutConvStage::new(LayerLut::from_conv(conv)?, geom)?)
            } else if let Some(lin) = any.downcast_ref::<PecanLinear>() {
                Box::new(LutLinearStage::new(LayerLut::from_linear(lin)?))
            } else if any.downcast_ref::<Relu>().is_some() {
                Box::new(ReluStage)
            } else if let Some(pool) = any.downcast_ref::<MaxPool2d>() {
                Box::new(MaxPoolStage::new(pool.kernel(), pool.stride())?)
            } else if any.downcast_ref::<GlobalAvgPool>().is_some() {
                Box::new(GlobalAvgPoolStage)
            } else if any.downcast_ref::<Flatten>().is_some() {
                Box::new(FlattenStage)
            } else if let Some(seq) = any.downcast_ref::<Sequential>() {
                Self::compile_into(seq, stages, shape)?;
                continue;
            } else {
                return Err(ServeError::Unsupported(format!(
                    "layer `{}` cannot be compiled into a frozen engine \
                     (only PECAN conv/linear, ReLU, max/global pooling and \
                     flatten are servable)",
                    layer.name()
                )));
            };
            *shape = stage.out_shape(shape)?;
            stages.push(stage);
        }
        Ok(())
    }

    /// Builds an engine from already-constructed stages, threading the
    /// per-sample shape through every one to derive (and validate) the
    /// output shape — `predict` on a constructed engine can then never
    /// index out of bounds.
    pub(crate) fn from_stages(
        stages: Vec<Box<dyn Stage>>,
        input_shape: Vec<usize>,
        name: Option<String>,
    ) -> Result<Self, ServeError> {
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(ServeError::BadInput(format!(
                "input shape {input_shape:?} must be non-empty with non-zero dims"
            )));
        }
        let mut shape = input_shape.clone();
        for (i, stage) in stages.iter().enumerate() {
            shape = stage.out_shape(&shape).map_err(|e| {
                ServeError::BadInput(format!("stage {i}: {e}"))
            })?;
        }
        Ok(Self { stages, input_shape, output_shape: shape, name })
    }

    /// Rebuilds an engine from deserialized parts (snapshot loader),
    /// additionally checking the declared output shape.
    pub(crate) fn from_parts(
        stages: Vec<Box<dyn Stage>>,
        input_shape: Vec<usize>,
        output_shape: Vec<usize>,
        name: Option<String>,
    ) -> Result<Self, ServeError> {
        let engine = Self::from_stages(stages, input_shape, name)?;
        if engine.output_shape != output_shape {
            return Err(ServeError::BadInput(format!(
                "pipeline produces {:?}, header declares {output_shape:?}",
                engine.output_shape
            )));
        }
        Ok(engine)
    }

    /// Names the engine (the identity multi-model serving routes on and
    /// snapshot v2 persists). Builder-style; `None`-named engines serve
    /// under a registry-assigned default.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The model name, when the engine carries one.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Per-sample input shape the engine was compiled for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Per-sample output shape.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Flattened input length one request must supply.
    pub fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Flattened output length one response carries.
    pub fn output_len(&self) -> usize {
        self.output_shape.iter().product()
    }

    /// Number of compiled stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The compiled pipeline, for stage-by-stage drivers (e.g. usage-stats
    /// collection with a per-stage [`pecan_core::UsageStats`]).
    pub fn stages(&self) -> &[Box<dyn Stage>] {
        &self.stages
    }

    /// Total lookup-table memory across all PECAN stages, in scalars.
    pub fn lut_scalars(&self) -> usize {
        self.stages
            .iter()
            .filter_map(|s| s.lut())
            .map(LayerLut::lut_scalars)
            .sum()
    }

    /// The batch-first inference entry point: runs the whole batch as
    /// **one** [`InferBatch`] column matrix through every stage. The batch
    /// must carry `input_len()` features per column, shaped either as the
    /// engine's exact `input_shape()` or flat `[input_len()]` (requests
    /// arrive flat off the wire).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when the batch's per-sample shape does not
    /// fit the engine.
    pub fn infer(&self, batch: InferBatch) -> Result<InferBatch, ServeError> {
        self.infer_observed(batch, None)
    }

    /// As [`FrozenEngine::infer`], optionally reporting each stage's wall
    /// time to a [`StageObserver`] (keyed by [`Stage::name`]). With
    /// `obs = None` this **is** `infer` — the per-stage clock is only
    /// read when an observer asks for it, so the unobserved path pays
    /// nothing.
    ///
    /// # Errors
    ///
    /// As for [`FrozenEngine::infer`].
    pub fn infer_observed(
        &self,
        batch: InferBatch,
        obs: Option<&dyn StageObserver>,
    ) -> Result<InferBatch, ServeError> {
        let mut b = if batch.sample_shape() == self.input_shape {
            batch
        } else if batch.sample_shape() == [self.input_len()] {
            batch.reshaped(&self.input_shape.clone())?
        } else {
            return Err(ServeError::BadInput(format!(
                "batch carries samples of {:?}, engine expects {:?}",
                batch.sample_shape(),
                self.input_shape
            )));
        };
        match obs {
            None => {
                for stage in &self.stages {
                    let _span = pecan_obs::span(stage_span_name(stage.name()));
                    b = stage.run(b, None)?;
                }
            }
            Some(obs) => {
                for stage in &self.stages {
                    let _span = pecan_obs::span(stage_span_name(stage.name()));
                    let started = std::time::Instant::now();
                    b = stage.run(b, None)?;
                    obs.record_stage(stage.name(), started.elapsed().as_nanos() as u64);
                }
            }
        }
        debug_assert_eq!(b.sample_shape(), self.output_shape);
        Ok(b)
    }

    /// Distinct stage kinds in pipeline order (duplicates collapsed) —
    /// the label set of the engine's per-stage latency histograms.
    pub fn stage_kinds(&self) -> Vec<&'static str> {
        let mut kinds: Vec<&'static str> = Vec::new();
        for stage in &self.stages {
            if !kinds.contains(&stage.name()) {
                kinds.push(stage.name());
            }
        }
        kinds
    }

    /// Serves one request. Exactly equivalent to a batch of one.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when `input.len() != self.input_len()`.
    pub fn predict(&self, input: &[f32]) -> Result<Vec<f32>, ServeError> {
        if input.len() != self.input_len() {
            return Err(ServeError::BadInput(format!(
                "request has {} values, engine expects {}",
                input.len(),
                self.input_len()
            )));
        }
        let batch = InferBatch::from_data(input.to_vec(), &self.input_shape, 1)?;
        let mut out = self.infer(batch)?.into_samples();
        // A batch of one must yield one output; anything else is an
        // internal pipeline bug, reported as a typed 500 instead of
        // panicking the serving thread.
        out.pop().ok_or_else(|| ServeError::Engine("batch of one yielded no output".into()))
    }

    /// Serves a batch of requests in one sweep through the pipeline — a
    /// thin shim that packs the inputs into one [`InferBatch`] and calls
    /// [`FrozenEngine::infer`].
    ///
    /// Per-request outputs are **bit-identical** to calling
    /// [`FrozenEngine::predict`] on each input alone, for any batch size
    /// and any `PECAN_NUM_THREADS` — batching only changes wall-clock.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when any input has the wrong length. An
    /// empty batch returns an empty vector.
    pub fn predict_batch(&self, inputs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        self.predict_batch_observed(inputs, None)
    }

    /// As [`FrozenEngine::predict_batch`], optionally reporting per-stage
    /// wall time to `obs` — the scheduler's workers call this with their
    /// model's `ServeStats` so `/metrics` can break serving latency down
    /// by stage kind.
    ///
    /// # Errors
    ///
    /// As for [`FrozenEngine::predict_batch`].
    pub fn predict_batch_observed(
        &self,
        inputs: &[Vec<f32>],
        obs: Option<&dyn StageObserver>,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        let want = self.input_len();
        for (i, x) in inputs.iter().enumerate() {
            if x.len() != want {
                return Err(ServeError::BadInput(format!(
                    "request {i} has {} values, engine expects {want}",
                    x.len()
                )));
            }
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let batch = InferBatch::from_samples(inputs, &self.input_shape)?;
        Ok(self.infer_observed(batch, obs)?.into_samples())
    }
}

/// Trace-span label for a stage kind. Span names must be `&'static str`
/// known at the call site, so the mapping is a static lookup over the
/// closed set of [`Stage::name`] values rather than a formatted string.
fn stage_span_name(kind: &'static str) -> &'static str {
    match kind {
        "lut-conv" => "stage.lut-conv",
        "lut-linear" => "stage.lut-linear",
        "relu" => "stage.relu",
        "max-pool" => "stage.max-pool",
        "global-avg-pool" => "stage.global-avg-pool",
        "flatten" => "stage.flatten",
        _ => "stage.other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pecan_core::{PecanBuilder, PecanVariant};
    use pecan_nn::models;

    #[test]
    fn compile_reports_shapes_and_memory() {
        let mut b = PecanBuilder::from_seed(1, PecanVariant::Distance);
        let net = models::lenet5_modified(&mut b).unwrap();
        let engine = FrozenEngine::compile(&net, &[1, 28, 28]).unwrap();
        assert_eq!(engine.input_shape(), &[1, 28, 28]);
        assert_eq!(engine.output_shape(), &[10]);
        assert_eq!(engine.input_len(), 784);
        assert_eq!(engine.output_len(), 10);
        assert_eq!(engine.stage_count(), 12);
        assert!(engine.lut_scalars() > 0);
        assert_eq!(engine.name(), None);
        assert_eq!(engine.with_name("lenet").name(), Some("lenet"));
    }

    #[test]
    fn compile_rejects_unsupported_and_misshapen_models() {
        use pecan_nn::StandardBuilder;
        let mut std_b = StandardBuilder::from_seed(2);
        let standard = models::lenet5_modified(&mut std_b).unwrap();
        match FrozenEngine::compile(&standard, &[1, 28, 28]) {
            Err(ServeError::Unsupported(msg)) => assert!(msg.contains("Conv2d")),
            other => panic!("expected Unsupported, got {other:?}"),
        }

        let mut b = PecanBuilder::from_seed(1, PecanVariant::Distance);
        let net = models::lenet5_modified(&mut b).unwrap();
        assert!(matches!(
            FrozenEngine::compile(&net, &[3, 28, 28]),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            FrozenEngine::compile(&net, &[]),
            Err(ServeError::BadInput(_))
        ));
    }

    #[test]
    fn predict_validates_input_length() {
        let engine = crate::demo::mlp_engine(3);
        assert!(matches!(
            engine.predict(&vec![0.0; engine.input_len() + 1]),
            Err(ServeError::BadInput(_))
        ));
        assert!(engine.predict_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn infer_accepts_flat_and_shaped_batches_and_rejects_others() {
        let engine = crate::demo::lenet_engine(5);
        let sample = vec![0.25f32; engine.input_len()];
        let flat =
            pecan_core::InferBatch::from_samples(std::slice::from_ref(&sample), &[784])
                .unwrap();
        let shaped =
            pecan_core::InferBatch::from_samples(&[sample], &[1, 28, 28]).unwrap();
        let a = engine.infer(flat).unwrap();
        let b = engine.infer(shaped).unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(a.sample_shape(), engine.output_shape());
        let bad = pecan_core::InferBatch::zeros(&[2, 392], 1).unwrap();
        assert!(matches!(engine.infer(bad), Err(ServeError::BadInput(_))));
    }

    #[test]
    fn observed_inference_times_every_stage_and_keeps_bits() {
        let engine = crate::demo::lenet_engine(5);
        let kinds = engine.stage_kinds();
        assert!(kinds.contains(&"lut-conv"), "kinds: {kinds:?}");
        let stats = crate::ServeStats::with_stages(&kinds);
        let input = vec![0.5; engine.input_len()];
        let observed =
            engine.predict_batch_observed(std::slice::from_ref(&input), Some(&stats)).unwrap();
        // Observation is pure accounting — bits are identical.
        assert_eq!(observed[0], engine.predict(&input).unwrap());
        for (kind, h) in stats.stage_histograms() {
            assert!(h.count() >= 1, "stage {kind} never recorded");
        }
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenEngine>();
    }
}

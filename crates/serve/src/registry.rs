//! Multi-model serving: a registry mapping model names to frozen engines,
//! each with its own micro-batching scheduler.
//!
//! One process serves any number of snapshots side by side: every
//! registered model gets a dedicated [`BatchScheduler`] (its own bounded
//! queue, workers and [`ServeStats`](crate::ServeStats) counters) over an
//! `Arc`-shared [`FrozenEngine`], so traffic to one model never batches
//! with — or backpressures — another. The HTTP front end routes
//! `/models/{name}/predict` through [`EngineRegistry::resolve`]; the bare
//! `/predict` route serves the **default** model (the first one
//! registered, unless overridden), keeping single-model deployments and
//! old clients working unchanged.

use crate::error::ServeError;
use crate::scheduler::{BatchRunner, BatchScheduler, SchedulerConfig};
use crate::FrozenEngine;
use std::sync::Arc;

/// One served model: its name, batch runner and dedicated scheduler.
pub struct ModelEntry {
    name: String,
    runner: Arc<dyn BatchRunner>,
    scheduler: BatchScheduler,
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry").field("name", &self.name).finish_non_exhaustive()
    }
}

impl ModelEntry {
    /// The name the model serves under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared batch runner (a [`FrozenEngine`] in production).
    pub fn runner(&self) -> &Arc<dyn BatchRunner> {
        &self.runner
    }

    /// The model's micro-batching scheduler.
    pub fn scheduler(&self) -> &BatchScheduler {
        &self.scheduler
    }
}

/// Maps model names to `Arc<FrozenEngine>`s with per-model schedulers.
///
/// # Example
///
/// ```
/// use pecan_serve::{demo, EngineRegistry, SchedulerConfig};
/// use std::sync::Arc;
///
/// let mut registry = EngineRegistry::new();
/// registry
///     .register(Arc::new(demo::mlp_engine(1)), SchedulerConfig::default())
///     .unwrap();
/// registry
///     .register(Arc::new(demo::lenet_engine(1)), SchedulerConfig::default())
///     .unwrap();
/// assert_eq!(registry.default_model().name(), "mlp"); // first registered
/// assert!(registry.resolve(Some("lenet")).is_ok());
/// assert!(registry.resolve(Some("nope")).is_err());
/// registry.shutdown();
/// ```
#[derive(Debug, Default)]
pub struct EngineRegistry {
    entries: Vec<ModelEntry>,
    default: usize,
}

/// Model names must be route-safe: non-empty, at most 64 bytes, drawn
/// from `[A-Za-z0-9_.-]`.
fn validate_name(name: &str) -> Result<(), ServeError> {
    if name.is_empty()
        || name.len() > 64
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
    {
        return Err(ServeError::BadInput(format!(
            "model name `{name}` must be 1–64 characters of [A-Za-z0-9_.-]"
        )));
    }
    Ok(())
}

impl EngineRegistry {
    /// An empty registry. The first registered model becomes the default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `engine` under its own name
    /// ([`FrozenEngine::name`], falling back to `"default"`), starting a
    /// dedicated scheduler with `config`.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for a route-unsafe or duplicate name.
    pub fn register(
        &mut self,
        engine: Arc<FrozenEngine>,
        config: SchedulerConfig,
    ) -> Result<(), ServeError> {
        let name = engine.name().unwrap_or("default").to_string();
        self.register_as(name, engine, config)
    }

    /// Registers `engine` under an explicit `name` (overriding any
    /// embedded one), starting a dedicated scheduler with `config`.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for a route-unsafe or duplicate name.
    pub fn register_as(
        &mut self,
        name: impl Into<String>,
        engine: Arc<FrozenEngine>,
        config: SchedulerConfig,
    ) -> Result<(), ServeError> {
        self.register_runner_as(name, engine as Arc<dyn BatchRunner>, config)
    }

    /// Registers an arbitrary [`BatchRunner`] under `name`. This is how
    /// tests plug deterministic doubles (gated runners, failure injectors)
    /// into the full HTTP serving stack; production code registers
    /// [`FrozenEngine`]s via [`EngineRegistry::register`].
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for a route-unsafe or duplicate name.
    pub fn register_runner_as(
        &mut self,
        name: impl Into<String>,
        runner: Arc<dyn BatchRunner>,
        config: SchedulerConfig,
    ) -> Result<(), ServeError> {
        let name = name.into();
        validate_name(&name)?;
        if self.entries.iter().any(|e| e.name == name) {
            return Err(ServeError::BadInput(format!(
                "model `{name}` is already registered"
            )));
        }
        let scheduler = BatchScheduler::start(Arc::clone(&runner), config);
        self.entries.push(ModelEntry { name, runner, scheduler });
        Ok(())
    }

    /// Makes `name` the model the bare routes serve.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when no such model is registered.
    pub fn set_default(&mut self, name: &str) -> Result<(), ServeError> {
        match self.entries.iter().position(|e| e.name == name) {
            Some(i) => {
                self.default = i;
                Ok(())
            }
            None => Err(ServeError::UnknownModel(name.to_string())),
        }
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered model names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The model the bare routes serve.
    ///
    /// # Panics
    ///
    /// Panics on an empty registry (the server refuses to start on one).
    pub fn default_model(&self) -> &ModelEntry {
        &self.entries[self.default]
    }

    /// Resolves a request's model: `None` means the default model, a name
    /// must match a registered one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] — the typed 404 of the HTTP front end.
    pub fn resolve(&self, name: Option<&str>) -> Result<&ModelEntry, ServeError> {
        match name {
            None => Ok(self.default_model()),
            Some(n) => self
                .entries
                .iter()
                .find(|e| e.name == n)
                .ok_or_else(|| ServeError::UnknownModel(n.to_string())),
        }
    }

    /// As [`EngineRegistry::resolve`], but returns the entry's index in
    /// [`EngineRegistry::entries`] — a stable handle the event-loop front
    /// end carries through asynchronous completions instead of a borrow.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] — the typed 404 of the HTTP front end.
    pub fn resolve_index(&self, name: Option<&str>) -> Result<usize, ServeError> {
        match name {
            None => Ok(self.default),
            Some(n) => self
                .entries
                .iter()
                .position(|e| e.name == n)
                .ok_or_else(|| ServeError::UnknownModel(n.to_string())),
        }
    }

    /// Per-model counters as one JSON object:
    /// `{"default":"<name>","models":{"<name>":{…},…}}`.
    pub fn stats_json(&self) -> String {
        let mut out = String::from("{\"default\":\"");
        out.push_str(&crate::json::escape(self.default_model().name()));
        out.push_str("\",\"models\":{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json::escape(&e.name));
            out.push_str("\":");
            out.push_str(&e.scheduler.stats().to_json());
        }
        out.push_str("}}");
        out
    }

    /// Shuts down every model's scheduler, draining queued requests.
    /// Idempotent.
    pub fn shutdown(&self) {
        for e in &self.entries {
            e.scheduler.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;

    #[test]
    fn names_are_validated_and_deduplicated() {
        let mut r = EngineRegistry::new();
        let engine = Arc::new(demo::mlp_engine(1));
        assert!(matches!(
            r.register_as("", engine.clone(), SchedulerConfig::default()),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            r.register_as("a/b", engine.clone(), SchedulerConfig::default()),
            Err(ServeError::BadInput(_))
        ));
        r.register_as("m-1", engine.clone(), SchedulerConfig::default()).unwrap();
        assert!(matches!(
            r.register_as("m-1", engine, SchedulerConfig::default()),
            Err(ServeError::BadInput(_))
        ));
        r.shutdown();
    }

    #[test]
    fn default_resolution_and_override() {
        let mut r = EngineRegistry::new();
        r.register(Arc::new(demo::mlp_engine(1)), SchedulerConfig::default()).unwrap();
        r.register(Arc::new(demo::lenet_engine(1)), SchedulerConfig::default()).unwrap();
        assert_eq!(r.names(), vec!["mlp", "lenet"]);
        assert_eq!(r.resolve(None).unwrap().name(), "mlp");
        r.set_default("lenet").unwrap();
        assert_eq!(r.resolve(None).unwrap().name(), "lenet");
        assert!(matches!(r.set_default("nope"), Err(ServeError::UnknownModel(_))));
        match r.resolve(Some("gone")) {
            Err(ServeError::UnknownModel(n)) => assert_eq!(n, "gone"),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        let json = r.stats_json();
        assert!(json.contains("\"default\":\"lenet\""));
        assert!(json.contains("\"mlp\":{\"submitted\""));
        r.shutdown();
    }
}

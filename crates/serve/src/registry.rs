//! Multi-model serving: a registry mapping model names to frozen engines,
//! each with its own micro-batching scheduler — plus the zero-downtime
//! model lifecycle (hot registration and blue/green reload).
//!
//! One process serves any number of snapshots side by side: every
//! registered model gets a dedicated [`BatchScheduler`] (its own bounded
//! queue, workers and [`ServeStats`](crate::ServeStats) counters) over an
//! `Arc`-shared [`FrozenEngine`], so traffic to one model never batches
//! with — or backpressures — another. The HTTP front end routes
//! `/models/{name}/predict` through [`EngineRegistry::resolve`]; the bare
//! `/predict` route serves the **default** model (the first one
//! registered, unless overridden), keeping single-model deployments and
//! old clients working unchanged.
//!
//! # Zero-downtime reload
//!
//! A [`ModelEntry`] is a stable *name* whose engine can be replaced while
//! requests are in flight ([`ModelEntry::reload_runner`], HTTP
//! `POST /models/{name}/reload`). The swap is blue/green:
//!
//! 1. a fresh [`BatchScheduler`] is started over the replacement engine,
//!    recording into the **same** stats store (counters and histograms
//!    continue across versions);
//! 2. the entry's current-version pointer is atomically swapped to it —
//!    new submissions land on the new engine from this instant;
//! 3. the retiring scheduler drains on a background thread: its
//!    `shutdown()` answers every request already queued, so **zero
//!    requests are dropped** — each one is answered by the engine version
//!    that accepted it.
//!
//! A submitter that loses the race (clones the old version, then the swap
//! lands and the old queue refuses with
//! [`ServeError::ShuttingDown`](crate::ServeError)) gets its payload back
//! and retries on the new version — see [`ModelEntry::predict`] /
//! [`ModelEntry::submit_with`]. The registry itself is append-only, so
//! the entry indices the event-loop front end carries through
//! asynchronous completions stay valid across reloads and live
//! registrations.

use crate::error::ServeError;
use crate::scheduler::{BatchRunner, BatchScheduler, Complete, Prediction, SchedulerConfig};
use crate::stats::{ServeStats, StatsSnapshot};
use crate::FrozenEngine;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Poison-tolerant shared lock (a panicked worker must not wedge serving).
fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How a model's snapshot file is (re)loaded from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// [`FrozenEngine::load_snapshot`]: decode to the heap, verify every
    /// checksum.
    Copy,
    /// [`FrozenEngine::open_snapshot`]: memory-map v3 files and borrow
    /// the mapping (falls back to copying where unsupported).
    Map,
}

/// Where a model's bytes came from — kept so `POST /models/{name}/reload`
/// and the directory watcher can re-read the same file the same way.
#[derive(Debug, Clone)]
pub struct ModelSource {
    /// Snapshot file path.
    pub path: PathBuf,
    /// Loader used at registration (and for every reload).
    pub mode: LoadMode,
}

impl ModelSource {
    /// Loads an engine from this source.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] wrapping the snapshot error.
    pub fn load(&self) -> Result<FrozenEngine, ServeError> {
        let loaded = match self.mode {
            LoadMode::Copy => FrozenEngine::load_snapshot(&self.path),
            LoadMode::Map => FrozenEngine::open_snapshot(&self.path),
        };
        loaded.map_err(|e| {
            ServeError::Engine(format!("loading {}: {e}", self.path.display()))
        })
    }
}

/// One immutable generation of a served model: an engine (or test runner)
/// plus the scheduler feeding it. Replaced wholesale on reload.
struct ModelVersion {
    runner: Arc<dyn BatchRunner>,
    scheduler: BatchScheduler,
    version: u64,
}

/// One served model *name*: stable identity, per-model stats, and a
/// swappable current engine version. See the module docs for the
/// reload protocol.
pub struct ModelEntry {
    name: String,
    config: SchedulerConfig,
    stats: Arc<ServeStats>,
    current: RwLock<Arc<ModelVersion>>,
    /// Latest version number handed out (the current version's, except
    /// transiently during a swap).
    versions: AtomicU64,
    source: Mutex<Option<ModelSource>>,
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("name", &self.name)
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

impl ModelEntry {
    fn start(name: String, runner: Arc<dyn BatchRunner>, config: SchedulerConfig) -> Self {
        let stats = Arc::new(ServeStats::with_stages(&runner.stage_kinds()));
        let scheduler = BatchScheduler::start_with_stats(
            Arc::clone(&runner),
            config.clone(),
            Arc::clone(&stats),
        );
        Self {
            name,
            config,
            stats,
            current: RwLock::new(Arc::new(ModelVersion { runner, scheduler, version: 1 })),
            versions: AtomicU64::new(1),
            source: Mutex::new(None),
        }
    }

    /// The name the model serves under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The currently served engine generation, starting at 1 and
    /// incremented by every reload.
    pub fn version(&self) -> u64 {
        // ordering: Relaxed — pairs with the fetch_add in
        // `reload_runner`. The counter is a label, not a guard: anyone
        // needing the version *and* its engine coherently reads both out
        // of the `current` RwLock, which orders the publication.
        self.versions.load(Ordering::Relaxed)
    }

    /// The current batch runner (a [`FrozenEngine`] in production).
    pub fn runner(&self) -> Arc<dyn BatchRunner> {
        Arc::clone(&read(&self.current).runner)
    }

    /// Live counters (shared across engine versions).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The live stats store itself — histograms included.
    pub fn serve_stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Requests waiting in the current version's queue (advisory).
    pub fn queue_len(&self) -> usize {
        read(&self.current).scheduler.queue_len()
    }

    /// The scheduler configuration every version runs with.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The snapshot file backing this model, when known.
    pub fn source(&self) -> Option<ModelSource> {
        lock(&self.source).clone()
    }

    /// Records where this model's bytes came from, enabling
    /// [`ModelEntry::reload_from_source`].
    pub fn set_source(&self, path: impl Into<PathBuf>, mode: LoadMode) {
        *lock(&self.source) = Some(ModelSource { path: path.into(), mode });
    }

    /// Submits one request and waits for the answer, riding out an engine
    /// swap: if the grabbed version starts draining before the request is
    /// queued, the payload comes back and is resubmitted to the
    /// replacement version — no request is dropped by a reload.
    ///
    /// # Errors
    ///
    /// As for [`BatchScheduler::submit`]; [`ServeError::ShuttingDown`]
    /// only when the whole entry is shutting down for good.
    pub fn predict(&self, input: Vec<f32>) -> Result<Prediction, ServeError> {
        let mut input = input;
        loop {
            let version = Arc::clone(&read(&self.current));
            match version.scheduler.try_submit(input) {
                Ok(ticket) => return ticket.wait(),
                Err((ServeError::ShuttingDown, returned))
                    if self.version() > version.version =>
                {
                    // Lost the race against a reload; go again on the
                    // replacement.
                    input = returned;
                }
                Err((e, _)) => return Err(e),
            }
        }
    }

    /// As [`ModelEntry::predict`] but completion-callback shaped (the
    /// event-loop front end), with the same retry-across-reload guarantee.
    ///
    /// # Errors
    ///
    /// As for [`BatchScheduler::submit_with`]. On error the callback has
    /// not been invoked.
    pub fn submit_with(&self, input: Vec<f32>, complete: Complete) -> Result<(), ServeError> {
        let mut pair = (input, complete);
        loop {
            let version = Arc::clone(&read(&self.current));
            match version.scheduler.try_submit_with(pair.0, pair.1) {
                Ok(()) => return Ok(()),
                Err((ServeError::ShuttingDown, input, complete))
                    if self.version() > version.version =>
                {
                    pair = (input, complete);
                }
                Err((e, _, _)) => return Err(e),
            }
        }
    }

    /// Blue/green engine swap (see the module docs): starts a fresh
    /// scheduler over `runner`, atomically makes it current, and drains
    /// the retiring scheduler on a background thread. Returns the new
    /// version number. Requests already queued on the old version are
    /// answered by the old engine; nothing is dropped.
    pub fn reload_runner(&self, runner: Arc<dyn BatchRunner>) -> u64 {
        let scheduler = BatchScheduler::start_with_stats(
            Arc::clone(&runner),
            self.config.clone(),
            Arc::clone(&self.stats),
        );
        // ordering: Relaxed — the RMW's atomicity alone guarantees a
        // unique version number; the swap below publishes the new
        // `ModelVersion` (which embeds the number) through the `current`
        // RwLock's release/acquire.
        let version = self.versions.fetch_add(1, Ordering::Relaxed) + 1;
        let fresh = Arc::new(ModelVersion { runner, scheduler, version });
        let old = std::mem::replace(&mut *write(&self.current), fresh);
        // Drain off the request path. If the spawn itself fails the
        // closure is dropped here, and dropping the old version's
        // scheduler shuts it down inline — slower, still zero-drop.
        let _ = std::thread::Builder::new()
            .name("pecan-drain".into())
            .spawn(move || old.scheduler.shutdown());
        version
    }

    /// [`ModelEntry::reload_runner`] with a [`FrozenEngine`].
    pub fn reload_engine(&self, engine: Arc<FrozenEngine>) -> u64 {
        self.reload_runner(engine as Arc<dyn BatchRunner>)
    }

    /// Re-reads the snapshot file recorded by [`ModelEntry::set_source`]
    /// (same path, same [`LoadMode`]) and swaps the result in.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when no source is recorded (models
    /// registered from memory cannot be reloaded from disk);
    /// [`ServeError::Engine`] when the file no longer loads — the
    /// current version keeps serving untouched in that case.
    pub fn reload_from_source(&self) -> Result<u64, ServeError> {
        let source = self.source().ok_or_else(|| {
            ServeError::BadInput(format!(
                "model `{}` has no snapshot source to reload from",
                self.name
            ))
        })?;
        let engine = source.load()?;
        Ok(self.reload_engine(Arc::new(engine)))
    }

    /// Stops the current scheduler, draining queued requests.
    fn shutdown(&self) {
        read(&self.current).scheduler.shutdown();
    }
}

/// Maps model names to `Arc<FrozenEngine>`s with per-model schedulers.
/// Interior-mutable: registration and reload take `&self`, so one
/// registry can be shared (`Arc`) by the HTTP front ends, the directory
/// watcher and operator tooling at once.
///
/// # Example
///
/// ```
/// use pecan_serve::{demo, EngineRegistry, SchedulerConfig};
/// use std::sync::Arc;
///
/// let registry = EngineRegistry::new();
/// registry
///     .register(Arc::new(demo::mlp_engine(1)), SchedulerConfig::default())
///     .unwrap();
/// registry
///     .register(Arc::new(demo::lenet_engine(1)), SchedulerConfig::default())
///     .unwrap();
/// assert_eq!(registry.default_model().name(), "mlp"); // first registered
/// assert!(registry.resolve(Some("lenet")).is_ok());
/// assert!(registry.resolve(Some("nope")).is_err());
/// registry.shutdown();
/// ```
#[derive(Debug, Default)]
pub struct EngineRegistry {
    /// Append-only: entries are never removed or reordered, so an index
    /// from [`EngineRegistry::resolve_index`] stays valid forever.
    entries: RwLock<Vec<Arc<ModelEntry>>>,
    default: AtomicUsize,
}

/// Model names must be route-safe: non-empty, at most 64 bytes, drawn
/// from `[A-Za-z0-9_.-]`.
pub(crate) fn validate_name(name: &str) -> Result<(), ServeError> {
    if name.is_empty()
        || name.len() > 64
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
    {
        return Err(ServeError::BadInput(format!(
            "model name `{name}` must be 1–64 characters of [A-Za-z0-9_.-]"
        )));
    }
    Ok(())
}

impl EngineRegistry {
    /// An empty registry. The first registered model becomes the default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `engine` under its own name
    /// ([`FrozenEngine::name`], falling back to `"default"`), starting a
    /// dedicated scheduler with `config`. Safe while serving: requests
    /// racing the registration simply don't see the new name yet.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for a route-unsafe or duplicate name.
    pub fn register(
        &self,
        engine: Arc<FrozenEngine>,
        config: SchedulerConfig,
    ) -> Result<(), ServeError> {
        let name = engine.name().unwrap_or("default").to_string();
        self.register_as(name, engine, config)
    }

    /// Registers `engine` under an explicit `name` (overriding any
    /// embedded one), starting a dedicated scheduler with `config`.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for a route-unsafe or duplicate name.
    pub fn register_as(
        &self,
        name: impl Into<String>,
        engine: Arc<FrozenEngine>,
        config: SchedulerConfig,
    ) -> Result<(), ServeError> {
        self.register_runner_as(name, engine as Arc<dyn BatchRunner>, config)
    }

    /// Registers a snapshot file under `name`, loading it with `mode` and
    /// recording the source so `/models/{name}/reload` and the directory
    /// watcher can re-read it later.
    ///
    /// # Errors
    ///
    /// [`ServeError::Engine`] when the file does not load;
    /// [`ServeError::BadInput`] for a route-unsafe or duplicate name.
    pub fn register_file(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        mode: LoadMode,
        config: SchedulerConfig,
    ) -> Result<(), ServeError> {
        let name = name.into();
        let source = ModelSource { path: path.as_ref().to_path_buf(), mode };
        let engine = source.load()?;
        self.register_as(name.clone(), Arc::new(engine), config)?;
        if let Ok(entry) = self.resolve(Some(&name)) {
            entry.set_source(source.path, source.mode);
        }
        Ok(())
    }

    /// Registers an arbitrary [`BatchRunner`] under `name`. This is how
    /// tests plug deterministic doubles (gated runners, failure injectors)
    /// into the full HTTP serving stack; production code registers
    /// [`FrozenEngine`]s via [`EngineRegistry::register`].
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for a route-unsafe or duplicate name.
    pub fn register_runner_as(
        &self,
        name: impl Into<String>,
        runner: Arc<dyn BatchRunner>,
        config: SchedulerConfig,
    ) -> Result<(), ServeError> {
        let name = name.into();
        validate_name(&name)?;
        let mut entries = write(&self.entries);
        if entries.iter().any(|e| e.name == name) {
            return Err(ServeError::BadInput(format!(
                "model `{name}` is already registered"
            )));
        }
        entries.push(Arc::new(ModelEntry::start(name, runner, config)));
        Ok(())
    }

    /// Makes `name` the model the bare routes serve.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when no such model is registered.
    pub fn set_default(&self, name: &str) -> Result<(), ServeError> {
        match read(&self.entries).iter().position(|e| e.name == name) {
            Some(i) => {
                // ordering: Relaxed — stores an index into the
                // append-only `entries` Vec. Any reader got (or will
                // get) the Vec contents through the `entries` RwLock,
                // which provides the happens-before for the entry the
                // index points at; the index itself carries no payload.
                self.default.store(i, Ordering::Relaxed);
                Ok(())
            }
            None => Err(ServeError::UnknownModel(name.to_string())),
        }
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        read(&self.entries).len()
    }

    /// `true` when nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        read(&self.entries).is_empty()
    }

    /// Registered model names, in registration order.
    pub fn names(&self) -> Vec<String> {
        read(&self.entries).iter().map(|e| e.name.clone()).collect()
    }

    /// A snapshot of all entries, in registration order (cheap `Arc`
    /// clones).
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        read(&self.entries).clone()
    }

    /// The entry at `idx` (an index from
    /// [`EngineRegistry::resolve_index`]; the registry is append-only, so
    /// such indices never dangle).
    ///
    /// # Panics
    ///
    /// Panics on an index that never came from `resolve_index`.
    pub fn entry(&self, idx: usize) -> Arc<ModelEntry> {
        Arc::clone(&read(&self.entries)[idx])
    }

    /// The model the bare routes serve.
    ///
    /// # Panics
    ///
    /// Panics on an empty registry (the server refuses to start on one).
    pub fn default_model(&self) -> Arc<ModelEntry> {
        // ordering: Relaxed — pairs with the store in `set_default`; see
        // there (the `entries` RwLock orders the Vec the index selects).
        self.entry(self.default.load(Ordering::Relaxed))
    }

    /// Resolves a request's model: `None` means the default model, a name
    /// must match a registered one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] — the typed 404 of the HTTP front end.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<ModelEntry>, ServeError> {
        match name {
            None => Ok(self.default_model()),
            Some(n) => read(&self.entries)
                .iter()
                .find(|e| e.name == n)
                .map(Arc::clone)
                .ok_or_else(|| ServeError::UnknownModel(n.to_string())),
        }
    }

    /// As [`EngineRegistry::resolve`], but returns the entry's index — a
    /// stable handle the event-loop front end carries through
    /// asynchronous completions instead of a borrow.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] — the typed 404 of the HTTP front end.
    pub fn resolve_index(&self, name: Option<&str>) -> Result<usize, ServeError> {
        match name {
            // ordering: Relaxed — same pairing as `default_model`.
            None => Ok(self.default.load(Ordering::Relaxed)),
            Some(n) => read(&self.entries)
                .iter()
                .position(|e| e.name == n)
                .ok_or_else(|| ServeError::UnknownModel(n.to_string())),
        }
    }

    /// Reloads `name` (or the default model) from its recorded snapshot
    /// source. Returns the entry and its new version number.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered name; otherwise
    /// as [`ModelEntry::reload_from_source`].
    pub fn reload(&self, name: Option<&str>) -> Result<(Arc<ModelEntry>, u64), ServeError> {
        let entry = self.resolve(name)?;
        let version = entry.reload_from_source()?;
        Ok((entry, version))
    }

    /// Per-model counters as one JSON object:
    /// `{"default":"<name>","models":{"<name>":{…},…}}`.
    pub fn stats_json(&self) -> String {
        let mut out = String::from("{\"default\":\"");
        out.push_str(&crate::json::escape(self.default_model().name()));
        out.push_str("\",\"models\":{");
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json::escape(&e.name));
            out.push_str("\":");
            out.push_str(&e.stats().to_json());
        }
        out.push_str("}}");
        out
    }

    /// Shuts down every model's scheduler, draining queued requests.
    /// Idempotent.
    pub fn shutdown(&self) {
        for e in self.entries() {
            e.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;

    #[test]
    fn names_are_validated_and_deduplicated() {
        let r = EngineRegistry::new();
        let engine = Arc::new(demo::mlp_engine(1));
        assert!(matches!(
            r.register_as("", engine.clone(), SchedulerConfig::default()),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(
            r.register_as("a/b", engine.clone(), SchedulerConfig::default()),
            Err(ServeError::BadInput(_))
        ));
        r.register_as("m-1", engine.clone(), SchedulerConfig::default()).unwrap();
        assert!(matches!(
            r.register_as("m-1", engine, SchedulerConfig::default()),
            Err(ServeError::BadInput(_))
        ));
        r.shutdown();
    }

    #[test]
    fn default_resolution_and_override() {
        let r = EngineRegistry::new();
        r.register(Arc::new(demo::mlp_engine(1)), SchedulerConfig::default()).unwrap();
        r.register(Arc::new(demo::lenet_engine(1)), SchedulerConfig::default()).unwrap();
        assert_eq!(r.names(), vec!["mlp", "lenet"]);
        assert_eq!(r.resolve(None).unwrap().name(), "mlp");
        r.set_default("lenet").unwrap();
        assert_eq!(r.resolve(None).unwrap().name(), "lenet");
        assert!(matches!(r.set_default("nope"), Err(ServeError::UnknownModel(_))));
        match r.resolve(Some("gone")) {
            Err(ServeError::UnknownModel(n)) => assert_eq!(n, "gone"),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        let json = r.stats_json();
        assert!(json.contains("\"default\":\"lenet\""));
        assert!(json.contains("\"mlp\":{\"submitted\""));
        r.shutdown();
    }

    #[test]
    fn reload_swaps_versions_and_keeps_counters() {
        let r = EngineRegistry::new();
        r.register(Arc::new(demo::mlp_engine(1)), SchedulerConfig::default()).unwrap();
        let entry = r.resolve(Some("mlp")).unwrap();
        assert_eq!(entry.version(), 1);
        let input = vec![0.5f32; entry.runner().input_len()];
        let before = entry.predict(input.clone()).unwrap();
        assert_eq!(entry.stats().completed, 1);

        // Same weights, new generation: answers stay bit-identical and
        // the counters continue rather than reset.
        let v = entry.reload_engine(Arc::new(demo::mlp_engine(1)));
        assert_eq!(v, 2);
        assert_eq!(entry.version(), 2);
        let after = entry.predict(input.clone()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(entry.stats().completed, 2, "stats survive the swap");

        // Different weights change the answer — proof the swap took.
        entry.reload_engine(Arc::new(demo::mlp_engine(7)));
        let changed = entry.predict(input).unwrap();
        assert_ne!(changed.output, before.output);
        r.shutdown();
    }

    #[test]
    fn reload_from_source_requires_a_source_and_survives_bad_files() {
        let dir = std::env::temp_dir().join(format!("pecan-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.psnp");
        demo::mlp_engine(3).save_snapshot(&path).unwrap();

        let r = EngineRegistry::new();
        // In-memory models have nothing to reload from.
        r.register(Arc::new(demo::mlp_engine(3)), SchedulerConfig::default()).unwrap();
        assert!(matches!(r.reload(Some("mlp")), Err(ServeError::BadInput(_))));

        r.register_file("disk", &path, LoadMode::Copy, SchedulerConfig::default()).unwrap();
        let entry = r.resolve(Some("disk")).unwrap();
        assert_eq!(entry.source().unwrap().path, path);
        let (_, v) = r.reload(Some("disk")).unwrap();
        assert_eq!(v, 2);

        // A reload from a corrupt file fails without touching the
        // serving version.
        std::fs::write(&path, b"PECANSNPgarbage").unwrap();
        assert!(matches!(r.reload(Some("disk")), Err(ServeError::Engine(_))));
        assert_eq!(entry.version(), 2, "failed reload must not swap");
        let input = vec![0.5f32; entry.runner().input_len()];
        assert!(entry.predict(input).is_ok(), "old version keeps serving");

        assert!(matches!(r.reload(Some("nope")), Err(ServeError::UnknownModel(_))));
        r.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Polling model-catalog watcher: a directory of snapshots as the source
//! of truth for what the server serves.
//!
//! [`ModelWatcher::start`] spawns one background thread that scans a
//! directory every `interval` for `*.psnp` files. The file stem is the
//! model name (it must pass the registry's route-safety rules — anything
//! else is skipped with a warning):
//!
//! * a **new** file is registered ([`EngineRegistry::register_file`]) and
//!   becomes routable immediately — hot add, no restart;
//! * a **changed** file (modification time or length moved) triggers a
//!   blue/green [`reload`](crate::ModelEntry::reload_from_source) of the
//!   already-registered model — zero requests dropped;
//! * a file that fails to load is logged and left alone until it changes
//!   again, so a half-written snapshot can't crash-loop the watcher —
//!   write snapshots to a temp name and `rename(2)` into the directory
//!   for atomic publication.
//!
//! Files are never *un*registered: the registry is append-only (entry
//! indices must stay valid for in-flight work), so deleting a file stops
//! future reloads but the last good engine keeps serving.
//!
//! The watcher polls instead of using inotify on purpose: mtime+length
//! polling is portable, survives editor/rsync/NFS semantics that break
//! watch APIs, and at the default 2s interval costs one `readdir` plus a
//! `stat` per model — nothing next to inference.

use crate::registry::{validate_name, EngineRegistry, LoadMode};
use crate::scheduler::SchedulerConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// What [`ModelWatcher`] watches and how.
#[derive(Debug, Clone)]
pub struct WatcherConfig {
    /// Directory scanned for `*.psnp` snapshot files.
    pub dir: PathBuf,
    /// Scan period. The first scan happens immediately on start.
    pub interval: Duration,
    /// Loader for discovered files ([`LoadMode::Map`] serves them from
    /// page cache).
    pub mode: LoadMode,
    /// Scheduler configuration for newly registered models.
    pub scheduler: SchedulerConfig,
}

/// One `(mtime, len)` stamp; a change in either re-triggers the file.
type Stamp = (Option<SystemTime>, u64);

/// A running catalog watcher. Stops (flag + join) on drop or
/// [`ModelWatcher::stop`].
#[derive(Debug)]
pub struct ModelWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ModelWatcher {
    /// Starts watching: scans once right away, then every
    /// `config.interval` until stopped. Registration and reload go through
    /// `registry`'s interior mutability, so the server keeps serving
    /// throughout.
    pub fn start(registry: Arc<EngineRegistry>, config: WatcherConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pecan-watch".into())
            .spawn(move || {
                let mut seen: HashMap<String, Stamp> = HashMap::new();
                // ordering: Relaxed — pure stop flag, pairs with the
                // store in `stop()`. No data rides on it (the registry
                // has its own locks) and the sleep-slice poll bounds how
                // stale a read can be, so no ordering is needed.
                while !flag.load(Ordering::Relaxed) {
                    scan(&registry, &config, &mut seen);
                    // Sleep in short slices so stop()/drop joins promptly
                    // even with long scan intervals.
                    let mut left = config.interval;
                    // ordering: Relaxed — same flag as above.
                    while !left.is_zero() && !flag.load(Ordering::Relaxed) {
                        let nap = left.min(Duration::from_millis(25));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })
            .expect("spawning the model watcher");
        Self { stop, handle: Some(handle) }
    }

    /// Stops the scan loop and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        // ordering: Relaxed — pairs with the polling loads in the watch
        // thread; `join` below provides all the synchronization the
        // caller observes.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ModelWatcher {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One pass over the directory: register new snapshots, reload changed
/// ones, remember failures so they retry only when the file changes.
fn scan(
    registry: &EngineRegistry,
    config: &WatcherConfig,
    seen: &mut HashMap<String, Stamp>,
) {
    let entries = match std::fs::read_dir(&config.dir) {
        Ok(e) => e,
        Err(e) => {
            crate::log_warn!(
                "serve::watcher",
                "cannot read model directory",
                dir = config.dir.display(),
                error = e,
            );
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("psnp") {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(str::to_string)
        else {
            continue;
        };
        if validate_name(&name).is_err() {
            crate::log_warn!(
                "serve::watcher",
                "skipping snapshot with route-unsafe name",
                file = path.display(),
            );
            continue;
        }
        let stamp: Stamp = match entry.metadata() {
            Ok(m) => (m.modified().ok(), m.len()),
            Err(_) => continue, // raced a delete; next scan sees the truth
        };
        let first_sighting = !seen.contains_key(&name);
        if seen.get(&name) == Some(&stamp) {
            continue; // unchanged since last scan
        }
        seen.insert(name.clone(), stamp);

        match registry.resolve(Some(&name)) {
            Err(_) => {
                // Unknown name: a new model enters the catalog.
                match registry.register_file(name.as_str(), &path, config.mode, config.scheduler.clone())
                {
                    Ok(()) => crate::log_info!(
                        "serve::watcher",
                        "registered model",
                        model = name,
                        file = path.display(),
                    ),
                    Err(e) => crate::log_warn!(
                        "serve::watcher",
                        "snapshot does not load; will retry when it changes",
                        file = path.display(),
                        error = e,
                    ),
                }
            }
            Ok(model) if first_sighting => {
                // Already registered outside the watcher (e.g. --snapshot
                // pointing into the watched directory). Adopt the file as
                // the model's reload source but don't spuriously reload.
                if model.source().is_none() {
                    model.set_source(&path, config.mode);
                }
            }
            Ok(model) => {
                model.set_source(&path, config.mode);
                match model.reload_from_source() {
                    Ok(version) => crate::log_info!(
                        "serve::watcher",
                        "reloaded model",
                        model = name,
                        version = version,
                    ),
                    Err(e) => crate::log_warn!(
                        "serve::watcher",
                        "reload failed; previous version keeps serving",
                        model = name,
                        error = e,
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;

    fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !ok() {
            assert!(std::time::Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn watcher_hot_adds_reloads_and_survives_bad_files() {
        let dir = std::env::temp_dir().join(format!("pecan-watch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        demo::mlp_engine(1).save_snapshot(dir.join("alpha.psnp")).unwrap();
        std::fs::write(dir.join("not-a-model.txt"), b"ignored").unwrap();
        std::fs::write(dir.join("bad name!.psnp"), b"route-unsafe, skipped").unwrap();

        let registry = Arc::new(EngineRegistry::new());
        let mut watcher = ModelWatcher::start(
            Arc::clone(&registry),
            WatcherConfig {
                dir: dir.clone(),
                interval: Duration::from_millis(10),
                mode: LoadMode::Copy,
                scheduler: SchedulerConfig::default(),
            },
        );

        // Hot add: the pre-existing snapshot appears without any restart.
        wait_until("alpha to register", || registry.resolve(Some("alpha")).is_ok());
        let alpha = registry.resolve(Some("alpha")).unwrap();
        assert_eq!(alpha.version(), 1);
        let input = vec![0.5f32; alpha.runner().input_len()];
        let before = alpha.predict(input.clone()).unwrap();

        // A snapshot that doesn't load is skipped, not fatal, and doesn't
        // crash-loop the watcher.
        std::fs::write(dir.join("beta.psnp"), b"PECANSNPtruncated").unwrap();
        // Replace alpha's file with different weights: blue/green reload.
        demo::mlp_engine(9).save_snapshot(dir.join("alpha.psnp")).unwrap();
        wait_until("alpha to reload", || alpha.version() >= 2);
        let after = alpha.predict(input).unwrap();
        assert_ne!(after.output, before.output, "reload must swap the weights");
        assert!(registry.resolve(Some("beta")).is_err(), "bad file must not register");

        // Fixing the bad file registers it on a later scan.
        demo::lenet_engine(2).save_snapshot(dir.join("beta.psnp")).unwrap();
        wait_until("beta to register", || registry.resolve(Some("beta")).is_ok());

        watcher.stop();
        registry.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

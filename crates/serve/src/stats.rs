//! Lock-free serving counters: per-request latency accounting aggregated
//! across scheduler workers, exported by the HTTP front end's `/stats`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters updated by the scheduler with relaxed atomics — the
/// hot path never takes a lock to account a request.
#[derive(Debug, Default)]
pub struct ServeStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    queue_ns_total: AtomicU64,
    total_ns_total: AtomicU64,
    total_ns_max: AtomicU64,
}

impl ServeStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, queue_ns: u64, total_ns: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.queue_ns_total.fetch_add(queue_ns, Ordering::Relaxed);
        self.total_ns_total.fetch_add(total_ns, Ordering::Relaxed);
        self.total_ns_max.fetch_max(total_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Coherent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let div = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch: div(self.batched_requests.load(Ordering::Relaxed), batches),
            mean_queue_us: div(self.queue_ns_total.load(Ordering::Relaxed), completed) / 1_000.0,
            mean_latency_us: div(self.total_ns_total.load(Ordering::Relaxed), completed) / 1_000.0,
            max_latency_us: self.total_ns_max.load(Ordering::Relaxed) / 1_000,
        }
    }
}

/// One reading of [`ServeStats`], ready for display or JSON export.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests refused by backpressure (queue full).
    pub rejected: u64,
    /// Requests answered with an engine error.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Mean requests per executed batch.
    pub mean_batch: f64,
    /// Mean time a request waited in the queue before its batch started.
    pub mean_queue_us: f64,
    /// Mean submit→answer latency.
    pub mean_latency_us: f64,
    /// Worst submit→answer latency.
    pub max_latency_us: u64,
}

impl StatsSnapshot {
    /// Renders the snapshot as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"completed\":{},\"rejected\":{},\"failed\":{},\
             \"batches\":{},\"mean_batch\":{:.3},\"mean_queue_us\":{:.1},\
             \"mean_latency_us\":{:.1},\"max_latency_us\":{}}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.failed,
            self.batches,
            self.mean_batch,
            self.mean_queue_us,
            self.mean_latency_us,
            self.max_latency_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_and_export() {
        let stats = ServeStats::new();
        stats.record_submitted();
        stats.record_submitted();
        stats.record_rejected();
        stats.record_batch(2);
        stats.record_completed(1_000, 3_000);
        stats.record_completed(2_000, 5_000);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.batches, 1);
        assert!((snap.mean_batch - 2.0).abs() < 1e-9);
        assert!((snap.mean_queue_us - 1.5).abs() < 1e-9);
        assert!((snap.mean_latency_us - 4.0).abs() < 1e-9);
        assert_eq!(snap.max_latency_us, 5);
        let json = snap.to_json();
        assert!(json.contains("\"completed\":2"));
        assert!(json.contains("\"mean_batch\":2.000"));
    }
}

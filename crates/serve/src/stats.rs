//! Lock-free serving counters: per-request latency accounting aggregated
//! across scheduler workers, exported by the HTTP front end's `/stats`
//! and (with full distributions) by `/metrics`.

use crate::obs::{Histogram, StageObserver};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters plus latency/batch-size [`Histogram`]s, updated by
/// the scheduler with relaxed atomics — the hot path never takes a lock
/// to account a request.
///
/// The histograms record in nanoseconds (latencies) and requests
/// (batch size); `stage_histograms` carries one histogram per stage
/// *kind* of the model's pipeline (fed through the [`StageObserver`]
/// impl from inside `FrozenEngine::infer_observed`).
#[derive(Debug, Default)]
pub struct ServeStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    queue_ns_total: AtomicU64,
    total_ns_total: AtomicU64,
    total_ns_max: AtomicU64,
    latency: Histogram,
    queue: Histogram,
    infer: Histogram,
    batch_size: Histogram,
    stages: Vec<(&'static str, Histogram)>,
}

impl ServeStats {
    /// Fresh, all-zero counters with no per-stage histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh counters with one named histogram per stage kind (duplicate
    /// kinds share one histogram slot upstream, so `kinds` is expected
    /// deduplicated — see `FrozenEngine::stage_kinds`).
    pub fn with_stages(kinds: &[&'static str]) -> Self {
        Self { stages: kinds.iter().map(|k| (*k, Histogram::new())).collect(), ..Self::default() }
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one executed batch and returns its batch ID (1-based,
    /// unique per scheduler) for request tracing.
    pub(crate) fn record_batch(&self, size: usize) -> u64 {
        let id = self.batches.fetch_add(1, Ordering::Relaxed) + 1;
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
        self.batch_size.record(size as u64);
        id
    }

    pub(crate) fn record_completed(&self, queue_ns: u64, total_ns: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.queue_ns_total.fetch_add(queue_ns, Ordering::Relaxed);
        self.total_ns_total.fetch_add(total_ns, Ordering::Relaxed);
        self.total_ns_max.fetch_max(total_ns, Ordering::Relaxed);
        self.latency.record(total_ns);
        self.queue.record(queue_ns);
        self.infer.record(total_ns.saturating_sub(queue_ns));
    }

    pub(crate) fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Submit→answer latency distribution, nanoseconds.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// Queue-wait distribution, nanoseconds.
    pub fn queue_histogram(&self) -> &Histogram {
        &self.queue
    }

    /// Batch-start→answer (inference + dispatch) distribution, ns.
    pub fn infer_histogram(&self) -> &Histogram {
        &self.infer
    }

    /// Requests-per-executed-batch distribution.
    pub fn batch_size_histogram(&self) -> &Histogram {
        &self.batch_size
    }

    /// Per-stage wall-time histograms, nanoseconds per batch, keyed by
    /// stage kind. Empty unless built with [`ServeStats::with_stages`].
    pub fn stage_histograms(&self) -> &[(&'static str, Histogram)] {
        &self.stages
    }

    /// Coherent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let latency = self.latency.snapshot();
        let div = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch: div(self.batched_requests.load(Ordering::Relaxed), batches),
            mean_queue_us: div(self.queue_ns_total.load(Ordering::Relaxed), completed) / 1_000.0,
            mean_latency_us: div(self.total_ns_total.load(Ordering::Relaxed), completed) / 1_000.0,
            max_latency_us: self.total_ns_max.load(Ordering::Relaxed) / 1_000,
            p50_latency_us: latency.quantile(0.50) / 1_000,
            p90_latency_us: latency.quantile(0.90) / 1_000,
            p99_latency_us: latency.quantile(0.99) / 1_000,
            p999_latency_us: latency.quantile(0.999) / 1_000,
        }
    }
}

impl StageObserver for ServeStats {
    fn record_stage(&self, stage: &'static str, wall_ns: u64) {
        // Linear scan: pipelines have a handful of stage kinds, and a
        // lookup table would cost more than the compare loop.
        if let Some((_, h)) = self.stages.iter().find(|(k, _)| *k == stage) {
            h.record(wall_ns);
        }
    }
}

/// One reading of [`ServeStats`], ready for display or JSON export.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests refused by backpressure (queue full).
    pub rejected: u64,
    /// Requests answered with an engine error.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Mean requests per executed batch.
    pub mean_batch: f64,
    /// Mean time a request waited in the queue before its batch started.
    pub mean_queue_us: f64,
    /// Mean submit→answer latency.
    pub mean_latency_us: f64,
    /// Worst submit→answer latency.
    pub max_latency_us: u64,
    /// Median submit→answer latency (histogram upper bound).
    pub p50_latency_us: u64,
    /// 90th-percentile submit→answer latency (histogram upper bound).
    pub p90_latency_us: u64,
    /// 99th-percentile submit→answer latency (histogram upper bound).
    pub p99_latency_us: u64,
    /// 99.9th-percentile submit→answer latency (histogram upper bound).
    pub p999_latency_us: u64,
}

impl StatsSnapshot {
    /// Renders the snapshot as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"completed\":{},\"rejected\":{},\"failed\":{},\
             \"batches\":{},\"mean_batch\":{:.3},\"mean_queue_us\":{:.1},\
             \"mean_latency_us\":{:.1},\"max_latency_us\":{},\
             \"p50_latency_us\":{},\"p90_latency_us\":{},\
             \"p99_latency_us\":{},\"p999_latency_us\":{}}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.failed,
            self.batches,
            self.mean_batch,
            self.mean_queue_us,
            self.mean_latency_us,
            self.max_latency_us,
            self.p50_latency_us,
            self.p90_latency_us,
            self.p99_latency_us,
            self.p999_latency_us,
        )
    }
}

/// Coarse observable state of one front-end connection, used as the gauge
/// key in [`ConnStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnTag {
    /// No backlog: waiting for request bytes.
    Reading,
    /// At least one submitted inference has not answered yet.
    Handling,
    /// Unflushed response bytes are waiting for the socket.
    Writing,
}

/// Connection-tier counters for the HTTP front end, exported under the
/// `"connections"` key of the bare `/stats` route and as gauges under
/// `/metrics`.
///
/// Both front ends maintain every field — lifecycle counters
/// (`accepted`/`closed`/`requests`/`responses`/`timeouts`/`shed_*`) and
/// the per-state gauges (`reading`/`handling`/`writing`) plus
/// `inflight`. In the event loop a connection's tag reflects its state
/// machine (write backlog beats pending inference); in the threaded
/// front end each connection thread retags itself around the blocking
/// predict and write calls, so `handling` counts connections waiting on
/// a scheduler and `writing` counts connections mid-flush.
#[derive(Debug, Default)]
pub struct ConnStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    active: AtomicU64,
    reading: AtomicU64,
    handling: AtomicU64,
    writing: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    inflight: AtomicU64,
    timeouts: AtomicU64,
    shed_connections: AtomicU64,
    shed_requests: AtomicU64,
}

impl ConnStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Connections currently open (gauge).
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    fn gauge(&self, tag: ConnTag) -> &AtomicU64 {
        match tag {
            ConnTag::Reading => &self.reading,
            ConnTag::Handling => &self.handling,
            ConnTag::Writing => &self.writing,
        }
    }

    pub(crate) fn record_accepted(&self, tag: ConnTag) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
        self.gauge(tag).fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_closed(&self, tag: ConnTag) {
        self.closed.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.gauge(tag).fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retag(&self, from: ConnTag, to: ConnTag) {
        if from != to {
            self.gauge(from).fetch_sub(1, Ordering::Relaxed);
            self.gauge(to).fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_response(&self) {
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inflight_add(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inflight_sub(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_connection(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_request(&self) {
        self.shed_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Coherent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> ConnStatsSnapshot {
        ConnStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            reading: self.reading.load(Ordering::Relaxed),
            handling: self.handling.load(Ordering::Relaxed),
            writing: self.writing.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
        }
    }
}

/// One reading of [`ConnStats`], ready for display or JSON export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnStatsSnapshot {
    /// Connections admitted past the cap check.
    pub accepted: u64,
    /// Connections fully torn down.
    pub closed: u64,
    /// Connections currently open (gauge; `accepted - closed`).
    pub active: u64,
    /// Connections waiting for request bytes (gauge).
    pub reading: u64,
    /// Connections with an inference in flight (gauge).
    pub handling: u64,
    /// Connections with unflushed response bytes (gauge).
    pub writing: u64,
    /// Requests parsed off sockets.
    pub requests: u64,
    /// Responses handed to sockets.
    pub responses: u64,
    /// Requests submitted to a scheduler and not yet answered (gauge).
    pub inflight: u64,
    /// Connections closed by the idle/read timeout.
    pub timeouts: u64,
    /// Connections refused with `503` at the connection cap.
    pub shed_connections: u64,
    /// Requests refused with `503` by load-aware shedding.
    pub shed_requests: u64,
}

impl ConnStatsSnapshot {
    /// Renders the snapshot as a flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"closed\":{},\"active\":{},\"reading\":{},\
             \"handling\":{},\"writing\":{},\"requests\":{},\"responses\":{},\
             \"inflight\":{},\"timeouts\":{},\"shed_connections\":{},\
             \"shed_requests\":{}}}",
            self.accepted,
            self.closed,
            self.active,
            self.reading,
            self.handling,
            self.writing,
            self.requests,
            self.responses,
            self.inflight,
            self.timeouts,
            self.shed_connections,
            self.shed_requests,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_counters_track_lifecycle_and_gauges() {
        let stats = ConnStats::new();
        stats.record_accepted(ConnTag::Reading);
        stats.record_accepted(ConnTag::Reading);
        stats.record_retag(ConnTag::Reading, ConnTag::Handling);
        stats.record_retag(ConnTag::Handling, ConnTag::Handling); // no-op
        stats.record_request();
        stats.inflight_add();
        stats.record_retag(ConnTag::Handling, ConnTag::Writing);
        stats.inflight_sub();
        stats.record_response();
        stats.record_shed_request();
        stats.record_shed_connection();
        stats.record_timeout();
        stats.record_closed(ConnTag::Writing);
        let snap = stats.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.closed, 1);
        assert_eq!(snap.active, 1);
        assert_eq!(stats.active(), 1);
        assert_eq!(snap.reading, 1);
        assert_eq!(snap.handling, 0);
        assert_eq!(snap.writing, 0);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.responses, 1);
        assert_eq!(snap.inflight, 0);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.shed_connections, 1);
        assert_eq!(snap.shed_requests, 1);
        let json = snap.to_json();
        assert!(json.contains("\"active\":1"));
        assert!(json.contains("\"shed_requests\":1"));
    }

    #[test]
    fn counters_aggregate_and_export() {
        let stats = ServeStats::new();
        stats.record_submitted();
        stats.record_submitted();
        stats.record_rejected();
        stats.record_batch(2);
        stats.record_completed(1_000, 3_000);
        stats.record_completed(2_000, 5_000);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.batches, 1);
        assert!((snap.mean_batch - 2.0).abs() < 1e-9);
        assert!((snap.mean_queue_us - 1.5).abs() < 1e-9);
        assert!((snap.mean_latency_us - 4.0).abs() < 1e-9);
        assert_eq!(snap.max_latency_us, 5);
        // Quantiles come from the histogram: upper bounds, never below
        // the true order statistic, clamped to the recorded max.
        assert!(snap.p50_latency_us >= 3 && snap.p50_latency_us <= 5);
        assert_eq!(snap.p99_latency_us, 5);
        let json = snap.to_json();
        assert!(json.contains("\"completed\":2"));
        assert!(json.contains("\"mean_batch\":2.000"));
        assert!(json.contains("\"p99_latency_us\":5"));
    }

    #[test]
    fn batch_ids_count_from_one_and_stage_histograms_record() {
        let stats = ServeStats::with_stages(&["lut-conv", "relu"]);
        assert_eq!(stats.record_batch(3), 1);
        assert_eq!(stats.record_batch(1), 2);
        assert_eq!(stats.batch_size_histogram().count(), 2);
        stats.record_stage("lut-conv", 500);
        stats.record_stage("unknown", 500); // silently ignored
        let stages = stats.stage_histograms();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].1.count(), 1);
        assert_eq!(stages[1].1.count(), 0);
    }
}

//! The `serve` binary: load (or build) a PECAN model and answer HTTP
//! traffic until a client posts `/shutdown`.
//!
//! ```text
//! # build a demo model and write a snapshot, then exit
//! serve --demo mlp --save model.psnp
//!
//! # serve a snapshot on an ephemeral port (the bound address is printed)
//! serve --snapshot model.psnp --addr 127.0.0.1:0 --max-batch 16 --workers 1
//! ```
//!
//! Knobs: `--demo mlp|lenet` (seeded demo model, default `mlp`),
//! `--snapshot PATH` (load a saved model instead), `--save PATH` (write
//! the model and exit without serving), `--seed N`, `--addr HOST:PORT`,
//! `--max-batch N`, `--max-wait-us N`, `--queue-cap N`, `--workers N`.

use pecan_serve::{demo, FrozenEngine, SchedulerConfig, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    demo: String,
    snapshot: Option<String>,
    save: Option<String>,
    seed: u64,
    addr: String,
    max_batch: usize,
    max_wait_us: u64,
    queue_cap: usize,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        demo: "mlp".into(),
        snapshot: None,
        save: None,
        seed: 1,
        addr: "127.0.0.1:0".into(),
        max_batch: 16,
        max_wait_us: 200,
        queue_cap: 256,
        workers: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--demo" => args.demo = value("--demo")?,
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--save" => args.save = Some(value("--save")?),
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
            "--addr" => args.addr = value("--addr")?,
            "--max-batch" => {
                args.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?;
            }
            "--max-wait-us" => {
                args.max_wait_us = parse_num(&value("--max-wait-us")?, "--max-wait-us")?;
            }
            "--queue-cap" => {
                args.queue_cap = parse_num(&value("--queue-cap")?, "--queue-cap")?;
            }
            "--workers" => args.workers = parse_num(&value("--workers")?, "--workers")?,
            "--help" | "-h" => {
                return Err("usage: serve [--demo mlp|lenet] [--snapshot PATH] \
                            [--save PATH] [--seed N] [--addr HOST:PORT] \
                            [--max-batch N] [--max-wait-us N] [--queue-cap N] \
                            [--workers N]"
                    .into())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag}: `{text}` is not a number"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let engine = match &args.snapshot {
        Some(path) => match FrozenEngine::load_snapshot(path) {
            Ok(e) => {
                println!("loaded snapshot {path}");
                e
            }
            Err(e) => {
                eprintln!("cannot load snapshot {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match args.demo.as_str() {
            "mlp" => demo::mlp_engine(args.seed),
            "lenet" => demo::lenet_engine(args.seed),
            other => {
                eprintln!("unknown demo model `{other}` (mlp|lenet)");
                return ExitCode::FAILURE;
            }
        },
    };

    if let Some(path) = &args.save {
        if let Err(e) = engine.save_snapshot(path) {
            eprintln!("cannot write snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "saved snapshot to {path} ({} stages, {} LUT scalars)",
            engine.stage_count(),
            engine.lut_scalars()
        );
        return ExitCode::SUCCESS;
    }

    let config = ServerConfig {
        addr: args.addr.clone(),
        scheduler: SchedulerConfig {
            max_batch: args.max_batch,
            max_wait: Duration::from_micros(args.max_wait_us),
            queue_capacity: args.queue_cap,
            workers: args.workers,
        },
        ..ServerConfig::default()
    };
    let server = match Server::start(Arc::new(engine), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // Scripts scrape this line for the resolved ephemeral port.
    println!("pecan-serve listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run();
    println!("pecan-serve: drained and stopped");
    ExitCode::SUCCESS
}

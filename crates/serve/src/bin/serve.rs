//! The `serve` binary: load (or build) one or more PECAN models and
//! answer HTTP traffic until a client posts `/shutdown`.
//!
//! ```text
//! # build demo models and write named snapshots, then exit
//! serve --demo mlp --save mlp.psnp
//! serve --demo lenet --save lenet.psnp
//!
//! # serve one snapshot on an ephemeral port (the bound address is printed)
//! serve --snapshot mlp.psnp --addr 127.0.0.1:0 --max-batch 16 --workers 1
//!
//! # serve several models side by side: the default answers /predict,
//! # the rest answer /models/{name}/predict
//! serve --snapshot mlp.psnp --model lenet=lenet.psnp
//! ```
//!
//! Knobs: `--demo mlp|lenet` (seeded demo model, default `mlp`),
//! `--snapshot PATH` (load a saved model as the default instead),
//! `--model NAME=PATH` (repeatable; register an extra snapshot under
//! NAME), `--name NAME` (rename the default model), `--save PATH` (write
//! the default model and exit without serving), `--seed N`,
//! `--addr HOST:PORT`, `--max-batch N`, `--max-wait-us N`,
//! `--queue-cap N`, `--workers N` (scheduler knobs apply to every model).
//!
//! Lifecycle knobs: `--mmap` (serve snapshots straight from page cache
//! via `FrozenEngine::open_snapshot` — instant cold start for v3 files),
//! `--model-dir PATH` (watch a directory of `*.psnp` files: new files
//! hot-register, changed files blue/green-reload; see
//! `docs/serving-ops.md`), `--watch-interval-ms N` (scan period, default
//! 2000). Snapshot-backed models also answer `POST /models/{name}/reload`.
//!
//! Front-end knobs: `--event-loop` (epoll event loop instead of
//! thread-per-connection; falls back to threaded where unsupported),
//! `--max-conns N` (connection cap, `503` beyond it),
//! `--read-timeout-ms N` (per-connection idle/read deadline).
//!
//! Observability knobs: `--flight-records N` (capacity of the
//! `/debug/requests` flight recorder), `--log LEVEL`
//! (off|error|warn|info|debug|trace; overrides the `PECAN_LOG`
//! environment variable for structured stderr logging), and
//! `--trace-file PATH` (enable span tracing for the whole process
//! lifetime and dump everything still held in the trace rings as Chrome
//! trace-event JSON on exit — after the drain for a serving run, after
//! the write for a `--save` run, so engine *builds* can be profiled too;
//! see `docs/observability.md`).

use pecan_serve::{
    demo, EngineRegistry, FrozenEngine, LoadMode, ModelWatcher, SchedulerConfig, Server,
    ServerConfig, WatcherConfig,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    demo: String,
    snapshot: Option<String>,
    models: Vec<(String, String)>,
    name: Option<String>,
    save: Option<String>,
    seed: u64,
    addr: String,
    max_batch: usize,
    max_wait_us: u64,
    queue_cap: usize,
    workers: usize,
    event_loop: bool,
    max_conns: usize,
    read_timeout_ms: u64,
    flight_records: usize,
    log: Option<String>,
    trace_file: Option<String>,
    mmap: bool,
    model_dir: Option<String>,
    watch_interval_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        demo: "mlp".into(),
        snapshot: None,
        models: Vec::new(),
        name: None,
        save: None,
        seed: 1,
        addr: "127.0.0.1:0".into(),
        max_batch: 16,
        max_wait_us: 200,
        queue_cap: 256,
        workers: 1,
        event_loop: false,
        max_conns: 1024,
        read_timeout_ms: 30_000,
        flight_records: 256,
        log: None,
        trace_file: None,
        mmap: false,
        model_dir: None,
        watch_interval_ms: 2000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--demo" => args.demo = value("--demo")?,
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--model" => {
                let spec = value("--model")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model `{spec}` must be NAME=PATH"))?;
                args.models.push((name.to_string(), path.to_string()));
            }
            "--name" => args.name = Some(value("--name")?),
            "--save" => args.save = Some(value("--save")?),
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
            "--addr" => args.addr = value("--addr")?,
            "--max-batch" => {
                args.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?;
            }
            "--max-wait-us" => {
                args.max_wait_us = parse_num(&value("--max-wait-us")?, "--max-wait-us")?;
            }
            "--queue-cap" => {
                args.queue_cap = parse_num(&value("--queue-cap")?, "--queue-cap")?;
            }
            "--workers" => args.workers = parse_num(&value("--workers")?, "--workers")?,
            "--event-loop" => args.event_loop = true,
            "--max-conns" => {
                args.max_conns = parse_num(&value("--max-conns")?, "--max-conns")?;
            }
            "--read-timeout-ms" => {
                args.read_timeout_ms =
                    parse_num(&value("--read-timeout-ms")?, "--read-timeout-ms")?;
            }
            "--flight-records" => {
                args.flight_records =
                    parse_num(&value("--flight-records")?, "--flight-records")?;
            }
            "--log" => args.log = Some(value("--log")?),
            "--trace-file" => args.trace_file = Some(value("--trace-file")?),
            "--mmap" => args.mmap = true,
            "--model-dir" => args.model_dir = Some(value("--model-dir")?),
            "--watch-interval-ms" => {
                args.watch_interval_ms =
                    parse_num(&value("--watch-interval-ms")?, "--watch-interval-ms")?;
            }
            "--help" | "-h" => {
                return Err("usage: serve [--demo mlp|lenet] [--snapshot PATH] \
                            [--model NAME=PATH]... [--name NAME] [--save PATH] \
                            [--seed N] [--addr HOST:PORT] [--max-batch N] \
                            [--max-wait-us N] [--queue-cap N] [--workers N] \
                            [--event-loop] [--max-conns N] [--read-timeout-ms N] \
                            [--flight-records N] [--log off|error|warn|info|debug|trace] \
                            [--trace-file PATH] [--mmap] [--model-dir PATH] \
                            [--watch-interval-ms N]"
                    .into())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag}: `{text}` is not a number"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(spec) = &args.log {
        if !pecan_serve::obs::log::set_level_spec(spec) {
            eprintln!("--log: `{spec}` is not a level (off|error|warn|info|debug|trace)");
            return ExitCode::FAILURE;
        }
    }
    if args.trace_file.is_some() {
        // Enabled before the engine is built so a `--demo ... --trace-file`
        // run captures the build-time gemm/pack spans, not just serving.
        pecan_obs::set_tracing(true);
    }

    let mode = if args.mmap { LoadMode::Map } else { LoadMode::Copy };
    let load = |path: &str| match mode {
        LoadMode::Map => FrozenEngine::open_snapshot(path),
        LoadMode::Copy => FrozenEngine::load_snapshot(path),
    };
    let mut engine = match &args.snapshot {
        Some(path) => match load(path) {
            Ok(e) => {
                println!(
                    "loaded snapshot {path} (model `{}`{})",
                    e.name().unwrap_or("default"),
                    if e.uses_shared_storage() { ", memory-mapped" } else { "" }
                );
                e
            }
            Err(e) => {
                pecan_serve::log_error!("serve::bin", "cannot load snapshot", path = path, error = e);
                eprintln!("cannot load snapshot {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match args.demo.as_str() {
            "mlp" => demo::mlp_engine(args.seed),
            "lenet" => demo::lenet_engine(args.seed),
            other => {
                eprintln!("unknown demo model `{other}` (mlp|lenet)");
                return ExitCode::FAILURE;
            }
        },
    };
    if let Some(name) = &args.name {
        engine = engine.with_name(name.clone());
    }

    if let Some(path) = &args.save {
        if let Err(e) = engine.save_snapshot(path) {
            eprintln!("cannot write snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "saved snapshot to {path} (model `{}`, {} stages, {} LUT scalars)",
            engine.name().unwrap_or("default"),
            engine.stage_count(),
            engine.lut_scalars()
        );
        if let Some(trace) = &args.trace_file {
            dump_trace(trace);
        }
        return ExitCode::SUCCESS;
    }

    let scheduler = SchedulerConfig {
        max_batch: args.max_batch,
        max_wait: Duration::from_micros(args.max_wait_us),
        queue_capacity: args.queue_cap,
        workers: args.workers,
    };
    let registry = Arc::new(EngineRegistry::new());
    if let Err(e) = registry.register(Arc::new(engine), scheduler.clone()) {
        eprintln!("cannot register default model: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &args.snapshot {
        // Remember the file so POST /reload can re-read it the same way.
        if let Ok(entry) = registry.resolve(None) {
            entry.set_source(path, mode);
        }
    }
    for (name, path) in &args.models {
        if let Err(e) = registry.register_file(name.clone(), path, mode, scheduler.clone()) {
            eprintln!("cannot register model `{name}` from {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let config = ServerConfig {
        addr: args.addr.clone(),
        event_loop: args.event_loop,
        max_connections: args.max_conns,
        read_timeout: Duration::from_millis(args.read_timeout_ms),
        flight_records: args.flight_records,
        ..ServerConfig::default()
    };
    if args.event_loop && !pecan_serve::event_loop_supported() {
        pecan_serve::log_warn!("serve::bin", "event loop unsupported here; using threads");
        eprintln!("--event-loop is not supported on this platform; using threads");
    }
    let server = match Server::start_shared(Arc::clone(&registry), config) {
        Ok(s) => s,
        Err(e) => {
            pecan_serve::log_error!("serve::bin", "cannot bind", addr = args.addr, error = e);
            eprintln!("cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // Started after the server so hot-added models are routable the
    // moment the watcher registers them. Dropped (stopped and joined)
    // after `server.run()` returns.
    let _watcher = args.model_dir.as_ref().map(|dir| {
        println!("watching {dir} for *.psnp models every {} ms", args.watch_interval_ms);
        ModelWatcher::start(
            Arc::clone(&registry),
            WatcherConfig {
                dir: dir.into(),
                interval: Duration::from_millis(args.watch_interval_ms),
                mode,
                scheduler: scheduler.clone(),
            },
        )
    });
    let names = server.registry().names().join(", ");
    println!(
        "serving models: {names} (default `{}`, {} front end)",
        server.registry().default_model().name(),
        if server.uses_event_loop() { "event-loop" } else { "threaded" }
    );
    // Scripts scrape this line for the resolved ephemeral port.
    println!("pecan-serve listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run();
    println!("pecan-serve: drained and stopped");
    if let Some(trace) = &args.trace_file {
        dump_trace(trace);
    }
    ExitCode::SUCCESS
}

/// Writes everything still held in the trace rings to `path` as Chrome
/// trace-event JSON. Failure to write is reported but never changes the
/// exit code: the trace is a diagnostic artifact, not the run's output.
fn dump_trace(path: &str) {
    let json = pecan_obs::dump_all_json();
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote trace to {path} ({} bytes)", json.len()),
        Err(e) => eprintln!("cannot write trace {path}: {e}"),
    }
}

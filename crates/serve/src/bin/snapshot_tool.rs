//! `snapshot-tool`: inspect, verify and convert PECAN snapshot files.
//!
//! ```text
//! snapshot-tool info model.psnp            # header, shapes, section map
//! snapshot-tool verify model.psnp          # every checksum; exit 0/1
//! snapshot-tool convert --to 3 old.psnp new.psnp
//! ```
//!
//! `info` reads only the header (plus the whole-file checksum for v1/v2
//! files, where nothing smaller exists). `verify` fully decodes the file
//! the way `FrozenEngine::load_snapshot` would — per-section CRCs and
//! structural validation for v3, whole-file CRC for v1/v2 — and exits
//! non-zero on the first problem, so it slots into CI and deploy gates.
//! `convert` re-encodes between any two supported versions; converting
//! v1/v2 → 3 is how pre-existing models become memory-mappable
//! (`serve --mmap`). Conversion is lossless: the engine loaded from the
//! output predicts bit-identically to one loaded from the input. The
//! byte-level formats are specified in `docs/snapshot-format.md`.

use pecan_serve::{inspect_snapshot_bytes, FrozenEngine, SNAPSHOT_VERSION};
use std::process::ExitCode;

fn usage() -> String {
    "usage: snapshot-tool info PATH\n\
     \u{20}      snapshot-tool verify PATH\n\
     \u{20}      snapshot-tool convert --to VERSION IN OUT"
        .into()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => {
            let [_, path] = args.as_slice() else { return Err(usage()) };
            info(path)
        }
        Some("verify") => {
            let [_, path] = args.as_slice() else { return Err(usage()) };
            verify(path)
        }
        Some("convert") => {
            let [_, to_flag, version, input, output] = args.as_slice() else {
                return Err(usage());
            };
            if to_flag != "--to" {
                return Err(usage());
            }
            let version: u32 = version
                .parse()
                .map_err(|_| format!("--to: `{version}` is not a version number"))?;
            convert(version, input, output)
        }
        Some("--help" | "-h") | None => Err(usage()),
        Some(other) => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn read(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn info(path: &str) -> Result<(), String> {
    let bytes = read(path)?;
    let info = inspect_snapshot_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("file:        {path}");
    println!("version:     {}", info.version);
    println!("model:       {}", info.name.as_deref().unwrap_or("(unnamed)"));
    println!("input:       {:?}", info.input_shape);
    println!("output:      {:?}", info.output_shape);
    println!("stages:      {}", info.stage_count);
    println!("file bytes:  {}", info.file_len);
    if info.sections.is_empty() {
        println!("sections:    none (v1/v2 inline stream, whole-file CRC-32)");
    } else {
        let payload: u64 = info.sections.iter().map(|s| s.byte_len).sum();
        println!("sections:    {} ({payload} payload bytes, 64-byte aligned)", info.sections.len());
        for (i, s) in info.sections.iter().enumerate() {
            println!(
                "  [{i:3}] offset {:>10}  len {:>10}  crc32 {:08x}",
                s.offset, s.byte_len, s.crc
            );
        }
    }
    Ok(())
}

fn verify(path: &str) -> Result<(), String> {
    let bytes = read(path)?;
    let info = inspect_snapshot_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    // The copying decoder checks everything the format promises: header
    // CRC + every section CRC + structural validation (v3), or the
    // whole-file CRC + structural validation (v1/v2).
    let engine = FrozenEngine::from_snapshot_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: OK (v{}, model `{}`, {} stages, {} sections, {} bytes)",
        info.version,
        engine.name().unwrap_or("default"),
        info.stage_count,
        info.sections.len(),
        info.file_len,
    );
    Ok(())
}

fn convert(version: u32, input: &str, output: &str) -> Result<(), String> {
    if !(1..=SNAPSHOT_VERSION).contains(&version) {
        return Err(format!(
            "--to: version {version} is not supported (1..={SNAPSHOT_VERSION})"
        ));
    }
    let bytes = read(input)?;
    let from = inspect_snapshot_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
    let engine = FrozenEngine::from_snapshot_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
    let converted = engine
        .snapshot_bytes_versioned(version)
        .map_err(|e| format!("cannot encode v{version}: {e}"))?;
    std::fs::write(output, &converted).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "{input} (v{}) -> {output} (v{version}, {} bytes, model `{}`)",
        from.version,
        converted.len(),
        engine.name().unwrap_or("default"),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

//! The `loadgen` binary: drive a running `serve` endpoint with N
//! concurrent keep-alive connections and report throughput and latency
//! percentiles.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7878 --connections 8 --requests 400
//! loadgen --addr 127.0.0.1:7878 --model lenet --connections 4 --requests 200
//! ```
//!
//! `--model NAME` drives `/models/NAME/predict` (multi-model servers);
//! without it the server's default model answers on the bare routes.
//!
//! By default every connection gets its own thread. For high-connection
//! runs (thousands of sockets against the event-loop front end),
//! `--threads N` multiplexes the connections over N threads instead: each
//! thread owns `connections / N` keep-alive sockets and round-robins its
//! requests across them, so all sockets stay open and active without a
//! thousand client threads. `--p99-budget-us N` turns the p99 latency
//! into an exit-code gate for CI.
//!
//! Every response is checked: HTTP 200, parseable `output` array of the
//! length `/healthz` advertises. Latencies accumulate in one shared
//! [`pecan_obs::Histogram`] — the same wait-free log-bucketed histogram
//! the server records into — so client p50/p90/p99/p999 and the server's
//! `/metrics` quantiles are computed by identical machinery and compare
//! apples to apples (both overshoot the true order statistic by at most
//! 1/32). Results print as a small table; `--json PATH` additionally
//! writes a bench-style JSON record (same shape as the criterion shim's
//! sink, with throughput and the served model's name attached) so
//! multi-model serving runs stay distinguishable next to kernel
//! benches. At the end of a run loadgen also scrapes the server's
//! `/metrics` and reports the server-side p99 (`server_p99_ns` in the
//! JSON record) next to the client-observed one, so wire overhead and
//! server latency stay distinguishable. `--shutdown` posts `/shutdown`
//! when done.

use pecan_obs::Histogram;
use pecan_serve::client::{predict_path, route_path, HttpClient};
use pecan_serve::json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    addr: String,
    model: Option<String>,
    connections: usize,
    requests: usize,
    threads: usize,
    warmup: usize,
    seed: u64,
    json: Option<String>,
    tag: Option<String>,
    shutdown: bool,
    p99_budget_us: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        model: None,
        connections: 8,
        requests: 400,
        threads: 0,
        warmup: 32,
        seed: 7,
        json: None,
        tag: None,
        shutdown: false,
        p99_budget_us: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--model" => args.model = Some(value("--model")?),
            "--connections" => {
                args.connections = parse_num(&value("--connections")?, "--connections")?;
            }
            "--requests" => args.requests = parse_num(&value("--requests")?, "--requests")?,
            "--threads" => args.threads = parse_num(&value("--threads")?, "--threads")?,
            "--warmup" => args.warmup = parse_num(&value("--warmup")?, "--warmup")?,
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
            "--json" => args.json = Some(value("--json")?),
            "--tag" => args.tag = Some(value("--tag")?),
            "--shutdown" => args.shutdown = true,
            "--p99-budget-us" => {
                args.p99_budget_us =
                    Some(parse_num(&value("--p99-budget-us")?, "--p99-budget-us")?);
            }
            "--help" | "-h" => {
                return Err("usage: loadgen --addr HOST:PORT [--model NAME] \
                            [--connections N] [--requests N] [--threads N] \
                            [--warmup N] [--seed N] [--json PATH] [--tag NAME] \
                            [--shutdown] [--p99-budget-us N]"
                    .into())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr is required (try --help)".into());
    }
    args.connections = args.connections.max(1);
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag}: `{text}` is not a number"))
}

fn connect(addr: &str) -> Result<HttpClient, String> {
    HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    // Discover the model's shape from the server itself.
    let model = args.model.as_deref();
    let health_route = route_path(model, "healthz");
    let mut probe = connect(&args.addr)?;
    let (status, health) = probe.call("GET", &health_route, "").map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("{health_route} answered {status}: {health}"));
    }
    let input_len = json::number_field(&health, "input_len")? as usize;
    let output_len = json::number_field(&health, "output_len")? as usize;
    // The server reports which model answers this route (the default when
    // --model was not given) — carried into the JSON report.
    let model_name = json::string_field(&health, "model")
        .unwrap_or_else(|_| model.unwrap_or("default").to_string());
    println!(
        "target {} model {model_name} (input_len={input_len}, output_len={output_len})",
        args.addr
    );
    let route = predict_path(model);

    // Warm up (fills caches, spins up connection threads server-side).
    let mut rng = StdRng::seed_from_u64(args.seed);
    for _ in 0..args.warmup {
        let body = json::format_f32_array(&random_input(&mut rng, input_len));
        let (status, body) = probe.call("POST", &route, &body).map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("warmup {route} answered {status}: {body}"));
        }
    }

    // Fire. Default: one thread per connection. With --threads, each
    // thread owns a contiguous slice of the connections (all opened up
    // front, all kept alive) and round-robins its requests across them —
    // high connection counts without high thread counts.
    let per_conn = args.requests.div_ceil(args.connections).max(1);
    let threads = if args.threads == 0 {
        args.connections
    } else {
        args.threads.clamp(1, args.connections)
    };
    let addr = Arc::new(args.addr.clone());
    let route = Arc::new(route);
    // All threads record straight into one histogram — `record` is
    // wait-free, so no per-thread vectors or merge step are needed.
    let hist = Arc::new(Histogram::new());
    let started = Instant::now();
    let mut handles = Vec::new();
    let mut assigned = 0usize;
    for t in 0..threads {
        // Spread the remainder over the first threads.
        let conns_here = args.connections / threads + usize::from(t < args.connections % threads);
        assigned += conns_here;
        let addr = Arc::clone(&addr);
        let route = Arc::clone(&route);
        let hist = Arc::clone(&hist);
        let seed = args.seed.wrapping_add(1 + t as u64);
        handles.push(std::thread::spawn(move || -> Result<Option<u64>, String> {
            let mut clients = Vec::with_capacity(conns_here);
            for _ in 0..conns_here {
                clients.push(connect(&addr)?);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            // Time-to-first-response: run start → this thread's first 200
            // (connect included). The run-wide minimum lands in the report
            // as `ttfr_ns` — with `--warmup 0` against a fresh server it
            // measures cold start end to end.
            let mut first_ns = None;
            for _ in 0..per_conn {
                for client in &mut clients {
                    let body = json::format_f32_array(&random_input(&mut rng, input_len));
                    let sent = Instant::now();
                    let (status, body) =
                        client.call("POST", &route, &body).map_err(|e| e.to_string())?;
                    let elapsed = sent.elapsed();
                    if status != 200 {
                        return Err(format!("{route} answered {status}: {body}"));
                    }
                    if first_ns.is_none() {
                        first_ns = Some(started.elapsed().as_nanos() as u64);
                    }
                    let output = json::array_field(&body, "output")?;
                    if output.len() != output_len {
                        return Err(format!(
                            "response carries {} values, expected {output_len}",
                            output.len()
                        ));
                    }
                    hist.record(elapsed.as_nanos() as u64);
                }
            }
            Ok(first_ns)
        }));
    }
    debug_assert_eq!(assigned, args.connections);
    let mut ttfr_ns: Option<u64> = None;
    let mut errors = Vec::new();
    for h in handles {
        match h.join().map_err(|_| "worker panicked".to_string())? {
            Ok(first) => {
                ttfr_ns = match (ttfr_ns, first) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            Err(e) => errors.push(e),
        }
    }
    let wall = started.elapsed();

    // Scrape the server's own view of the run from /metrics (before any
    // shutdown): the p99 quantile gauge the histogram subsystem exports.
    // Best-effort — old servers without /metrics just leave it out.
    let server_p99_ns = fetch_server_p99_ns(&mut probe, &model_name);
    if let Some(ns) = server_p99_ns {
        println!("server_p99_us: {}", ns / 1_000);
    }

    if args.shutdown {
        let (status, _) = probe.call("POST", "/shutdown", "").map_err(|e| e.to_string())?;
        println!("posted /shutdown (status {status})");
    }
    if !errors.is_empty() {
        return Err(format!("{} connection(s) failed, first: {}", errors.len(), errors[0]));
    }

    let snap = hist.snapshot();
    let total = snap.count();
    if total == 0 {
        return Err("no successful requests recorded".into());
    }
    let throughput = total as f64 / wall.as_secs_f64();
    println!(
        "{total} requests over {} connections ({threads} threads) in {:.3} s",
        args.connections,
        wall.as_secs_f64()
    );
    println!("throughput_rps: {throughput:.1}");
    if let Some(ns) = ttfr_ns {
        println!("ttfr_us: {}", ns / 1_000);
    }
    println!(
        "latency_us: p50 {} | p90 {} | p99 {} | p999 {} | max {}",
        snap.quantile(0.50) / 1_000,
        snap.quantile(0.90) / 1_000,
        snap.quantile(0.99) / 1_000,
        snap.quantile(0.999) / 1_000,
        snap.max() / 1_000
    );

    if let Some(path) = &args.json {
        let name = args.tag.clone().unwrap_or_else(|| {
            format!("loadgen/{model_name}/c{}_r{}", args.connections, total)
        });
        // Client-observed percentiles (wire included) next to the server's
        // own p99 from /metrics, so the report shows both sides of the
        // run. `min_ns` is the histogram's rank-1 quantile — bucketed, so
        // up to 1/32 above the true minimum; `max_ns` is exact.
        let server_p99 =
            server_p99_ns.map_or(String::new(), |ns| format!("\n  \"server_p99_ns\": {ns},"));
        let ttfr =
            ttfr_ns.map_or(String::new(), |ns| format!("\n  \"ttfr_ns\": {ns},"));
        let body = format!(
            "{{\n  \"name\": \"{}\",\n  \"model\": \"{}\",\n  \"median_ns\": {},\n  \"min_ns\": {},\n  \"max_ns\": {},\n  \"p90_ns\": {},\n  \"p99_ns\": {},\n  \"p999_ns\": {},{}{ttfr}\n  \"samples\": {},\n  \"iters_per_sample\": 1,\n  \"throughput_rps\": {:.1}\n}}\n",
            json::escape(&name),
            json::escape(&model_name),
            snap.quantile(0.50),
            snap.quantile(0.0),
            snap.max(),
            snap.quantile(0.90),
            snap.quantile(0.99),
            snap.quantile(0.999),
            server_p99,
            total,
            throughput,
        );
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
        std::fs::write(path, body).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(budget) = args.p99_budget_us {
        let p99_us = snap.quantile(0.99) / 1_000;
        if p99_us > budget {
            eprintln!("loadgen: p99 {p99_us} us exceeds budget {budget} us");
            return Ok(ExitCode::FAILURE);
        }
        println!("p99 {p99_us} us within budget {budget} us");
    }
    Ok(ExitCode::SUCCESS)
}

fn random_input(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Asks the server for its own p99 of this model's request latency: the
/// `pecan_request_latency_quantile_seconds{model=…,quantile="0.99"}` gauge
/// from `/metrics`, converted to nanoseconds. `None` when the server does
/// not expose metrics (or the scrape fails) — the report simply omits it.
fn fetch_server_p99_ns(probe: &mut HttpClient, model_name: &str) -> Option<u64> {
    let (status, body) = probe.call("GET", "/metrics", "").ok()?;
    if status != 200 {
        return None;
    }
    let seconds = pecan_serve::obs::metrics::find_sample(
        &body,
        "pecan_request_latency_quantile_seconds",
        &[("model", model_name), ("quantile", "0.99")],
    )?;
    Some((seconds * 1e9).round() as u64)
}
